//! Engine behaviour tests through the public `Database` API.

use minisql::value::SqlType;
use minisql::wal::SyncMode;
use minisql::{Database, SqlValue};

fn db_with_users() -> Database {
    let db = Database::in_memory();
    db.execute("CREATE TABLE users (id INT PRIMARY KEY, name TEXT NOT NULL, age INT, score REAL)")
        .unwrap();
    db.execute(
        "INSERT INTO users (id, name, age, score) VALUES \
         (1, 'alice', 30, 9.5), (2, 'bob', 25, 7.0), (3, 'carol', NULL, 8.25), (4, 'dave', 41, NULL)",
    )
    .unwrap();
    db
}

#[test]
fn create_insert_select() {
    let db = db_with_users();
    let rs = db.execute("SELECT * FROM users ORDER BY id").unwrap();
    assert_eq!(rs.columns, vec!["id", "name", "age", "score"]);
    assert_eq!(rs.rows.len(), 4);
    assert_eq!(rs.rows[0][1], SqlValue::Text("alice".into()));
}

#[test]
fn point_lookup_by_primary_key() {
    let db = db_with_users();
    let rs = db.execute("SELECT name FROM users WHERE id = 2").unwrap();
    assert_eq!(rs.rows, vec![vec![SqlValue::Text("bob".into())]]);
    let rs = db.execute("SELECT name FROM users WHERE 3 = id").unwrap();
    assert_eq!(rs.rows, vec![vec![SqlValue::Text("carol".into())]]);
    let rs = db.execute("SELECT name FROM users WHERE id = 99").unwrap();
    assert!(rs.rows.is_empty());
}

#[test]
fn where_combinations() {
    let db = db_with_users();
    let rs = db
        .execute("SELECT name FROM users WHERE age >= 30 AND score > 5.0 ORDER BY name")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![SqlValue::Text("alice".into())]]);
    let rs = db
        .execute("SELECT name FROM users WHERE age IS NULL")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![SqlValue::Text("carol".into())]]);
    let rs = db
        .execute("SELECT COUNT(*) FROM users WHERE score IS NOT NULL")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Int(3)));
    let rs = db
        .execute("SELECT name FROM users WHERE name LIKE '%a%' ORDER BY name")
        .unwrap();
    assert_eq!(rs.rows.len(), 3); // alice, carol, dave
}

#[test]
fn null_comparisons_never_match() {
    let db = db_with_users();
    // age = NULL matches nothing (three-valued logic).
    let rs = db
        .execute("SELECT name FROM users WHERE age = NULL")
        .unwrap();
    assert!(rs.rows.is_empty());
    let rs = db
        .execute("SELECT name FROM users WHERE age != 30")
        .unwrap();
    // carol (NULL age) excluded.
    assert_eq!(rs.rows.len(), 2);
}

#[test]
fn order_limit_offset() {
    let db = db_with_users();
    let rs = db
        .execute("SELECT name FROM users ORDER BY age DESC LIMIT 2 OFFSET 1")
        .unwrap();
    // ages: dave 41, alice 30, bob 25, carol NULL. DESC puts NULL last
    // (reverse of NULL-first). Skip dave → alice, bob.
    assert_eq!(
        rs.rows,
        vec![
            vec![SqlValue::Text("alice".into())],
            vec![SqlValue::Text("bob".into())]
        ]
    );
}

#[test]
fn update_with_expressions() {
    let db = db_with_users();
    let rs = db
        .execute("UPDATE users SET age = age + 1 WHERE age IS NOT NULL")
        .unwrap();
    assert_eq!(rs.affected, 3);
    let rs = db.execute("SELECT age FROM users WHERE id = 1").unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Int(31)));
}

#[test]
fn delete_and_count() {
    let db = db_with_users();
    let rs = db.execute("DELETE FROM users WHERE age < 30").unwrap();
    assert_eq!(rs.affected, 1);
    let rs = db.execute("SELECT COUNT(*) FROM users").unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Int(3)));
    // Slot reuse: insert after delete.
    db.execute("INSERT INTO users (id, name) VALUES (5, 'erin')")
        .unwrap();
    let rs = db.execute("SELECT COUNT(*) FROM users").unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Int(4)));
}

#[test]
fn primary_key_uniqueness() {
    let db = db_with_users();
    let err = db
        .execute("INSERT INTO users (id, name) VALUES (1, 'dup')")
        .unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
    // OR REPLACE takes the other path.
    db.execute("INSERT OR REPLACE INTO users (id, name) VALUES (1, 'replaced')")
        .unwrap();
    let rs = db.execute("SELECT name FROM users WHERE id = 1").unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Text("replaced".into())));
    // PK update collision detected.
    let err = db
        .execute("UPDATE users SET id = 2 WHERE id = 1")
        .unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
}

#[test]
fn not_null_enforced() {
    let db = db_with_users();
    assert!(
        db.execute("INSERT INTO users (id) VALUES (9)").is_err(),
        "name is NOT NULL"
    );
    assert!(db
        .execute("UPDATE users SET name = NULL WHERE id = 1")
        .is_err());
}

#[test]
fn type_coercion_on_write() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (a INT PRIMARY KEY, b REAL, c BLOB)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 2, 'text-as-blob')")
        .unwrap();
    let rs = db.execute("SELECT b, c FROM t WHERE a = 1").unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Real(2.0));
    assert_eq!(rs.rows[0][1], SqlValue::Blob(b"text-as-blob".to_vec()));
    assert!(db
        .execute("INSERT INTO t VALUES (2, 'nope', x'00')")
        .is_err());
}

#[test]
fn multi_row_insert_is_atomic() {
    let db = db_with_users();
    // Second row violates the PK → whole statement rolls back.
    let err = db
        .execute("INSERT INTO users (id, name) VALUES (10, 'ok'), (1, 'dup')")
        .unwrap_err();
    assert!(err.to_string().contains("duplicate"), "{err}");
    let rs = db
        .execute("SELECT COUNT(*) FROM users WHERE id = 10")
        .unwrap();
    assert_eq!(
        rs.scalar(),
        Some(&SqlValue::Int(0)),
        "partial insert leaked"
    );
}

#[test]
fn transactions_commit_and_rollback() {
    let db = db_with_users();
    db.execute("BEGIN").unwrap();
    db.execute("DELETE FROM users").unwrap();
    db.execute("INSERT INTO users (id, name) VALUES (100, 'only')")
        .unwrap();
    let rs = db.execute("SELECT COUNT(*) FROM users").unwrap();
    assert_eq!(
        rs.scalar(),
        Some(&SqlValue::Int(1)),
        "txn sees its own writes"
    );
    db.execute("ROLLBACK").unwrap();
    let rs = db.execute("SELECT COUNT(*) FROM users").unwrap();
    assert_eq!(
        rs.scalar(),
        Some(&SqlValue::Int(4)),
        "rollback restores everything"
    );

    db.execute("BEGIN").unwrap();
    db.execute("UPDATE users SET name = 'x' WHERE id = 1")
        .unwrap();
    db.execute("COMMIT").unwrap();
    let rs = db.execute("SELECT name FROM users WHERE id = 1").unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Text("x".into())));
}

#[test]
fn rollback_restores_schema_changes() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE keep (a INT PRIMARY KEY)").unwrap();
    db.execute("INSERT INTO keep VALUES (1)").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("DROP TABLE keep").unwrap();
    db.execute("CREATE TABLE fresh (b INT PRIMARY KEY)")
        .unwrap();
    db.execute("ROLLBACK").unwrap();
    // keep is back with data; fresh is gone.
    let rs = db.execute("SELECT COUNT(*) FROM keep").unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Int(1)));
    assert!(db.execute("SELECT * FROM fresh").is_err());
}

#[test]
fn nested_begin_rejected() {
    let db = Database::in_memory();
    db.execute("BEGIN").unwrap();
    assert!(db.execute("BEGIN").is_err());
    assert!(db.execute("COMMIT").is_ok());
    assert!(db.execute("COMMIT").is_err(), "no txn left");
    assert!(db.execute("ROLLBACK").is_err());
}

#[test]
fn division_by_zero_and_arithmetic() {
    let db = db_with_users();
    assert!(db
        .execute("SELECT name FROM users WHERE age / 0 = 1")
        .is_err());
    let rs = db
        .execute("SELECT name FROM users WHERE (age * 2) % 10 = 0 AND age > 0")
        .unwrap();
    assert_eq!(rs.rows.len(), 2); // alice 30→60, bob 25→50
    let rs = db
        .execute("SELECT name FROM users WHERE score * 2 = 19.0")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![SqlValue::Text("alice".into())]]);
}

#[test]
fn durability_and_recovery() {
    let dir = std::env::temp_dir().join(format!("minisql-recover-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir, SyncMode::Always).unwrap();
        db.execute("CREATE TABLE kv (k TEXT PRIMARY KEY, v BLOB)")
            .unwrap();
        db.execute("INSERT INTO kv VALUES ('a', x'0102')").unwrap();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO kv VALUES ('b', x'03')").unwrap();
        db.execute("COMMIT").unwrap();
        db.execute("BEGIN").unwrap();
        db.execute("INSERT INTO kv VALUES ('c', x'04')").unwrap();
        // No COMMIT: this txn must not survive "the crash" (drop).
    }
    let db = Database::open(&dir, SyncMode::Always).unwrap();
    let rs = db.execute("SELECT k FROM kv ORDER BY k").unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![SqlValue::Text("a".into())],
            vec![SqlValue::Text("b".into())]
        ],
        "committed rows survive, uncommitted do not"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn checkpoint_then_recover() {
    let dir = std::env::temp_dir().join(format!("minisql-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir, SyncMode::Os).unwrap();
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
            .unwrap();
        for i in 0..50 {
            db.execute(&format!("INSERT INTO t VALUES ({i}, 'row{i}')"))
                .unwrap();
        }
        db.checkpoint().unwrap();
        // Post-checkpoint writes live only in the (truncated) WAL.
        db.execute("INSERT INTO t VALUES (1000, 'after checkpoint')")
            .unwrap();
    }
    let db = Database::open(&dir, SyncMode::Os).unwrap();
    let rs = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Int(51)));
    let rs = db.execute("SELECT b FROM t WHERE a = 1000").unwrap();
    assert_eq!(
        rs.scalar(),
        Some(&SqlValue::Text("after checkpoint".into()))
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn auto_checkpoint_by_threshold() {
    let dir = std::env::temp_dir().join(format!("minisql-autockpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir, SyncMode::Os).unwrap();
        db.set_checkpoint_threshold(1024);
        db.execute("CREATE TABLE t (a INT PRIMARY KEY, b TEXT)")
            .unwrap();
        for i in 0..200 {
            db.execute(&format!(
                "INSERT INTO t VALUES ({i}, 'padding padding padding {i}')"
            ))
            .unwrap();
        }
        let wal_size = std::fs::metadata(dir.join("wal.log")).unwrap().len();
        assert!(
            wal_size < 200 * 40,
            "wal should have been checkpoint-truncated, is {wal_size}"
        );
        assert!(dir.join("db.snapshot").exists());
    }
    let db = Database::open(&dir, SyncMode::Os).unwrap();
    let rs = db.execute("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Int(200)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn boolean_columns() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE flags (id INT PRIMARY KEY, active BOOLEAN)")
        .unwrap();
    db.execute("INSERT INTO flags VALUES (1, TRUE), (2, FALSE), (3, NULL)")
        .unwrap();
    let rs = db
        .execute("SELECT id FROM flags WHERE active ORDER BY id")
        .unwrap();
    assert_eq!(rs.rows, vec![vec![SqlValue::Int(1)]]);
    let rs = db.execute("SELECT id FROM flags WHERE NOT active").unwrap();
    assert_eq!(rs.rows, vec![vec![SqlValue::Int(2)]]);
}

#[test]
fn unknown_entities_rejected() {
    let db = db_with_users();
    assert!(db.execute("SELECT * FROM nope").is_err());
    assert!(db.execute("SELECT nope FROM users").is_err());
    assert!(db.execute("UPDATE users SET nope = 1").is_err());
    assert!(db.execute("INSERT INTO users (nope) VALUES (1)").is_err());
    assert!(db.execute("SELECT * FROM users ORDER BY nope").is_err());
}

#[test]
fn type_check_metadata() {
    assert_eq!(SqlType::parse("BLOB"), Some(SqlType::Blob));
    let db = Database::in_memory();
    db.execute("CREATE TABLE a (x INT PRIMARY KEY)").unwrap();
    assert!(db.execute("CREATE TABLE a (x INT PRIMARY KEY)").is_err());
    db.execute("CREATE TABLE IF NOT EXISTS a (x INT PRIMARY KEY)")
        .unwrap();
    let mut names = db.table_names();
    names.sort();
    assert_eq!(names, vec!["a"]);
    db.execute("DROP TABLE a").unwrap();
    assert!(db.execute("DROP TABLE a").is_err());
    db.execute("DROP TABLE IF EXISTS a").unwrap();
}

#[test]
fn aggregate_functions() {
    let db = db_with_users();
    // ages: alice 30, bob 25, carol NULL, dave 41
    let rs = db
        .execute("SELECT SUM(age), AVG(age), MIN(age), MAX(age), COUNT(age), COUNT(*) FROM users")
        .unwrap();
    assert_eq!(
        rs.columns,
        vec![
            "sum(age)",
            "avg(age)",
            "min(age)",
            "max(age)",
            "count(age)",
            "count"
        ]
    );
    assert_eq!(rs.rows.len(), 1);
    let row = &rs.rows[0];
    assert_eq!(row[0], SqlValue::Int(96));
    assert_eq!(row[1], SqlValue::Real(32.0));
    assert_eq!(row[2], SqlValue::Int(25));
    assert_eq!(row[3], SqlValue::Int(41));
    assert_eq!(row[4], SqlValue::Int(3), "COUNT(col) skips NULLs");
    assert_eq!(row[5], SqlValue::Int(4), "COUNT(*) counts rows");
}

#[test]
fn aggregates_with_where_and_empty_set() {
    let db = db_with_users();
    let rs = db
        .execute("SELECT SUM(age) FROM users WHERE age > 28")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Int(71)));
    // Aggregates over an empty set are NULL (except counts).
    let rs = db
        .execute("SELECT SUM(age), MIN(age), COUNT(*) FROM users WHERE age > 1000")
        .unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Null);
    assert_eq!(rs.rows[0][1], SqlValue::Null);
    assert_eq!(rs.rows[0][2], SqlValue::Int(0));
}

#[test]
fn aggregate_over_reals_mixes_types() {
    let db = db_with_users();
    // scores: 9.5, 7.0, 8.25, NULL
    let rs = db
        .execute("SELECT SUM(score), AVG(score) FROM users")
        .unwrap();
    assert_eq!(rs.rows[0][0], SqlValue::Real(24.75));
    assert_eq!(rs.rows[0][1], SqlValue::Real(8.25));
}

#[test]
fn group_by_single_column() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE orders (id INT PRIMARY KEY, customer TEXT, amount INT)")
        .unwrap();
    db.execute(
        "INSERT INTO orders VALUES (1,'ada',100),(2,'bob',50),(3,'ada',25),(4,'bob',75),(5,'cyd',1)",
    )
    .unwrap();
    let rs = db
        .execute("SELECT SUM(amount), COUNT(*) FROM orders GROUP BY customer")
        .unwrap();
    assert_eq!(rs.columns, vec!["customer", "sum(amount)", "count"]);
    // BTreeMap ordering: ada, bob, cyd.
    assert_eq!(
        rs.rows,
        vec![
            vec![
                SqlValue::Text("ada".into()),
                SqlValue::Int(125),
                SqlValue::Int(2)
            ],
            vec![
                SqlValue::Text("bob".into()),
                SqlValue::Int(125),
                SqlValue::Int(2)
            ],
            vec![
                SqlValue::Text("cyd".into()),
                SqlValue::Int(1),
                SqlValue::Int(1)
            ],
        ]
    );
    // GROUP BY + WHERE composes.
    let rs = db
        .execute("SELECT MAX(amount) FROM orders WHERE amount > 30 GROUP BY customer")
        .unwrap();
    assert_eq!(rs.rows.len(), 2, "cyd filtered out entirely");
}

#[test]
fn aggregate_misuse_rejected() {
    let db = db_with_users();
    assert!(
        db.execute("SELECT SUM(name) FROM users").is_err(),
        "SUM of text"
    );
    assert!(
        db.execute("SELECT SUM(nope) FROM users").is_err(),
        "unknown column"
    );
    assert!(
        db.execute("SELECT name, SUM(age) FROM users").is_err(),
        "mixed projection"
    );
    assert!(
        db.execute("SELECT name FROM users GROUP BY name").is_err(),
        "GROUP BY without aggregates"
    );
}

#[test]
fn count_as_column_name_still_works() {
    // The aggregate keywords are contextual: only WORD '(' starts a call.
    let db = Database::in_memory();
    db.execute("CREATE TABLE t (count INT PRIMARY KEY, min TEXT)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (7, 'x')").unwrap();
    let rs = db.execute("SELECT count, min FROM t").unwrap();
    assert_eq!(
        rs.rows[0],
        vec![SqlValue::Int(7), SqlValue::Text("x".into())]
    );
}

#[test]
fn secondary_index_lifecycle() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE people (id INT PRIMARY KEY, city TEXT, age INT)")
        .unwrap();
    for (i, city) in ["oslo", "lima", "oslo", "kyiv", "lima", "oslo"]
        .iter()
        .enumerate()
    {
        db.execute(&format!(
            "INSERT INTO people VALUES ({i}, '{city}', {})",
            20 + i
        ))
        .unwrap();
    }
    db.execute("CREATE INDEX idx_city ON people (city)")
        .unwrap();
    // Indexed point lookup returns the same rows a scan would.
    let rs = db
        .execute("SELECT id FROM people WHERE city = 'oslo' ORDER BY id")
        .unwrap();
    assert_eq!(
        rs.rows,
        vec![
            vec![SqlValue::Int(0)],
            vec![SqlValue::Int(2)],
            vec![SqlValue::Int(5)]
        ]
    );
    // Index stays consistent through INSERT / UPDATE / DELETE.
    db.execute("INSERT INTO people VALUES (10, 'oslo', 99)")
        .unwrap();
    db.execute("UPDATE people SET city = 'kyiv' WHERE id = 2")
        .unwrap();
    db.execute("DELETE FROM people WHERE id = 0").unwrap();
    let rs = db
        .execute("SELECT COUNT(*) FROM people WHERE city = 'oslo'")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Int(2))); // 5 and 10
    let rs = db
        .execute("SELECT COUNT(*) FROM people WHERE city = 'kyiv'")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Int(2))); // 2 and 3
                                                      // Errors.
    assert!(
        db.execute("CREATE INDEX idx_city ON people (city)")
            .is_err(),
        "dup name"
    );
    db.execute("CREATE INDEX IF NOT EXISTS idx_city ON people (city)")
        .unwrap();
    assert!(
        db.execute("CREATE INDEX idx2 ON people (city)").is_err(),
        "dup column"
    );
    assert!(
        db.execute("CREATE INDEX idx3 ON people (id)").is_err(),
        "pk already indexed"
    );
    assert!(db.execute("CREATE INDEX idx4 ON people (nope)").is_err());
    // Drop.
    db.execute("DROP INDEX idx_city").unwrap();
    assert!(db.execute("DROP INDEX idx_city").is_err());
    db.execute("DROP INDEX IF EXISTS idx_city").unwrap();
    // Queries still correct via scan.
    let rs = db
        .execute("SELECT COUNT(*) FROM people WHERE city = 'lima'")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Int(2)));
}

#[test]
fn secondary_index_rollback_and_recovery() {
    let dir = std::env::temp_dir().join(format!("minisql-idx-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let db = Database::open(&dir, SyncMode::Always).unwrap();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, tag TEXT)")
            .unwrap();
        db.execute("INSERT INTO t VALUES (1,'a'),(2,'b'),(3,'a')")
            .unwrap();
        db.execute("CREATE INDEX idx_tag ON t (tag)").unwrap();
        // Rollback of an index creation.
        db.execute("BEGIN").unwrap();
        db.execute("DROP INDEX idx_tag").unwrap();
        db.execute("ROLLBACK").unwrap();
        let rs = db
            .execute("SELECT COUNT(*) FROM t WHERE tag = 'a'")
            .unwrap();
        assert_eq!(
            rs.scalar(),
            Some(&SqlValue::Int(2)),
            "restored index still answers"
        );
        db.checkpoint().unwrap();
        db.execute("INSERT INTO t VALUES (4, 'a')").unwrap();
    }
    // Recovery rebuilds the index (snapshot + WAL replay).
    let db = Database::open(&dir, SyncMode::Always).unwrap();
    let rs = db
        .execute("SELECT COUNT(*) FROM t WHERE tag = 'a'")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Int(3)));
    // The index also survives an UPDATE that shifts values after recovery.
    db.execute("UPDATE t SET tag = 'z' WHERE tag = 'a'")
        .unwrap();
    let rs = db
        .execute("SELECT COUNT(*) FROM t WHERE tag = 'z'")
        .unwrap();
    assert_eq!(rs.scalar(), Some(&SqlValue::Int(3)));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn indexed_lookup_is_faster_than_scan() {
    let db = Database::in_memory();
    db.execute("CREATE TABLE big (id INT PRIMARY KEY, grp INT, pad TEXT)")
        .unwrap();
    db.execute("BEGIN").unwrap();
    for i in 0..5000 {
        db.execute(&format!(
            "INSERT INTO big VALUES ({i}, {}, 'padding padding padding')",
            i % 500
        ))
        .unwrap();
    }
    db.execute("COMMIT").unwrap();
    let time = |db: &Database, q: &str| {
        let t0 = std::time::Instant::now();
        for _ in 0..50 {
            let rs = db.execute(q).unwrap();
            assert_eq!(rs.rows.len(), 10);
        }
        t0.elapsed()
    };
    let scan = time(&db, "SELECT id FROM big WHERE grp = 123");
    db.execute("CREATE INDEX idx_grp ON big (grp)").unwrap();
    let indexed = time(&db, "SELECT id FROM big WHERE grp = 123");
    assert!(
        indexed < scan / 5,
        "index should be ≫ faster: scan {scan:?} vs indexed {indexed:?}"
    );
}
