//! Property-based tests for the SQL engine: arbitrary values round-trip
//! through literals → parser → executor → wire protocol, and the key-value
//! bridge is lossless for arbitrary keys and payloads.

use minisql::client::bind;
use minisql::value::SqlType;
use minisql::{Database, SqlValue};
use proptest::prelude::*;

/// Arbitrary SQL values (no NaN: SQL comparison semantics for NaN are not
/// interesting here and PartialEq on rows would be vacuous).
fn sql_value() -> impl Strategy<Value = SqlValue> {
    prop_oneof![
        Just(SqlValue::Null),
        any::<i64>().prop_map(SqlValue::Int),
        (-1e15f64..1e15).prop_map(SqlValue::Real),
        ".{0,40}".prop_map(SqlValue::Text),
        proptest::collection::vec(any::<u8>(), 0..60).prop_map(SqlValue::Blob),
        any::<bool>().prop_map(SqlValue::Bool),
    ]
}

fn column_type_of(v: &SqlValue) -> SqlType {
    match v {
        SqlValue::Null | SqlValue::Int(_) => SqlType::Integer,
        SqlValue::Real(_) => SqlType::Real,
        SqlValue::Text(_) => SqlType::Text,
        SqlValue::Blob(_) => SqlType::Blob,
        SqlValue::Bool(_) => SqlType::Boolean,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// literal → tokenizer → parser → INSERT → SELECT returns the value.
    #[test]
    fn literal_round_trip(v in sql_value()) {
        let db = Database::in_memory();
        let ty = match column_type_of(&v) {
            SqlType::Integer => "INTEGER",
            SqlType::Real => "REAL",
            SqlType::Text => "TEXT",
            SqlType::Blob => "BLOB",
            SqlType::Boolean => "BOOLEAN",
        };
        db.execute(&format!("CREATE TABLE t (id INT PRIMARY KEY, v {ty})")).unwrap();
        db.execute(&format!("INSERT INTO t VALUES (1, {})", v.to_literal())).unwrap();
        let rs = db.execute("SELECT v FROM t WHERE id = 1").unwrap();
        let got = rs.scalar().unwrap();
        match (&v, got) {
            (SqlValue::Real(a), SqlValue::Real(b)) => {
                // Printed-and-reparsed floats must match exactly: Rust's
                // float formatting is round-trip precise.
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            _ => prop_assert_eq!(&v, got),
        }
    }

    /// Parameter binding is equivalent to hand-written literals, for any
    /// text (quotes, unicode, control characters...).
    #[test]
    fn bound_text_round_trip(s in ".{0,80}") {
        let db = Database::in_memory();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").unwrap();
        let sql = bind("INSERT INTO t VALUES (1, ?)", &[SqlValue::Text(s.clone())]).unwrap();
        db.execute(&sql).unwrap();
        let q = bind("SELECT id FROM t WHERE v = ?", &[SqlValue::Text(s.clone())]).unwrap();
        let rs = db.execute(&q).unwrap();
        prop_assert_eq!(rs.rows.len(), 1, "text {:?} did not round-trip", s);
    }

    /// The count of rows matching `n < pivot` plus the count matching
    /// `n >= pivot` equals the total (for non-NULL columns) — exercises
    /// comparison + WHERE machinery against Rust as the oracle.
    #[test]
    fn where_partitions_rows(values in proptest::collection::vec(any::<i32>(), 1..40), pivot in any::<i32>()) {
        let db = Database::in_memory();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, n INT)").unwrap();
        for (i, n) in values.iter().enumerate() {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {n})")).unwrap();
        }
        let lt = db.execute(&format!("SELECT COUNT(*) FROM t WHERE n < {pivot}")).unwrap();
        let ge = db.execute(&format!("SELECT COUNT(*) FROM t WHERE n >= {pivot}")).unwrap();
        let (Some(SqlValue::Int(a)), Some(SqlValue::Int(b))) = (lt.scalar(), ge.scalar()) else {
            return Err(TestCaseError::fail("COUNT did not return ints"));
        };
        prop_assert_eq!(a + b, values.len() as i64);
        let expect_lt = values.iter().filter(|&&n| n < pivot).count() as i64;
        prop_assert_eq!(*a, expect_lt);
    }

    /// ORDER BY agrees with Rust's sort.
    #[test]
    fn order_by_matches_rust_sort(values in proptest::collection::vec(any::<i64>(), 1..30)) {
        let db = Database::in_memory();
        db.execute("CREATE TABLE t (id INT PRIMARY KEY, n INT)").unwrap();
        for (i, n) in values.iter().enumerate() {
            db.execute(&format!("INSERT INTO t VALUES ({i}, {n})")).unwrap();
        }
        let rs = db.execute("SELECT n FROM t ORDER BY n").unwrap();
        let got: Vec<i64> = rs.rows.iter().map(|r| match &r[0] {
            SqlValue::Int(n) => *n,
            other => panic!("{other:?}"),
        }).collect();
        let mut expect = values.clone();
        expect.sort();
        prop_assert_eq!(got, expect);
    }

    /// Transactions: a rolled-back batch of arbitrary mutations leaves the
    /// table byte-identical to before.
    #[test]
    fn rollback_is_exact(
        initial in proptest::collection::vec((0i64..50, any::<i32>()), 1..20),
        mutations in proptest::collection::vec((0i64..50, any::<i32>()), 0..20)
    ) {
        let db = Database::in_memory();
        db.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)").unwrap();
        for (k, v) in &initial {
            db.execute(&format!("INSERT OR REPLACE INTO t VALUES ({k}, {v})")).unwrap();
        }
        let before = db.execute("SELECT * FROM t ORDER BY k").unwrap();
        db.execute("BEGIN").unwrap();
        for (i, (k, v)) in mutations.iter().enumerate() {
            match i % 3 {
                0 => { db.execute(&format!("INSERT OR REPLACE INTO t VALUES ({k}, {v})")).unwrap(); }
                1 => { db.execute(&format!("DELETE FROM t WHERE k = {k}")).unwrap(); }
                _ => { db.execute(&format!("UPDATE t SET v = {v} WHERE k = {k}")).unwrap(); }
            }
        }
        db.execute("ROLLBACK").unwrap();
        let after = db.execute("SELECT * FROM t ORDER BY k").unwrap();
        prop_assert_eq!(before, after);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The key-value bridge over a real server is lossless for arbitrary
    /// keys and binary payloads (fewer cases: spins up a TCP server each
    /// time).
    #[test]
    fn kv_bridge_lossless(
        pairs in proptest::collection::vec((".{1,30}", proptest::collection::vec(any::<u8>(), 0..200)), 1..8)
    ) {
        use kvapi::KeyValue;
        let server = minisql::SqlServer::start_in_memory().unwrap();
        let kv = minisql::SqlKv::connect(server.addr()).unwrap();
        let mut expected = std::collections::HashMap::new();
        for (k, v) in &pairs {
            kv.put(k, v).unwrap();
            expected.insert(k.clone(), v.clone());
        }
        for (k, v) in &expected {
            let got = kv.get(k).unwrap().unwrap();
            prop_assert_eq!(got.as_ref(), &v[..]);
        }
        prop_assert_eq!(kv.keys().unwrap().len(), expected.len());
    }
}
