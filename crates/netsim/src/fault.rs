//! The fault model: deterministic, seedable injection of the failure modes
//! a WAN client actually sees.
//!
//! The latency model answers "how long does a healthy request take"; this
//! module answers "what happens when the path is *not* healthy". Each
//! simulated failure mode maps to a real-world cause:
//!
//! * **connection refusal** — the service is down or a load balancer sheds
//!   the connection before any byte is exchanged;
//! * **mid-stream reset** — a crashed worker, an idle-timeout firewall, or
//!   a failing NAT drops the connection after the request was sent;
//! * **stall** — the reply is delayed far beyond the latency model (GC
//!   pause, overloaded server, black-holed packets awaiting TCP timeouts);
//! * **byte-dribble** — the reply arrives one byte at a time (slow-loris
//!   shaped degradation that defeats naive *per-socket-op* timeouts: every
//!   individual read makes progress, yet the request never completes);
//! * **partial write** — a prefix of the reply is delivered and the
//!   connection dies, so framing-layer truncation handling is exercised;
//! * **error rate** — the service answers, but with a server-side error.
//!
//! Like [`crate::LatencyModel`], every decision is drawn from a seeded RNG,
//! so a chaos run is reproducible bit-for-bit for a fixed request order.
//! The model inside a [`FaultInjector`] can be swapped at runtime
//! ([`FaultInjector::set_model`]) which is how recovery tests clear an
//! outage and assert the client converges.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Probabilities (each in `0.0..=1.0`) for the simulated failure modes of
/// one network path / remote service.
///
/// Reply-side faults are evaluated in precedence order — error rate, reset,
/// stall, dribble, partial write — and at most one fires per request.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultModel {
    /// Probability a new connection is refused (severed before any I/O).
    pub refuse_prob: f64,
    /// Probability the connection is reset after the request is read but
    /// before any reply byte is written.
    pub reset_prob: f64,
    /// Probability the reply stalls for [`FaultModel::stall_ms`] first.
    pub stall_prob: f64,
    /// Stall duration in milliseconds.
    pub stall_ms: f64,
    /// Probability the reply is dribbled out a byte at a time.
    pub dribble_prob: f64,
    /// Delay between dribbled bytes, in milliseconds.
    pub dribble_delay_ms: f64,
    /// Probability only a prefix of the reply is written before the
    /// connection dies.
    pub partial_write_prob: f64,
    /// Probability the service answers with an in-band server error.
    pub error_prob: f64,
}

impl FaultModel {
    /// A model that never injects anything (the healthy-path default).
    pub fn none() -> FaultModel {
        FaultModel {
            refuse_prob: 0.0,
            reset_prob: 0.0,
            stall_prob: 0.0,
            stall_ms: 0.0,
            dribble_prob: 0.0,
            dribble_delay_ms: 0.0,
            partial_write_prob: 0.0,
            error_prob: 0.0,
        }
    }

    /// A total outage: every connection is refused.
    pub fn outage() -> FaultModel {
        FaultModel {
            refuse_prob: 1.0,
            ..FaultModel::none()
        }
    }

    /// The chaos-suite profile: `rate` of resets plus `rate` of stalls of
    /// `stall_ms` each — the ISSUE's "seeded 5% reset + stall" shape is
    /// `FaultModel::chaos(0.05, 2000.0)`.
    pub fn chaos(rate: f64, stall_ms: f64) -> FaultModel {
        FaultModel {
            reset_prob: rate,
            stall_prob: rate,
            stall_ms,
            ..FaultModel::none()
        }
    }

    /// Does this model ever inject anything? (Lets servers skip the RNG on
    /// the hot path when faults are disabled.)
    pub fn is_none(&self) -> bool {
        self.refuse_prob <= 0.0
            && self.reset_prob <= 0.0
            && self.stall_prob <= 0.0
            && self.dribble_prob <= 0.0
            && self.partial_write_prob <= 0.0
            && self.error_prob <= 0.0
    }

    /// Deterministic injector over this model.
    pub fn injector(&self, seed: u64) -> FaultInjector {
        FaultInjector {
            model: Mutex::new(self.clone()),
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            injected: AtomicU64::new(0),
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        FaultModel::none()
    }
}

/// What the server should do to one reply.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Write the reply normally.
    Deliver,
    /// Answer with an in-band server error (HTTP 500 / `-ERR` / err frame).
    ErrorReply,
    /// Drop the connection without writing anything.
    Reset,
    /// Sleep this long, then write the reply normally (if the client is
    /// still there).
    Stall(Duration),
    /// Write the reply one byte at a time with this delay between bytes,
    /// then drop the connection after [`DRIBBLE_MAX_BYTES`] bytes.
    Dribble(Duration),
    /// Write roughly the first half of the reply bytes, then drop.
    PartialWrite,
}

/// Dribbled replies are cut off after this many bytes so a fault never
/// blocks a server thread indefinitely; the point is made long before.
pub const DRIBBLE_MAX_BYTES: usize = 32;

/// Draws fault decisions from a [`FaultModel`] using a seeded RNG.
///
/// Shared by all connection threads of a server (like
/// [`crate::LatencySampler`]) so a run is reproducible for a fixed request
/// order. The model can be swapped mid-run, which is how chaos tests start
/// and clear outages.
pub struct FaultInjector {
    model: Mutex<FaultModel>,
    rng: Mutex<SmallRng>,
    injected: AtomicU64,
}

impl FaultInjector {
    /// Replace the model (e.g. clear an outage). Takes effect for the next
    /// decision; in-flight stalls are not interrupted.
    pub fn set_model(&self, model: FaultModel) {
        *lock(&self.model) = model;
    }

    /// Current model (cloned).
    pub fn model(&self) -> FaultModel {
        lock(&self.model).clone()
    }

    /// Total faults injected so far (refusals + non-`Deliver` actions).
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Should this new connection be refused (severed before any I/O)?
    pub fn refuse_connection(&self) -> bool {
        let p = lock(&self.model).refuse_prob;
        if p <= 0.0 {
            return false;
        }
        let refuse = lock(&self.rng).gen_bool(p.min(1.0));
        if refuse {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        refuse
    }

    /// Decide the fate of one reply. At most one fault fires, evaluated in
    /// precedence order: error, reset, stall, dribble, partial write.
    pub fn reply_action(&self) -> FaultAction {
        let model = lock(&self.model).clone();
        if model.is_none() {
            return FaultAction::Deliver;
        }
        let action = {
            let mut rng = lock(&self.rng);
            if model.error_prob > 0.0 && rng.gen_bool(model.error_prob.min(1.0)) {
                FaultAction::ErrorReply
            } else if model.reset_prob > 0.0 && rng.gen_bool(model.reset_prob.min(1.0)) {
                FaultAction::Reset
            } else if model.stall_prob > 0.0 && rng.gen_bool(model.stall_prob.min(1.0)) {
                FaultAction::Stall(Duration::from_secs_f64(model.stall_ms.max(0.0) / 1000.0))
            } else if model.dribble_prob > 0.0 && rng.gen_bool(model.dribble_prob.min(1.0)) {
                FaultAction::Dribble(Duration::from_secs_f64(
                    model.dribble_delay_ms.max(0.0) / 1000.0,
                ))
            } else if model.partial_write_prob > 0.0
                && rng.gen_bool(model.partial_write_prob.min(1.0))
            {
                FaultAction::PartialWrite
            } else {
                FaultAction::Deliver
            }
        };
        if action != FaultAction::Deliver {
            self.injected.fetch_add(1, Ordering::Relaxed);
        }
        action
    }
}

/// Poison-proof lock: fault decisions must keep flowing even if a panicking
/// connection thread died while holding the mutex.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_model_never_fires() {
        let inj = FaultModel::none().injector(1);
        assert!(!inj.refuse_connection());
        for _ in 0..100 {
            assert_eq!(inj.reply_action(), FaultAction::Deliver);
        }
        assert_eq!(inj.injected(), 0);
    }

    #[test]
    fn outage_refuses_everything() {
        let inj = FaultModel::outage().injector(2);
        for _ in 0..20 {
            assert!(inj.refuse_connection());
        }
        assert_eq!(inj.injected(), 20);
    }

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let m = FaultModel {
            reset_prob: 0.2,
            stall_prob: 0.2,
            stall_ms: 10.0,
            error_prob: 0.1,
            ..FaultModel::none()
        };
        let a: Vec<FaultAction> = {
            let inj = m.injector(42);
            (0..64).map(|_| inj.reply_action()).collect()
        };
        let b: Vec<FaultAction> = {
            let inj = m.injector(42);
            (0..64).map(|_| inj.reply_action()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<FaultAction> = {
            let inj = m.injector(43);
            (0..64).map(|_| inj.reply_action()).collect()
        };
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn rates_are_approximately_honored() {
        let inj = FaultModel::chaos(0.25, 5.0).injector(7);
        let n = 4000;
        let mut resets = 0;
        let mut stalls = 0;
        for _ in 0..n {
            match inj.reply_action() {
                FaultAction::Reset => resets += 1,
                FaultAction::Stall(d) => {
                    assert_eq!(d, Duration::from_millis(5));
                    stalls += 1;
                }
                FaultAction::Deliver => {}
                other => panic!("chaos model produced {other:?}"),
            }
        }
        let reset_frac = resets as f64 / n as f64;
        // Stalls are drawn after resets miss, so their observed rate is
        // 0.25 of the remaining 0.75.
        let stall_frac = stalls as f64 / n as f64;
        assert!((reset_frac - 0.25).abs() < 0.05, "reset rate {reset_frac}");
        assert!(
            (stall_frac - 0.1875).abs() < 0.05,
            "stall rate {stall_frac}"
        );
        assert_eq!(inj.injected(), resets + stalls);
    }

    #[test]
    fn model_swap_takes_effect_immediately() {
        let inj = FaultModel::outage().injector(3);
        assert!(inj.refuse_connection());
        inj.set_model(FaultModel::none());
        assert!(!inj.refuse_connection());
        assert_eq!(inj.reply_action(), FaultAction::Deliver);
        inj.set_model(FaultModel {
            error_prob: 1.0,
            ..FaultModel::none()
        });
        assert_eq!(inj.reply_action(), FaultAction::ErrorReply);
    }

    #[test]
    fn at_most_one_fault_per_reply() {
        // With every probability at 1.0, precedence picks exactly one.
        let m = FaultModel {
            refuse_prob: 0.0,
            reset_prob: 1.0,
            stall_prob: 1.0,
            stall_ms: 1.0,
            dribble_prob: 1.0,
            dribble_delay_ms: 1.0,
            partial_write_prob: 1.0,
            error_prob: 1.0,
        };
        let inj = m.injector(9);
        assert_eq!(inj.reply_action(), FaultAction::ErrorReply);
    }
}
