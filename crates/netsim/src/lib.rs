//! # netsim — wide-area network latency simulation
//!
//! The paper evaluates two commercial cloud data stores ("Cloud Store 1" and
//! "Cloud Store 2") that are *geographically distant* from the client; their
//! latencies are dominated by network round-trip time, transfer bandwidth,
//! and server-side variability ("requests ... might be competing for server
//! resources with computing tasks from other cloud users"). We do not have
//! those services, so the `cloudstore` crate runs a real HTTP object-store
//! server over loopback TCP and injects delays drawn from the models in this
//! crate. The substitution preserves what the paper measures: the *client
//! code path* is identical (socket I/O, HTTP framing, serialization) and the
//! delay distribution reproduces the paper's qualitative observations —
//! high base latency, size-dependent transfer time, and heavy-tailed
//! variance (especially for Cloud Store 1).
//!
//! The model is deterministic given a seed, so benchmarks are repeatable.

#![forbid(unsafe_code)]

pub mod fault;
pub mod model;
pub mod profiles;

pub use fault::{FaultAction, FaultInjector, FaultModel};
pub use model::{LatencyModel, LatencySampler};
pub use profiles::Profile;
