//! The latency model: base RTT + lognormal jitter + bandwidth + contention.
//!
//! A request's simulated delay is composed of four parts:
//!
//! 1. **base round-trip time** — speed-of-light + routing distance to the
//!    (simulated) remote region;
//! 2. **jitter** — multiplicative lognormal noise on the RTT, the standard
//!    model for WAN latency variation;
//! 3. **transfer time** — `payload_bytes / bandwidth`, which makes latency
//!    grow with object size exactly as in the paper's log–log figures;
//! 4. **contention spikes** — with small probability the request is slowed
//!    by a multiplicative factor, modelling the multi-tenant interference the
//!    paper blames for Cloud Store 1's high variance.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;
use std::time::Duration;

/// Parameters describing one simulated network path + remote service.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyModel {
    /// Mean round-trip time, in milliseconds, for a zero-byte exchange.
    pub base_rtt_ms: f64,
    /// Sigma of the lognormal jitter multiplier (0 = no jitter). The
    /// multiplier is `exp(N(0, sigma^2))`, normalized so its median is 1.
    pub jitter_sigma: f64,
    /// Sustained transfer bandwidth in bytes/second (applies to the larger
    /// of the request and response payloads).
    pub bandwidth_bps: f64,
    /// Probability that a request hits a contention spike.
    pub contention_prob: f64,
    /// Multiplier applied to the whole delay during a spike.
    pub contention_mult: f64,
    /// Fixed per-request service time at the server, ms (parse, lookup).
    pub service_ms: f64,
}

impl LatencyModel {
    /// A model with no delay at all (useful for tests of the plumbing).
    pub fn zero() -> LatencyModel {
        LatencyModel {
            base_rtt_ms: 0.0,
            jitter_sigma: 0.0,
            bandwidth_bps: f64::INFINITY,
            contention_prob: 0.0,
            contention_mult: 1.0,
            service_ms: 0.0,
        }
    }

    /// Deterministic sampler over this model.
    pub fn sampler(&self, seed: u64) -> LatencySampler {
        LatencySampler {
            model: self.clone(),
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
        }
    }

    /// The deterministic (jitter-free, spike-free) delay for a payload —
    /// the median of the sampled distribution. Exposed so tests can assert
    /// the sampled values cluster around it.
    pub fn nominal_ms(&self, payload_bytes: usize) -> f64 {
        let transfer_ms = if self.bandwidth_bps.is_finite() && self.bandwidth_bps > 0.0 {
            payload_bytes as f64 / self.bandwidth_bps * 1000.0
        } else {
            0.0
        };
        self.base_rtt_ms + self.service_ms + transfer_ms
    }
}

/// Draws request delays from a [`LatencyModel`] using a seeded RNG.
///
/// Thread-safe: the server handles connections on multiple threads but all
/// draw from one sequence, which keeps runs reproducible for a fixed request
/// order (and statistically identical regardless of interleaving).
pub struct LatencySampler {
    model: LatencyModel,
    rng: Mutex<SmallRng>,
}

impl LatencySampler {
    /// Sample the total delay for a request whose dominant payload is
    /// `payload_bytes` long.
    pub fn sample(&self, payload_bytes: usize) -> Duration {
        let mut rng = self.rng.lock().unwrap();
        let mut ms = self.model.nominal_ms(payload_bytes);
        if self.model.jitter_sigma > 0.0 {
            // Box-Muller standard normal, then lognormal multiplier with
            // median 1 so jitter widens the distribution without shifting
            // its center.
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let z = (-2.0 * u1.ln()).sqrt() * u2.cos();
            ms *= (self.model.jitter_sigma * z).exp();
        }
        if self.model.contention_prob > 0.0 && rng.gen_bool(self.model.contention_prob) {
            ms *= self.model.contention_mult;
        }
        Duration::from_secs_f64((ms / 1000.0).max(0.0))
    }

    /// The underlying model.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_model_has_zero_delay() {
        let s = LatencyModel::zero().sampler(1);
        assert_eq!(s.sample(0), Duration::ZERO);
        assert_eq!(s.sample(1 << 20), Duration::ZERO);
    }

    #[test]
    fn nominal_includes_transfer_time() {
        let m = LatencyModel {
            base_rtt_ms: 10.0,
            jitter_sigma: 0.0,
            bandwidth_bps: 1_000_000.0, // 1 MB/s
            contention_prob: 0.0,
            contention_mult: 1.0,
            service_ms: 2.0,
        };
        // 500 KB at 1 MB/s = 500 ms transfer.
        assert!((m.nominal_ms(500_000) - 512.0).abs() < 1e-9);
        assert!((m.nominal_ms(0) - 12.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_free_sampling_equals_nominal() {
        let m = LatencyModel {
            base_rtt_ms: 25.0,
            jitter_sigma: 0.0,
            bandwidth_bps: f64::INFINITY,
            contention_prob: 0.0,
            contention_mult: 1.0,
            service_ms: 0.0,
        };
        let s = m.sampler(7);
        for _ in 0..10 {
            let d = s.sample(1234);
            assert!((d.as_secs_f64() * 1000.0 - 25.0).abs() < 1e-9);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let m = LatencyModel {
            base_rtt_ms: 40.0,
            jitter_sigma: 0.5,
            bandwidth_bps: 5e6,
            contention_prob: 0.05,
            contention_mult: 8.0,
            service_ms: 1.0,
        };
        let a: Vec<Duration> = {
            let s = m.sampler(42);
            (0..32).map(|i| s.sample(i * 100)).collect()
        };
        let b: Vec<Duration> = {
            let s = m.sampler(42);
            (0..32).map(|i| s.sample(i * 100)).collect()
        };
        assert_eq!(a, b);
        let c: Vec<Duration> = {
            let s = m.sampler(43);
            (0..32).map(|i| s.sample(i * 100)).collect()
        };
        assert_ne!(a, c, "different seeds should diverge");
    }

    #[test]
    fn jitter_median_stays_near_nominal() {
        let m = LatencyModel {
            base_rtt_ms: 100.0,
            jitter_sigma: 0.4,
            bandwidth_bps: f64::INFINITY,
            contention_prob: 0.0,
            contention_mult: 1.0,
            service_ms: 0.0,
        };
        let s = m.sampler(9);
        let mut v: Vec<f64> = (0..4001)
            .map(|_| s.sample(0).as_secs_f64() * 1000.0)
            .collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        // Lognormal with median-1 multiplier: median ≈ nominal within ~10%.
        assert!(
            (median - 100.0).abs() < 10.0,
            "median {median} drifted from nominal 100"
        );
    }

    #[test]
    fn contention_produces_heavy_tail() {
        let base = LatencyModel {
            base_rtt_ms: 50.0,
            jitter_sigma: 0.0,
            bandwidth_bps: f64::INFINITY,
            contention_prob: 0.2,
            contention_mult: 10.0,
            service_ms: 0.0,
        };
        let s = base.sampler(5);
        let samples: Vec<f64> = (0..2000)
            .map(|_| s.sample(0).as_secs_f64() * 1000.0)
            .collect();
        let spikes = samples.iter().filter(|&&ms| ms > 400.0).count();
        let frac = spikes as f64 / samples.len() as f64;
        assert!(
            (frac - 0.2).abs() < 0.05,
            "spike fraction {frac} far from configured 0.2"
        );
    }
}
