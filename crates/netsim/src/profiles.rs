//! Named latency profiles matching the paper's experimental setup.
//!
//! The paper's client talks to (a) two geographically distant commercial
//! cloud stores, (b) services on the same machine (MySQL, Redis) and (c) the
//! local file system. The profiles below encode that hierarchy. Values were
//! chosen so the reproduced figures land in the same latency decades as the
//! paper's log–log plots: cloud reads of small objects are hundreds of
//! milliseconds while local stores are in the sub-millisecond to millisecond
//! range, and Cloud Store 1 shows markedly more variance than Cloud Store 2.

use crate::model::LatencyModel;

/// A named, documented latency profile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Profile {
    /// "Cloud Store 1": most distant, most variable (the paper observed the
    /// highest latencies and the most variance here, attributing it partly
    /// to multi-tenant contention).
    Cloud1,
    /// "Cloud Store 2": distant but faster and steadier than Cloud1.
    Cloud2,
    /// Same-machine TCP service (how the paper ran MySQL and Redis).
    Loopback,
    /// No injected delay at all.
    None,
}

impl Profile {
    /// The latency model for this profile.
    pub fn model(self) -> LatencyModel {
        match self {
            Profile::Cloud1 => LatencyModel {
                base_rtt_ms: 110.0,
                jitter_sigma: 0.35,
                bandwidth_bps: 2.5e6, // ~2.5 MB/s sustained WAN transfer
                contention_prob: 0.08,
                contention_mult: 5.0,
                service_ms: 6.0,
            },
            Profile::Cloud2 => LatencyModel {
                base_rtt_ms: 55.0,
                jitter_sigma: 0.15,
                bandwidth_bps: 5.0e6,
                contention_prob: 0.02,
                contention_mult: 3.0,
                service_ms: 4.0,
            },
            // Loopback services still pay kernel + scheduling costs, but the
            // real socket I/O already provides those; inject nothing extra.
            Profile::Loopback | Profile::None => LatencyModel::zero(),
        }
    }

    /// As [`Profile::model`] but with every time component scaled by
    /// `factor`. Benchmarks use small factors (e.g. 0.1) for quick runs:
    /// the *relative* shape of the figures is preserved while wall-clock
    /// time shrinks.
    pub fn scaled_model(self, factor: f64) -> LatencyModel {
        let m = self.model();
        LatencyModel {
            base_rtt_ms: m.base_rtt_ms * factor,
            service_ms: m.service_ms * factor,
            // Scaling time down = scaling bandwidth up.
            bandwidth_bps: if m.bandwidth_bps.is_finite() {
                m.bandwidth_bps / factor.max(1e-9)
            } else {
                m.bandwidth_bps
            },
            ..m
        }
    }

    /// Parse a profile name as used on benchmark command lines.
    pub fn from_name(name: &str) -> Option<Profile> {
        match name.to_ascii_lowercase().as_str() {
            "cloud1" | "cloud-store-1" => Some(Profile::Cloud1),
            "cloud2" | "cloud-store-2" => Some(Profile::Cloud2),
            "loopback" | "local" => Some(Profile::Loopback),
            "none" | "zero" => Some(Profile::None),
            _ => None,
        }
    }

    /// Display name used in results files.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Cloud1 => "cloud1",
            Profile::Cloud2 => "cloud2",
            Profile::Loopback => "loopback",
            Profile::None => "none",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloud1_slower_and_more_variable_than_cloud2() {
        let c1 = Profile::Cloud1.model();
        let c2 = Profile::Cloud2.model();
        assert!(c1.base_rtt_ms > c2.base_rtt_ms);
        assert!(c1.jitter_sigma > c2.jitter_sigma);
        assert!(c1.contention_prob > c2.contention_prob);
        assert!(c1.bandwidth_bps < c2.bandwidth_bps);
    }

    #[test]
    fn loopback_injects_nothing() {
        assert_eq!(Profile::Loopback.model(), LatencyModel::zero());
        assert_eq!(Profile::None.model(), LatencyModel::zero());
    }

    #[test]
    fn scaling_shrinks_nominal_latency_proportionally() {
        let full = Profile::Cloud1.model();
        let tenth = Profile::Cloud1.scaled_model(0.1);
        for size in [0usize, 10_000, 1_000_000] {
            let f = full.nominal_ms(size);
            let t = tenth.nominal_ms(size);
            assert!(
                (t - f * 0.1).abs() < 1e-6,
                "size {size}: {t} != {}",
                f * 0.1
            );
        }
    }

    #[test]
    fn name_round_trip() {
        for p in [
            Profile::Cloud1,
            Profile::Cloud2,
            Profile::Loopback,
            Profile::None,
        ] {
            assert_eq!(Profile::from_name(p.name()), Some(p));
        }
        assert_eq!(Profile::from_name("Cloud-Store-1"), Some(Profile::Cloud1));
        assert_eq!(Profile::from_name("mars"), None);
    }
}
