//! Property-based invariants of the latency model.

use netsim::{LatencyModel, Profile};
use proptest::prelude::*;

fn model() -> impl Strategy<Value = LatencyModel> {
    (
        0.0f64..500.0, // base rtt
        0.0f64..1.0,   // jitter sigma
        1e3f64..1e9,   // bandwidth
        0.0f64..0.5,   // contention prob
        1.0f64..20.0,  // contention mult
        0.0f64..20.0,  // service ms
    )
        .prop_map(|(rtt, sigma, bw, cp, cm, svc)| LatencyModel {
            base_rtt_ms: rtt,
            jitter_sigma: sigma,
            bandwidth_bps: bw,
            contention_prob: cp,
            contention_mult: cm,
            service_ms: svc,
        })
}

proptest! {
    /// Delays are always finite and non-negative, for any model and size.
    #[test]
    fn samples_are_sane(m in model(), seed in any::<u64>(), size in 0usize..10_000_000) {
        let s = m.sampler(seed);
        for _ in 0..8 {
            let d = s.sample(size);
            prop_assert!(d.as_secs_f64().is_finite());
            prop_assert!(d.as_secs_f64() >= 0.0);
        }
    }

    /// Nominal latency is monotone in payload size.
    #[test]
    fn nominal_monotone_in_size(m in model(), a in 0usize..1_000_000, b in 0usize..1_000_000) {
        let (small, large) = (a.min(b), a.max(b));
        prop_assert!(m.nominal_ms(small) <= m.nominal_ms(large) + 1e-9);
    }

    /// Same seed → identical sequence; scaling a profile scales nominals.
    #[test]
    fn determinism(seed in any::<u64>(), sizes in proptest::collection::vec(0usize..100_000, 1..16)) {
        let m = Profile::Cloud1.model();
        let s1 = m.sampler(seed);
        let s2 = m.sampler(seed);
        for &size in &sizes {
            prop_assert_eq!(s1.sample(size), s2.sample(size));
        }
    }

    #[test]
    fn scaling_is_linear(factor in 0.01f64..2.0, size in 0usize..1_000_000) {
        let full = Profile::Cloud2.model().nominal_ms(size);
        let scaled = Profile::Cloud2.scaled_model(factor).nominal_ms(size);
        prop_assert!((scaled - full * factor).abs() < full * 1e-6 + 1e-9);
    }
}
