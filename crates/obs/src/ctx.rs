//! Distributed trace context: ids, wire encodings, and thread-local
//! propagation.
//!
//! A [`TraceContext`] names one logical client operation (128-bit trace id)
//! and one span within it (64-bit span id). Clients generate a root context
//! once per operation — **outside** any retry boundary, so every attempt
//! shares the same ids (xlint's `trace-ctx-loss` rule enforces this) — and
//! propagate a child context over each wire protocol:
//!
//! * cloudstore — `x-trace-ctx` request header, `x-server-span` response
//!   header;
//! * miniredis — trailing `trace-ctx=<ctx>` bulk argument, `trace-span=`
//!   bulk in a two-element reply wrapper;
//! * minisql — `ctx` field in the request frame, `span` field spliced into
//!   the response frame.
//!
//! Ids come from a process-wide seeded RNG, so a fixed-seed run produces
//! the same trace ids every time — chaos failures reproduce bit-for-bit,
//! trace ids included.
//!
//! The thread-local scope ([`activate`] / [`current`]) is how layers
//! communicate without parameter threading: the owner of a trace activates
//! its context, nested layers (resilience retries, store clients receiving
//! server spans) report into the active scope via [`report_event`] /
//! [`report_server_span`], and the owner drains the scope into its
//! [`crate::Trace`] when the operation completes.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::cell::RefCell;
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Seed for the trace-id generator (deterministic runs).
const ID_SEED: u64 = 0x7ace;

fn id_rng() -> &'static Mutex<SmallRng> {
    static RNG: OnceLock<Mutex<SmallRng>> = OnceLock::new();
    RNG.get_or_init(|| Mutex::new(SmallRng::seed_from_u64(ID_SEED)))
}

/// A fresh non-zero 64-bit span id from the seeded id generator.
pub fn fresh_span_id() -> u64 {
    let mut rng = id_rng().lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let id = rng.next_u64();
        if id != 0 {
            return id;
        }
    }
}

fn fresh_trace_id() -> u128 {
    let mut rng = id_rng().lock().unwrap_or_else(|e| e.into_inner());
    loop {
        let id = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        if id != 0 {
            return id;
        }
    }
}

/// The identity of one span within one distributed trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// 128-bit id shared by every span of one logical operation.
    pub trace_id: u128,
    /// This span's 64-bit id.
    pub span_id: u64,
    /// The parent span's id (`None` for a root span).
    pub parent_id: Option<u64>,
    /// Sampling hint carried on the wire (retention is decided by the
    /// flight recorder's tail sampler, not here).
    pub sampled: bool,
}

impl TraceContext {
    /// A new root context with fresh trace and span ids.
    ///
    /// Call this once per logical operation, *before* entering any retry
    /// helper — a context minted inside a retry closure gives every attempt
    /// a different trace and the attempts can never be joined.
    pub fn new_root() -> TraceContext {
        TraceContext {
            trace_id: fresh_trace_id(),
            span_id: fresh_span_id(),
            parent_id: None,
            sampled: true,
        }
    }

    /// A child context: same trace, fresh span id, parented to this span.
    pub fn child(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: fresh_span_id(),
            parent_id: Some(self.span_id),
            sampled: self.sampled,
        }
    }

    /// Wire encoding: `<trace:032x>-<span:016x>-<parent:016x|empty>-<0|1>`.
    pub fn encode(&self) -> String {
        let parent = match self.parent_id {
            Some(p) => format!("{p:016x}"),
            None => String::new(),
        };
        format!(
            "{:032x}-{:016x}-{parent}-{}",
            self.trace_id,
            self.span_id,
            u8::from(self.sampled)
        )
    }

    /// Parse the wire encoding; `None` on any malformed input (old peers,
    /// corruption — the caller must treat this as "no context").
    pub fn decode(s: &str) -> Option<TraceContext> {
        let mut parts = s.split('-');
        let trace_id = u128::from_str_radix(parts.next()?, 16).ok()?;
        let span_id = u64::from_str_radix(parts.next()?, 16).ok()?;
        let parent = parts.next()?;
        let parent_id = if parent.is_empty() {
            None
        } else {
            Some(u64::from_str_radix(parent, 16).ok()?)
        };
        let sampled = match parts.next()? {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        if parts.next().is_some() || trace_id == 0 || span_id == 0 {
            return None;
        }
        Some(TraceContext {
            trace_id,
            span_id,
            parent_id,
            sampled,
        })
    }
}

/// A server's account of one request it served, returned to the client in
/// the response for client-side trace assembly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServerSpan {
    /// Which server produced the span (`miniredis`, `minisql`,
    /// `cloudstore`). Must contain no whitespace — it is the first field of
    /// the space-separated wire encoding.
    pub server: String,
    /// The server-side span id (parented to the client's span).
    pub span_id: u64,
    /// Time the request waited between arrival and execution.
    pub queue_ns: u64,
    /// Time spent executing the operation.
    pub execute_ns: u64,
    /// Time spent serializing the response.
    pub serialize_ns: u64,
}

impl ServerSpan {
    /// A span with a fresh id from measured stage durations.
    pub fn new(
        server: &str,
        queue: std::time::Duration,
        execute: std::time::Duration,
        serialize: std::time::Duration,
    ) -> ServerSpan {
        let ns = |d: std::time::Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        ServerSpan {
            server: server.to_string(),
            span_id: fresh_span_id(),
            queue_ns: ns(queue),
            execute_ns: ns(execute),
            serialize_ns: ns(serialize),
        }
    }

    /// Wire encoding: `<server> <span:016x> <queue> <execute> <serialize>`.
    pub fn encode(&self) -> String {
        format!(
            "{} {:016x} {} {} {}",
            self.server, self.span_id, self.queue_ns, self.execute_ns, self.serialize_ns
        )
    }

    /// Parse the wire encoding; `None` on malformed input.
    pub fn decode(s: &str) -> Option<ServerSpan> {
        let mut parts = s.split_whitespace();
        let server = parts.next()?.to_string();
        let span_id = u64::from_str_radix(parts.next()?, 16).ok()?;
        let queue_ns: u64 = parts.next()?.parse().ok()?;
        let execute_ns: u64 = parts.next()?.parse().ok()?;
        let serialize_ns: u64 = parts.next()?.parse().ok()?;
        if parts.next().is_some() {
            return None;
        }
        Some(ServerSpan {
            server,
            span_id,
            queue_ns,
            execute_ns,
            serialize_ns,
        })
    }
}

struct ScopeState {
    ctx: TraceContext,
    events: Vec<(Instant, String, String)>,
    server_spans: Vec<ServerSpan>,
}

thread_local! {
    static ACTIVE: RefCell<Option<ScopeState>> = const { RefCell::new(None) };
}

/// Everything reported into a scope while it was active.
#[derive(Default)]
pub struct ScopeData {
    /// `(when, name, detail)` events, in report order.
    pub events: Vec<(Instant, String, String)>,
    /// Server spans received from responses, in arrival order.
    pub server_spans: Vec<ServerSpan>,
}

/// RAII handle for an activated scope; call [`ContextScope::finish`] to
/// collect what was reported. Dropping without finishing restores the outer
/// scope and discards the collected data (panic safety).
pub struct ContextScope {
    prev: Option<ScopeState>,
    armed: bool,
}

/// Make `ctx` the current thread's active trace context. Nested activations
/// shadow the outer scope until finished/dropped.
pub fn activate(ctx: TraceContext) -> ContextScope {
    let prev = ACTIVE.with(|a| {
        a.borrow_mut().replace(ScopeState {
            ctx,
            events: Vec::new(),
            server_spans: Vec::new(),
        })
    });
    ContextScope { prev, armed: true }
}

impl ContextScope {
    /// Deactivate, restoring any outer scope, and return what nested layers
    /// reported while this scope was active.
    pub fn finish(mut self) -> ScopeData {
        self.armed = false;
        let state = ACTIVE.with(|a| a.borrow_mut().take());
        ACTIVE.with(|a| *a.borrow_mut() = self.prev.take());
        match state {
            Some(s) => ScopeData {
                events: s.events,
                server_spans: s.server_spans,
            },
            None => ScopeData::default(),
        }
    }
}

impl Drop for ContextScope {
    fn drop(&mut self) {
        if self.armed {
            ACTIVE.with(|a| *a.borrow_mut() = self.prev.take());
        }
    }
}

/// The active trace context, if any. Store clients use this to decide
/// whether to join an enclosing trace (child context) or start their own
/// root.
pub fn current() -> Option<TraceContext> {
    ACTIVE.with(|a| a.borrow().as_ref().map(|s| s.ctx))
}

/// Record a structured event (`retry`, `breaker`, `deadline`, `cache`, …)
/// into the active scope. No-op when no scope is active.
pub fn report_event(name: &str, detail: impl Into<String>) {
    ACTIVE.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            s.events
                .push((Instant::now(), name.to_string(), detail.into()));
        }
    });
}

/// Record a server span received in a response into the active scope.
/// No-op when no scope is active.
pub fn report_server_span(span: ServerSpan) {
    ACTIVE.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            s.server_spans.push(span);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_encode_decode_round_trips() {
        let root = TraceContext::new_root();
        assert_eq!(TraceContext::decode(&root.encode()), Some(root));
        let child = root.child();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, Some(root.span_id));
        assert_ne!(child.span_id, root.span_id);
        assert_eq!(TraceContext::decode(&child.encode()), Some(child));
    }

    #[test]
    fn decode_rejects_malformed_input() {
        for bad in [
            "",
            "zz",
            "0-0--1",
            "deadbeef-cafe--2",
            "deadbeef-cafe--1-extra",
            "deadbeef-cafe-",
        ] {
            assert_eq!(TraceContext::decode(bad), None, "{bad:?}");
        }
    }

    #[test]
    fn server_span_round_trips() {
        let span = ServerSpan {
            server: "miniredis".to_string(),
            span_id: 0xabcd,
            queue_ns: 10,
            execute_ns: 20,
            serialize_ns: 30,
        };
        assert_eq!(ServerSpan::decode(&span.encode()), Some(span));
        assert_eq!(ServerSpan::decode("junk"), None);
        assert_eq!(ServerSpan::decode("s 10 1 2 3 4"), None);
    }

    #[test]
    fn scope_collects_and_restores() {
        assert!(current().is_none());
        let outer_ctx = TraceContext::new_root();
        let outer = activate(outer_ctx);
        assert_eq!(current(), Some(outer_ctx));
        report_event("retry", "attempt=2");

        // A nested scope shadows, then restores the outer one.
        let inner_ctx = outer_ctx.child();
        let inner = activate(inner_ctx);
        assert_eq!(current(), Some(inner_ctx));
        report_event("inner", "x");
        let inner_data = inner.finish();
        assert_eq!(inner_data.events.len(), 1);
        assert_eq!(inner_data.events[0].1, "inner");

        assert_eq!(current(), Some(outer_ctx));
        report_server_span(ServerSpan {
            server: "minisql".to_string(),
            span_id: 7,
            queue_ns: 1,
            execute_ns: 2,
            serialize_ns: 3,
        });
        let data = outer.finish();
        assert!(current().is_none());
        assert_eq!(data.events.len(), 1);
        assert_eq!(data.events[0].1, "retry");
        assert_eq!(data.server_spans.len(), 1);
    }

    #[test]
    fn reports_without_scope_are_noops() {
        report_event("retry", "attempt=2");
        report_server_span(ServerSpan {
            server: "x".to_string(),
            span_id: 1,
            queue_ns: 0,
            execute_ns: 0,
            serialize_ns: 0,
        });
        assert!(current().is_none());
    }

    #[test]
    fn dropped_scope_restores_outer() {
        let outer_ctx = TraceContext::new_root();
        let outer = activate(outer_ctx);
        {
            let _inner = activate(outer_ctx.child());
            assert_ne!(current(), Some(outer_ctx));
        }
        assert_eq!(current(), Some(outer_ctx));
        outer.finish();
    }
}
