//! Metrics federation: parse Prometheus text back into metrics, merge
//! scrapes from N nodes into one fleet view.
//!
//! The workspace's servers already expose their registries as Prometheus
//! text (cloudstore `GET /metrics`, miniredis `METRICS`, minisql
//! `METRICS`). This module closes the loop: [`parse_prometheus`] inverts
//! [`Registry::render_prometheus`] — counters and gauges read back
//! directly, and histogram `_bucket{le=...}` series re-hydrate into
//! [`HistogramSnapshot`]s by mapping each emitted upper bound back to its
//! log-linear bucket index (`le` values are exact `bucket_high` bounds, so
//! `bucket_index(le - 1)` recovers the source bucket). The renderer's
//! `_min`/`_max` extension series restore the exact observed extremes that
//! quantile estimates clamp to, which makes the round trip *lossless*:
//! `parse(render(reg))` reproduces every snapshot bit-for-bit, and merging
//! three nodes' parses equals one registry that recorded all samples.
//!
//! [`Federation`] drives the scrape side: each [`MetricsSource`] returns
//! one node's exposition text; [`Federation::poll`] parses all of them and
//! produces a [`FleetView`] with per-node series (tagged `node="<id>"`)
//! and a fleet-merged view (counters and gauges summed, histograms
//! merged). Exemplars survive federation, so a fleet p99 spike still links
//! to the trace that caused it.

use crate::hist::{bucket_index, bucket_low, HistogramSnapshot};
use crate::registry::{Exemplar, Registry};
use std::collections::BTreeMap;
use std::fmt;

/// Sorted `(key, value)` label pairs.
pub type Labels = Vec<(String, String)>;

/// One series' identity: metric name plus sorted labels.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    pub name: String,
    pub labels: Labels,
}

impl SeriesKey {
    /// Build a key with the labels sorted.
    pub fn new(name: impl Into<String>, mut labels: Labels) -> SeriesKey {
        labels.sort();
        SeriesKey {
            name: name.into(),
            labels,
        }
    }

    /// The value of one label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Does this series have `name` and carry every `(key, value)` pair in
    /// `subset`? (An empty subset matches every series of that name.)
    pub fn matches(&self, name: &str, subset: &[(&str, &str)]) -> bool {
        self.name == name && subset.iter().all(|&(k, v)| self.label(k) == Some(v))
    }
}

/// One parsed metric value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Sample {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

/// A parse failure, with the 1-based line it occurred on.
#[derive(Clone, Debug)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "metrics parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A registry's worth of parsed metrics — the in-memory form one scrape
/// hydrates into, and the unit federation merges.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ParsedMetrics {
    /// All series, keyed by `name{labels}`.
    pub series: BTreeMap<SeriesKey, Sample>,
    /// Histogram exemplars recovered from `# {trace_id="..."} value`
    /// annotations, keyed by the owning histogram's base name + labels.
    pub exemplars: BTreeMap<SeriesKey, Exemplar>,
}

impl ParsedMetrics {
    /// The histogram snapshot for `name{labels}`, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.series.get(&key_of(name, labels)) {
            Some(Sample::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// The counter value for `name{labels}`, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.series.get(&key_of(name, labels)) {
            Some(Sample::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge value for `name{labels}`, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<i64> {
        match self.series.get(&key_of(name, labels)) {
            Some(Sample::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Sum of every counter named `name` whose labels are a superset of
    /// `subset` — aggregation across a label dimension (e.g. all `cmd`s of
    /// `miniredis_commands_total`). `None` when nothing matched.
    pub fn counters_matching(&self, name: &str, subset: &[(&str, &str)]) -> Option<u64> {
        let mut sum = None;
        for (k, sample) in &self.series {
            if let Sample::Counter(v) = sample {
                if k.matches(name, subset) {
                    sum = Some(sum.unwrap_or(0u64).saturating_add(*v));
                }
            }
        }
        sum
    }

    /// Sum of every gauge named `name` whose labels are a superset of
    /// `subset`. `None` when nothing matched.
    pub fn gauges_matching(&self, name: &str, subset: &[(&str, &str)]) -> Option<i64> {
        let mut sum = None;
        for (k, sample) in &self.series {
            if let Sample::Gauge(v) = sample {
                if k.matches(name, subset) {
                    sum = Some(sum.unwrap_or(0i64).saturating_add(*v));
                }
            }
        }
        sum
    }

    /// Merge of every histogram named `name` whose labels are a superset
    /// of `subset`. `None` when nothing matched.
    pub fn histograms_matching(
        &self,
        name: &str,
        subset: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        let mut merged: Option<HistogramSnapshot> = None;
        for (k, sample) in &self.series {
            if let Sample::Histogram(h) = sample {
                if k.matches(name, subset) {
                    match &mut merged {
                        Some(m) => m.merge(h),
                        None => merged = Some(h.clone()),
                    }
                }
            }
        }
        merged
    }

    /// Remove a label key from every series (federation strips the node
    /// identity before merging). If two series collide once stripped they
    /// are merged with [`merge_sample`].
    pub fn strip_label(&mut self, key: &str) {
        let old = std::mem::take(&mut self.series);
        for (k, sample) in old {
            let mut labels = k.labels;
            labels.retain(|(lk, _)| lk != key);
            insert_merged(&mut self.series, SeriesKey::new(k.name, labels), sample);
        }
        let old = std::mem::take(&mut self.exemplars);
        for (k, ex) in old {
            let mut labels = k.labels;
            labels.retain(|(lk, _)| lk != key);
            offer_exemplar(&mut self.exemplars, SeriesKey::new(k.name, labels), ex);
        }
    }

    /// Strip the scrape's *self-identity* label only: removes `key="id"`
    /// pairs, plus (for scrapes whose configured id differs from the
    /// server's self-reported one) whatever single value of `key` is
    /// stamped uniformly on every series — the renderer's base-label
    /// signature. Genuinely per-series uses of the same key, like
    /// `cluster_node_up{node="n0"}` next to `...{node="n1"}`, survive.
    pub fn strip_identity_label(&mut self, key: &str, id: &str) {
        let uniform: Option<String> = match self.series.keys().next().and_then(|k| k.label(key)) {
            Some(first) => {
                let first = first.to_string();
                self.series
                    .keys()
                    .all(|k| k.label(key) == Some(first.as_str()))
                    .then_some(first)
            }
            None => None,
        };
        let strip = |v: &str| v == id || uniform.as_deref() == Some(v);
        let old = std::mem::take(&mut self.series);
        for (k, sample) in old {
            let mut labels = k.labels;
            labels.retain(|(lk, lv)| !(lk == key && strip(lv)));
            insert_merged(&mut self.series, SeriesKey::new(k.name, labels), sample);
        }
        let old = std::mem::take(&mut self.exemplars);
        for (k, ex) in old {
            let mut labels = k.labels;
            labels.retain(|(lk, lv)| !(lk == key && strip(lv)));
            offer_exemplar(&mut self.exemplars, SeriesKey::new(k.name, labels), ex);
        }
    }

    /// A copy with `key="value"` added to every series that does not
    /// already carry `key` — how the per-node fleet view tags each
    /// scrape's origin. Series with their own use of the key (a cluster
    /// scrape's `cluster_node_up{node="n0"}`) keep it.
    pub fn with_label(&self, key: &str, value: &str) -> ParsedMetrics {
        let mut out = ParsedMetrics::default();
        for (k, sample) in &self.series {
            out.series.insert(relabeled(k, key, value), sample.clone());
        }
        for (k, ex) in &self.exemplars {
            out.exemplars.insert(relabeled(k, key, value), *ex);
        }
        out
    }

    /// Fold another node's metrics into this one: counters and gauges sum,
    /// histograms merge. Gauges summing is the documented fleet semantic —
    /// right for resource totals (RSS, fds), meaningless for enums like
    /// breaker state, which is why the per-node view exists.
    pub fn merge_from(&mut self, other: &ParsedMetrics) {
        for (k, sample) in &other.series {
            insert_merged(&mut self.series, k.clone(), sample.clone());
        }
        for (k, ex) in &other.exemplars {
            offer_exemplar(&mut self.exemplars, k.clone(), *ex);
        }
    }

    /// Load every series into a live [`Registry`] (collector-style: values
    /// overwrite counters/gauges, histograms accumulate), so a federated
    /// view renders and queries exactly like a local registry.
    pub fn hydrate_into(&self, reg: &Registry) {
        for (k, sample) in &self.series {
            let labels: Vec<(&str, &str)> = k
                .labels
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            match sample {
                Sample::Counter(v) => reg.counter(&k.name, &labels).set(*v),
                Sample::Gauge(v) => reg.gauge(&k.name, &labels).set(*v),
                Sample::Histogram(h) => reg.merge_histogram(&k.name, &labels, h),
            }
        }
        for (k, ex) in &self.exemplars {
            let labels: Vec<(&str, &str)> = k
                .labels
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str()))
                .collect();
            reg.observe_exemplar(&k.name, &labels, ex.value, ex.trace_id);
        }
    }
}

fn key_of(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    SeriesKey::new(
        name,
        labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect(),
    )
}

fn relabeled(k: &SeriesKey, key: &str, value: &str) -> SeriesKey {
    if k.label(key).is_some() {
        return k.clone();
    }
    let mut labels: Labels = k.labels.clone();
    labels.push((key.to_string(), value.to_string()));
    SeriesKey::new(k.name.clone(), labels)
}

fn insert_merged(map: &mut BTreeMap<SeriesKey, Sample>, key: SeriesKey, sample: Sample) {
    match map.entry(key) {
        std::collections::btree_map::Entry::Vacant(e) => {
            e.insert(sample);
        }
        std::collections::btree_map::Entry::Occupied(mut e) => match (e.get_mut(), sample) {
            (Sample::Counter(a), Sample::Counter(b)) => *a = a.saturating_add(b),
            (Sample::Gauge(a), Sample::Gauge(b)) => *a = a.saturating_add(b),
            (Sample::Histogram(a), Sample::Histogram(b)) => a.merge(&b),
            // Kind conflict across nodes: keep the first seen. A fleet
            // where one node registered `x` as a counter and another as a
            // gauge is already broken; don't compound it.
            _ => {}
        },
    }
}

fn offer_exemplar(map: &mut BTreeMap<SeriesKey, Exemplar>, key: SeriesKey, ex: Exemplar) {
    let slot = map.entry(key).or_insert(ex);
    if ex.value >= slot.value {
        *slot = ex;
    }
}

/// Parse Prometheus text exposition (as produced by
/// [`Registry::render_prometheus`]) back into metrics.
///
/// Understands `# TYPE` lines for kind resolution, label escaping,
/// histogram reconstruction from `_bucket`/`_sum`/`_count` series, the
/// `_min`/`_max` extension series, and OpenMetrics exemplar annotations.
/// Unknown `# ...` comment lines are skipped; malformed sample lines are
/// errors.
pub fn parse_prometheus(text: &str) -> Result<ParsedMetrics, ParseError> {
    let mut types: BTreeMap<String, String> = BTreeMap::new();
    // Histogram assembly state, keyed by (base name, labels sans `le`).
    let mut buckets: BTreeMap<SeriesKey, Vec<(String, u64)>> = BTreeMap::new();
    let mut sums: BTreeMap<SeriesKey, u64> = BTreeMap::new();
    let mut counts: BTreeMap<SeriesKey, u64> = BTreeMap::new();
    let mut mins: BTreeMap<SeriesKey, u64> = BTreeMap::new();
    let mut maxs: BTreeMap<SeriesKey, u64> = BTreeMap::new();
    let mut out = ParsedMetrics::default();

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            if let (Some(name), Some(kind)) = (it.next(), it.next()) {
                types.insert(name.to_string(), kind.to_string());
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or other comments
        }
        let (sample_part, exemplar_part) = match line.split_once(" # ") {
            Some((s, e)) => (s, Some(e)),
            None => (line, None),
        };
        let (name, labels, value) = parse_sample_line(sample_part, lineno)?;
        let histogram_of = |suffix: &str| -> Option<String> {
            let base = name.strip_suffix(suffix)?;
            (types.get(base).map(String::as_str) == Some("histogram")).then(|| base.to_string())
        };
        if let Some(base) = histogram_of("_bucket") {
            let mut series_labels = labels.clone();
            let le = series_labels
                .iter()
                .position(|(k, _)| k == "le")
                .map(|i| series_labels.remove(i).1)
                .ok_or_else(|| ParseError {
                    line: lineno,
                    message: format!("{name}: bucket series without an le label"),
                })?;
            let key = SeriesKey::new(base.clone(), series_labels);
            let cum = parse_u64(&value, lineno)?;
            buckets.entry(key.clone()).or_default().push((le, cum));
            if let Some(ex) = exemplar_part {
                if let Some(ex) = parse_exemplar(ex) {
                    offer_exemplar(&mut out.exemplars, key, ex);
                }
            }
            continue;
        }
        if let Some(base) = histogram_of("_sum") {
            sums.insert(SeriesKey::new(base, labels), parse_u64(&value, lineno)?);
            continue;
        }
        if let Some(base) = histogram_of("_count") {
            counts.insert(SeriesKey::new(base, labels), parse_u64(&value, lineno)?);
            continue;
        }
        if let Some(base) = histogram_of("_min") {
            mins.insert(SeriesKey::new(base, labels), parse_u64(&value, lineno)?);
            continue;
        }
        if let Some(base) = histogram_of("_max") {
            maxs.insert(SeriesKey::new(base, labels), parse_u64(&value, lineno)?);
            continue;
        }
        let key = SeriesKey::new(name.clone(), labels);
        let sample = match types.get(&name).map(String::as_str) {
            Some("counter") => Sample::Counter(parse_u64(&value, lineno)?),
            Some("gauge") => Sample::Gauge(parse_i64(&value, lineno)?),
            Some("histogram") => {
                return Err(ParseError {
                    line: lineno,
                    message: format!("{name}: bare sample for a histogram-typed family"),
                })
            }
            // No TYPE line: negative values must be gauges; default the
            // rest to counter, the common case.
            _ => {
                if value.starts_with('-') {
                    Sample::Gauge(parse_i64(&value, lineno)?)
                } else {
                    Sample::Counter(parse_u64(&value, lineno)?)
                }
            }
        };
        out.series.insert(key, sample);
    }

    // Assemble the histograms.
    for (key, mut entries) in buckets {
        let total = counts
            .get(&key)
            .copied()
            .or_else(|| entries.iter().find(|(le, _)| le == "+Inf").map(|&(_, c)| c));
        entries.retain(|(le, _)| le != "+Inf");
        let mut bounds: Vec<(u64, u64)> = Vec::with_capacity(entries.len());
        for (le, cum) in entries {
            let le = le.parse::<u64>().map_err(|_| ParseError {
                line: 0,
                message: format!("{}: unparseable bucket bound le=\"{le}\"", key.name),
            })?;
            bounds.push((le, cum));
        }
        bounds.sort_unstable();
        let mut sparse: Vec<(u32, u64)> = Vec::with_capacity(bounds.len());
        let mut prev = 0u64;
        for (le, cum) in bounds {
            let n = cum.saturating_sub(prev);
            prev = cum;
            if n == 0 {
                continue;
            }
            // Emitted bounds are exact exclusive bucket uppers, so the
            // value just below the bound identifies the source bucket.
            let index = bucket_index(le.saturating_sub(1)) as u32;
            match sparse.last_mut() {
                Some(last) if last.0 == index => last.1 += n,
                _ => sparse.push((index, n)),
            }
        }
        let count = total.unwrap_or(prev);
        let min = mins
            .get(&key)
            .copied()
            .unwrap_or_else(|| sparse.first().map_or(0, |&(i, _)| bucket_low(i as usize)));
        let max = maxs
            .get(&key)
            .copied()
            .unwrap_or_else(|| sparse.last().map_or(0, |&(i, _)| bucket_low(i as usize)));
        let snap = HistogramSnapshot {
            buckets: sparse,
            count,
            sum: sums.get(&key).copied().unwrap_or(0),
            min,
            max,
        };
        out.series.insert(key, Sample::Histogram(snap));
    }
    // A histogram family can be present but empty (registered, never
    // recorded): it emits no buckets, only _sum/_count/_min/_max.
    for (key, &count) in &counts {
        if !out.series.contains_key(key) {
            out.series.insert(
                key.clone(),
                Sample::Histogram(HistogramSnapshot {
                    buckets: Vec::new(),
                    count,
                    sum: sums.get(key).copied().unwrap_or(0),
                    min: mins.get(key).copied().unwrap_or(0),
                    max: maxs.get(key).copied().unwrap_or(0),
                }),
            );
        }
    }
    Ok(out)
}

/// Split `name{k="v",...} value` into its parts, unescaping label values.
fn parse_sample_line(line: &str, lineno: usize) -> Result<(String, Labels, String), ParseError> {
    let err = |message: String| ParseError {
        line: lineno,
        message,
    };
    let (name_part, rest) = match line.find('{') {
        Some(brace) => {
            let name = &line[..brace];
            let rest = &line[brace + 1..];
            let close = find_label_end(rest)
                .ok_or_else(|| err(format!("{name}: unterminated label set")))?;
            let labels = parse_labels(&rest[..close], lineno)?;
            let value = rest[close + 1..].trim();
            return Ok((name.to_string(), labels, value.to_string()));
        }
        None => {
            let mut it = line.split_whitespace();
            (it.next(), it.next())
        }
    };
    match (name_part, rest) {
        (Some(name), Some(value)) => Ok((name.to_string(), Vec::new(), value.to_string())),
        _ => Err(err(format!("malformed sample line: {line:?}"))),
    }
}

/// Index of the closing `}` of a label set, honoring quoted values.
fn find_label_end(rest: &str) -> Option<usize> {
    let bytes = rest.as_bytes();
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

/// Parse `k="v",k2="v2"` (values escaped Prometheus-style).
fn parse_labels(body: &str, lineno: usize) -> Result<Labels, ParseError> {
    let err = |message: String| ParseError {
        line: lineno,
        message,
    };
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| err(format!("label pair without '=': {rest:?}")))?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        let Some(quoted) = after.strip_prefix('"') else {
            return Err(err(format!("label value not quoted: {after:?}")));
        };
        let mut value = String::new();
        let mut consumed = None;
        let mut chars = quoted.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, other)) => value.push(other),
                    None => return Err(err("dangling escape in label value".into())),
                },
                '"' => {
                    consumed = Some(i);
                    break;
                }
                other => value.push(other),
            }
        }
        let close = consumed.ok_or_else(|| err("unterminated label value".into()))?;
        labels.push((key, value));
        rest = quoted[close + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

/// Parse `{trace_id="..."} value` (the renderer's exemplar annotation).
fn parse_exemplar(part: &str) -> Option<Exemplar> {
    let rest = part.trim().strip_prefix('{')?;
    let close = find_label_end(rest)?;
    let labels = parse_labels(&rest[..close], 0).ok()?;
    let trace_id = labels
        .iter()
        .find(|(k, _)| k == "trace_id")
        .and_then(|(_, v)| u128::from_str_radix(v, 16).ok())?;
    let value = rest[close + 1..].trim().parse::<u64>().ok()?;
    Some(Exemplar { value, trace_id })
}

fn parse_u64(value: &str, lineno: usize) -> Result<u64, ParseError> {
    value.parse::<u64>().map_err(|_| ParseError {
        line: lineno,
        message: format!("expected unsigned integer, got {value:?}"),
    })
}

fn parse_i64(value: &str, lineno: usize) -> Result<i64, ParseError> {
    value.parse::<i64>().map_err(|_| ParseError {
        line: lineno,
        message: format!("expected integer, got {value:?}"),
    })
}

/// One scrapeable endpoint: a stable node identity plus a way to fetch its
/// Prometheus text. Implemented over the store clients' `fetch_metrics`
/// helpers (`obs` cannot depend on the store crates, so the wiring lives
/// with the caller — see `udsm-cli top`).
pub trait MetricsSource: Send + Sync {
    /// Stable node identity, e.g. `"127.0.0.1:6379"`.
    fn node_id(&self) -> String;
    /// Fetch the node's current exposition text.
    fn scrape(&self) -> Result<String, String>;
}

/// A [`MetricsSource`] from a closure.
pub struct FnSource<F: Fn() -> Result<String, String> + Send + Sync> {
    id: String,
    fetch: F,
}

impl<F: Fn() -> Result<String, String> + Send + Sync> FnSource<F> {
    pub fn new(id: impl Into<String>, fetch: F) -> FnSource<F> {
        FnSource {
            id: id.into(),
            fetch,
        }
    }
}

impl<F: Fn() -> Result<String, String> + Send + Sync> MetricsSource for FnSource<F> {
    fn node_id(&self) -> String {
        self.id.clone()
    }
    fn scrape(&self) -> Result<String, String> {
        (self.fetch)()
    }
}

/// Scrapes N endpoints and merges them into a [`FleetView`].
#[derive(Default)]
pub struct Federation {
    sources: Vec<Box<dyn MetricsSource>>,
}

/// One federation poll: per-node parses (node label stripped), the
/// fleet-merged view, and any scrape/parse failures. A node that fails to
/// scrape is simply absent from `nodes` and `merged` this round — health
/// is the cluster heartbeat's job, not the scraper's.
pub struct FleetView {
    pub nodes: BTreeMap<String, ParsedMetrics>,
    pub merged: ParsedMetrics,
    pub errors: BTreeMap<String, String>,
}

impl Federation {
    pub fn new() -> Federation {
        Federation::default()
    }

    /// Register a scrape endpoint.
    pub fn add_source(&mut self, source: Box<dyn MetricsSource>) {
        self.sources.push(source);
    }

    /// Node ids of the registered endpoints, in registration order.
    pub fn node_ids(&self) -> Vec<String> {
        self.sources.iter().map(|s| s.node_id()).collect()
    }

    /// Scrape every source, parse, and merge.
    pub fn poll(&self) -> FleetView {
        let mut nodes = BTreeMap::new();
        let mut merged = ParsedMetrics::default();
        let mut errors = BTreeMap::new();
        for source in &self.sources {
            let id = source.node_id();
            let text = match source.scrape() {
                Ok(t) => t,
                Err(e) => {
                    errors.insert(id, e);
                    continue;
                }
            };
            let mut parsed = match parse_prometheus(&text) {
                Ok(p) => p,
                Err(e) => {
                    errors.insert(id, e.to_string());
                    continue;
                }
            };
            // The node's self-identity label would otherwise keep every
            // series distinct and defeat the merge. Identity-aware: a
            // cluster scrape's per-member `node` labels are data, not
            // identity, and survive.
            parsed.strip_identity_label("node", &id);
            merged.merge_from(&parsed);
            nodes.insert(id, parsed);
        }
        FleetView {
            nodes,
            merged,
            errors,
        }
    }
}

impl FleetView {
    /// Every node's series, tagged `node="<id>"` — the per-node view.
    pub fn per_node(&self) -> ParsedMetrics {
        let mut out = ParsedMetrics::default();
        for (id, parsed) in &self.nodes {
            out.merge_from(&parsed.with_label("node", id));
        }
        out
    }

    /// The fleet-merged view hydrated into a live registry.
    pub fn merged_registry(&self) -> Registry {
        let reg = Registry::new();
        self.merged.hydrate_into(&reg);
        reg
    }

    /// The per-node view hydrated into a live registry.
    pub fn per_node_registry(&self) -> Registry {
        let reg = Registry::new();
        self.per_node().hydrate_into(&reg);
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LatencyHistogram;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("requests_total", &[("route", "/v1"), ("method", "GET")])
            .add(7);
        reg.gauge("queue_depth", &[]).set(-4);
        let h = reg.histogram("lat_ns", &[("op", "get")]);
        for v in [3u64, 17, 900, 70_000, 70_001, 5_000_000] {
            h.record(v);
        }
        reg.observe_exemplar("lat_ns", &[("op", "get")], 5_000_000, 0xabcd);
        reg
    }

    #[test]
    fn parse_inverts_render_exactly() {
        let reg = sample_registry();
        let parsed = parse_prometheus(&reg.render_prometheus()).unwrap();
        assert_eq!(
            parsed.counter("requests_total", &[("method", "GET"), ("route", "/v1")]),
            Some(7)
        );
        assert_eq!(parsed.gauge("queue_depth", &[]), Some(-4));
        let snap = parsed.histogram("lat_ns", &[("op", "get")]).unwrap();
        assert_eq!(
            snap,
            &reg.histogram_snapshot("lat_ns", &[("op", "get")]).unwrap()
        );
        assert_eq!(
            parsed.exemplars.get(&key_of("lat_ns", &[("op", "get")])),
            Some(&Exemplar {
                value: 5_000_000,
                trace_id: 0xabcd
            })
        );
    }

    #[test]
    fn round_trip_survives_a_second_generation() {
        // render -> parse -> hydrate -> render -> parse is a fixpoint.
        let reg = sample_registry();
        let gen1 = parse_prometheus(&reg.render_prometheus()).unwrap();
        let reg2 = Registry::new();
        gen1.hydrate_into(&reg2);
        let gen2 = parse_prometheus(&reg2.render_prometheus()).unwrap();
        assert_eq!(gen1, gen2);
    }

    #[test]
    fn label_escaping_round_trips() {
        let reg = Registry::new();
        reg.counter("weird_total", &[("k", "a\"b\\c\nd")]).add(1);
        let parsed = parse_prometheus(&reg.render_prometheus()).unwrap();
        assert_eq!(
            parsed.counter("weird_total", &[("k", "a\"b\\c\nd")]),
            Some(1)
        );
    }

    #[test]
    fn empty_histogram_family_round_trips() {
        let reg = Registry::new();
        let _ = reg.histogram("quiet_ns", &[]);
        let parsed = parse_prometheus(&reg.render_prometheus()).unwrap();
        let snap = parsed.histogram("quiet_ns", &[]).unwrap();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.99), 0);
    }

    #[test]
    fn merged_three_ways_equals_one_registry() {
        // The acceptance property, in miniature (the full 3-node version
        // lives in tests/federation.rs): per-node parses merged must equal
        // a single registry that recorded every sample.
        let all = LatencyHistogram::new();
        let mut merged = ParsedMetrics::default();
        for node in 0..3u64 {
            let reg = Registry::new();
            reg.set_base_label("node", &format!("n{node}"));
            let h = reg.histogram("lat_ns", &[]);
            for i in 0..500 {
                let v = (node * 7919 + i * 37) % 1_000_000;
                h.record(v);
                all.record(v);
            }
            reg.counter("ops_total", &[]).add(500);
            let mut parsed = parse_prometheus(&reg.render_prometheus()).unwrap();
            parsed.strip_label("node");
            merged.merge_from(&parsed);
        }
        let got = merged.histogram("lat_ns", &[]).unwrap();
        assert_eq!(got, &all.snapshot());
        assert_eq!(got.p50(), all.snapshot().p50());
        assert_eq!(got.p99(), all.snapshot().p99());
        assert_eq!(merged.counter("ops_total", &[]), Some(1500));
    }

    #[test]
    fn matching_helpers_aggregate_across_a_label_dimension() {
        let reg = Registry::new();
        reg.counter("cmds_total", &[("cmd", "GET")]).add(3);
        reg.counter("cmds_total", &[("cmd", "SET")]).add(4);
        reg.gauge("not_a_counter", &[]).set(9);
        let h1 = reg.histogram("lat_ns", &[("op", "get")]);
        let h2 = reg.histogram("lat_ns", &[("op", "put")]);
        for v in [10u64, 20] {
            h1.record(v);
            h2.record(v * 100);
        }
        let parsed = parse_prometheus(&reg.render_prometheus()).unwrap();
        assert_eq!(parsed.counters_matching("cmds_total", &[]), Some(7));
        assert_eq!(
            parsed.counters_matching("cmds_total", &[("cmd", "SET")]),
            Some(4)
        );
        assert_eq!(
            parsed.counters_matching("cmds_total", &[("cmd", "DEL")]),
            None
        );
        assert_eq!(parsed.counters_matching("not_a_counter", &[]), None);
        let all = parsed.histograms_matching("lat_ns", &[]).unwrap();
        assert_eq!(all.count, 4);
        assert_eq!(all.max, 2000);
        let get = parsed
            .histograms_matching("lat_ns", &[("op", "get")])
            .unwrap();
        assert_eq!(get.count, 2);
    }

    #[test]
    fn poll_keeps_per_member_node_labels_of_a_cluster_scrape() {
        // The identity label ("node" stamped uniformly by the renderer, or
        // matching the configured source id) is stripped; a cluster
        // scrape's per-member `node` labels are data and survive both the
        // merge and the per-node view.
        let mut fed = Federation::new();
        let server = Registry::new();
        server.set_base_label("node", "127.0.0.1:7001");
        server.counter("ops_total", &[]).add(5);
        let text = server.render_prometheus();
        fed.add_source(Box::new(FnSource::new("127.0.0.1:7001", move || {
            Ok(text.clone())
        })));
        let cluster = Registry::new();
        cluster.gauge("cluster_node_up", &[("node", "n0")]).set(1);
        cluster.gauge("cluster_node_up", &[("node", "n1")]).set(0);
        cluster.counter("ops_total", &[]).add(2);
        let text = cluster.render_prometheus();
        fed.add_source(Box::new(FnSource::new("cluster", move || Ok(text.clone()))));
        let view = fed.poll();
        assert!(view.errors.is_empty(), "{:?}", view.errors);
        assert_eq!(
            view.merged.gauge("cluster_node_up", &[("node", "n0")]),
            Some(1)
        );
        assert_eq!(
            view.merged.gauge("cluster_node_up", &[("node", "n1")]),
            Some(0)
        );
        assert_eq!(view.merged.counter("ops_total", &[]), Some(7));
        let per_node = view.per_node();
        // The server row is tagged with its identity; the cluster members
        // keep their own node labels rather than being overwritten.
        assert_eq!(
            per_node.counter("ops_total", &[("node", "127.0.0.1:7001")]),
            Some(5)
        );
        assert_eq!(
            per_node.gauge("cluster_node_up", &[("node", "n0")]),
            Some(1)
        );
    }

    #[test]
    fn malformed_lines_error_with_position() {
        let err = parse_prometheus("# TYPE x counter\nx{a=\"unterminated 1\n").unwrap_err();
        assert_eq!(err.line, 2, "{err}");
        let err = parse_prometheus("just_a_name\n").unwrap_err();
        assert_eq!(err.line, 1, "{err}");
        assert!(parse_prometheus("# TYPE x counter\nx notanumber\n").is_err());
    }

    #[test]
    fn per_node_view_tags_and_merge_strips() {
        let mut fed = Federation::new();
        for node in ["a:1", "b:2"] {
            let reg = Registry::new();
            reg.set_base_label("node", node);
            reg.counter("ops_total", &[]).add(10);
            let text = reg.render_prometheus();
            fed.add_source(Box::new(FnSource::new(node, move || Ok(text.clone()))));
        }
        let view = fed.poll();
        assert!(view.errors.is_empty());
        assert_eq!(view.merged.counter("ops_total", &[]), Some(20));
        let per_node = view.per_node();
        assert_eq!(per_node.counter("ops_total", &[("node", "a:1")]), Some(10));
        assert_eq!(per_node.counter("ops_total", &[("node", "b:2")]), Some(10));
        // A failing source is reported, not fatal.
        fed.add_source(Box::new(FnSource::new("c:3", || Err("refused".into()))));
        let view = fed.poll();
        assert_eq!(view.errors.get("c:3").map(String::as_str), Some("refused"));
        assert_eq!(view.merged.counter("ops_total", &[]), Some(20));
    }
}
