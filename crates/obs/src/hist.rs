//! Log-linear latency histogram.
//!
//! Values (nanoseconds, but the histogram is unit-agnostic) are bucketed
//! HDR-style: each power-of-two range is split into [`SUBBUCKETS`] linear
//! sub-buckets, so any recorded value lands in a bucket whose width is at
//! most `1/SUBBUCKETS` (6.25%) of the value. Values `0..SUBBUCKETS` are
//! exact. Recording is a single relaxed `fetch_add`, so histograms can be
//! shared across threads without locking; [`snapshot`](LatencyHistogram::snapshot)
//! produces an immutable, mergeable copy for quantile queries and
//! persistence.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use serde::{Deserialize, Serialize};

/// Linear sub-buckets per power-of-two range; bounds the relative error of
/// quantile estimates at `1/SUBBUCKETS` = 6.25%.
pub const SUBBUCKETS: usize = 16;

/// log2(SUBBUCKETS).
const SUB_BITS: u32 = 4;

/// Total bucket count: values 0..16 exactly, then 16 sub-buckets for each
/// exponent 4..=63.
pub const BUCKETS: usize = SUBBUCKETS + (64 - SUB_BITS as usize) * SUBBUCKETS;

/// Map a value to its bucket index.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUBBUCKETS as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // >= SUB_BITS here
    let sub = (value >> (exp - SUB_BITS)) & (SUBBUCKETS as u64 - 1);
    ((exp - SUB_BITS + 1) as usize) * SUBBUCKETS + sub as usize
}

/// Inclusive lower bound of a bucket.
pub fn bucket_low(index: usize) -> u64 {
    if index < SUBBUCKETS {
        return index as u64;
    }
    let group = index / SUBBUCKETS - 1;
    let sub = (index % SUBBUCKETS) as u64;
    let exp = group as u32 + SUB_BITS;
    (1u64 << exp) + (sub << (exp - SUB_BITS))
}

/// Exclusive upper bound of a bucket (saturating at `u64::MAX`).
pub fn bucket_high(index: usize) -> u64 {
    if index + 1 >= BUCKETS {
        return u64::MAX;
    }
    bucket_low(index + 1)
}

/// Concurrent log-linear histogram.
pub struct LatencyHistogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        // `AtomicU64` isn't Copy; build the array through a Vec.
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let counts: Box<[AtomicU64; BUCKETS]> =
            counts.into_boxed_slice().try_into().expect("bucket count");
        LatencyHistogram {
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value.
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Fold a snapshot's buckets and aggregates into this histogram — the
    /// re-hydration path used by metrics federation, where a scraped
    /// `HistogramSnapshot` is loaded back into a live registry. Exact:
    /// a histogram hydrated from a snapshot renders the same `_bucket`
    /// series and quantiles the source did.
    pub fn accumulate(&self, snap: &HistogramSnapshot) {
        if snap.count == 0 {
            return;
        }
        for &(index, n) in &snap.buckets {
            if let Some(slot) = self.counts.get(index as usize) {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.min.fetch_min(snap.min, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Immutable copy for querying, merging, and persistence.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, c) in self.counts.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable histogram state: sparse `(bucket_index, count)` pairs plus
/// aggregate count/sum/min/max. Mergeable and serializable.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Sparse non-empty buckets, ascending by index.
    pub buckets: Vec<(u32, u64)>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Fold another snapshot into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut merged: Vec<(u32, u64)> =
            Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (None, None) => break,
                (Some(&&(i, n)), None) => {
                    merged.push((i, n));
                    a.next();
                }
                (None, Some(&&(i, n))) => {
                    merged.push((i, n));
                    b.next();
                }
                (Some(&&(ia, na)), Some(&&(ib, nb))) => {
                    if ia < ib {
                        merged.push((ia, na));
                        a.next();
                    } else if ib < ia {
                        merged.push((ib, nb));
                        b.next();
                    } else {
                        merged.push((ia, na + nb));
                        a.next();
                        b.next();
                    }
                }
            }
        }
        self.buckets = merged;
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate (`q` in 0..=1): the midpoint of the bucket holding
    /// the q-th recorded value, clamped to the observed min/max. Error is
    /// bounded by the bucket width, i.e. 6.25% of the value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target value, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(index, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let low = bucket_low(index as usize);
                let high = bucket_high(index as usize);
                let mid = low + (high - low) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// p50 shorthand.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// p90 shorthand.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// p99 shorthand.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// p99.9 shorthand.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// The windowed difference `self - earlier`, where `earlier` is an
    /// older snapshot of the *same* cumulative histogram. Per-bucket counts
    /// subtract saturating (a restarted process resets to zero; the window
    /// then degrades to the current snapshot rather than underflowing).
    /// Min/max are not recoverable for a window, so they are re-derived
    /// from the surviving buckets' bounds — quantiles on the delta are
    /// still correct to bucket resolution.
    pub fn saturating_delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut old: BTreeMap<u32, u64> = earlier.buckets.iter().copied().collect();
        let mut buckets = Vec::new();
        for &(i, n) in &self.buckets {
            let prior = old.remove(&i).unwrap_or(0);
            let d = n.saturating_sub(prior);
            if d > 0 {
                buckets.push((i, d));
            }
        }
        let count: u64 = buckets.iter().map(|&(_, n)| n).sum();
        let min = buckets
            .first()
            .map_or(0, |&(i, _)| bucket_low(i as usize).max(self.min));
        let max = buckets
            .last()
            .map_or(0, |&(i, _)| bucket_high(i as usize).min(self.max));
        HistogramSnapshot {
            buckets,
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            min,
            max,
        }
    }

    /// How many recorded values are *at most* `threshold`, to bucket
    /// resolution: whole buckets whose exclusive upper bound is within the
    /// threshold count in full; a bucket straddling it counts as over —
    /// the conservative reading an SLO wants.
    pub fn count_at_most(&self, threshold: u64) -> u64 {
        self.buckets
            .iter()
            .filter(|&&(i, _)| bucket_high(i as usize).saturating_sub(1) <= threshold)
            .map(|&(_, n)| n)
            .sum()
    }

    /// Cumulative `(upper_bound, cumulative_count)` pairs over non-empty
    /// buckets — the shape Prometheus `_bucket{le=...}` series need.
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let mut acc = 0;
        self.buckets
            .iter()
            .map(|&(i, n)| {
                acc += n;
                (bucket_high(i as usize), acc)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..SUBBUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_low(v as usize), v);
        }
    }

    #[test]
    fn bucket_bounds_bracket_their_values() {
        for v in [
            16u64,
            17,
            100,
            1000,
            4096,
            65535,
            1 << 20,
            (1 << 40) + 12345,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(bucket_low(i) <= v, "low({i}) > {v}");
            assert!(
                v <= bucket_high(i) || bucket_high(i) == u64::MAX,
                "high({i}) < {v}"
            );
        }
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        for i in SUBBUCKETS..BUCKETS - 1 {
            let low = bucket_low(i);
            let high = bucket_high(i);
            let width = high - low;
            assert!(
                (width as f64) <= low as f64 / (SUBBUCKETS as f64 - 1.0) + 1.0,
                "bucket {i}: width {width} too wide for low {low}"
            );
        }
    }

    #[test]
    fn quantiles_track_exact_values_within_bucket_error() {
        let h = LatencyHistogram::new();
        let n = 100_000u64;
        for v in 1..=n {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, n);
        for (q, exact) in [
            (0.50, 50_000u64),
            (0.90, 90_000),
            (0.99, 99_000),
            (0.999, 99_900),
        ] {
            let got = snap.quantile(q);
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            assert!(
                err <= 1.0 / SUBBUCKETS as f64,
                "q{q}: got {got}, exact {exact}, err {err:.4}"
            );
        }
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, n);
        assert_eq!(snap.sum, n * (n + 1) / 2);
    }

    #[test]
    fn merge_equals_recording_into_one() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let all = LatencyHistogram::new();
        for v in (0..5000).map(|i| i * 37 % 10_000) {
            a.record(v);
            all.record(v);
        }
        for v in (0..5000).map(|i| i * 91 % 100_000) {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
    }

    #[test]
    fn merge_into_empty_preserves_min() {
        let h = LatencyHistogram::new();
        h.record(42);
        let mut empty = HistogramSnapshot::default();
        empty.merge(&h.snapshot());
        assert_eq!(empty.min, 42);
        assert_eq!(empty.p50(), 42);
    }

    #[test]
    fn quantile_on_single_value() {
        let h = LatencyHistogram::new();
        h.record(1_000_000);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.99, 1.0] {
            let got = s.quantile(q);
            let err = (got as f64 - 1_000_000.0).abs() / 1_000_000.0;
            assert!(err <= 1.0 / SUBBUCKETS as f64, "q{q} -> {got}");
        }
    }

    #[test]
    fn accumulate_rehydrates_a_snapshot_exactly() {
        let src = LatencyHistogram::new();
        for v in [1u64, 500, 70_000, 70_001, 1 << 33] {
            src.record(v);
        }
        let snap = src.snapshot();
        let back = LatencyHistogram::new();
        back.accumulate(&snap);
        assert_eq!(back.snapshot(), snap);
        // Accumulating twice doubles counts but keeps min/max.
        back.accumulate(&snap);
        let twice = back.snapshot();
        assert_eq!(twice.count, 2 * snap.count);
        assert_eq!(twice.min, snap.min);
        assert_eq!(twice.max, snap.max);
    }

    #[test]
    fn saturating_delta_recovers_a_window() {
        let h = LatencyHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let earlier = h.snapshot();
        for v in 100_000..100_500u64 {
            h.record(v);
        }
        let delta = h.snapshot().saturating_delta(&earlier);
        assert_eq!(delta.count, 500);
        // The window holds only the slow tail, and its quantiles say so.
        assert!(delta.p50() >= 90_000, "p50 {}", delta.p50());
        // A reset baseline (newer than the current snapshot) saturates.
        let empty = HistogramSnapshot::default().saturating_delta(&earlier);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn count_at_most_is_conservative_to_bucket_bounds() {
        let h = LatencyHistogram::new();
        for v in [1u64, 2, 3, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        // Small values are exact buckets.
        assert_eq!(s.count_at_most(3), 3);
        assert_eq!(s.count_at_most(0), 0);
        assert_eq!(s.count_at_most(u64::MAX), 4);
        // A threshold inside the big value's bucket does not claim it.
        assert_eq!(s.count_at_most(999_999), 3);
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let h = LatencyHistogram::new();
        for v in [1u64, 500, 70_000, 70_001, 1 << 33] {
            h.record(v);
        }
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
