//! End-to-end observability for the UDSM/DSCL stack.
//!
//! Three pieces, usable separately or together:
//!
//! * [`hist`] — a log-linear latency histogram ([`LatencyHistogram`]) with
//!   lock-free recording, mergeable [`HistogramSnapshot`]s, and
//!   p50/p90/p99/p99.9 queries with bounded (6.25%) relative error;
//! * [`registry`] — a [`Registry`] of counters, gauges, and histograms
//!   addressed by `name{label=value}`, rendering to Prometheus text
//!   exposition or JSON; [`global()`] is the process-wide default;
//! * [`trace`] — a per-request [`Trace`] that times named pipeline stages
//!   (`cache_lookup`, `decompress`, `decrypt`, `net_rtt`, `store_io`, ...)
//!   and publishes them as per-stage histograms plus a recent-trace ring;
//! * [`ctx`] — distributed-trace identity ([`TraceContext`], [`ServerSpan`])
//!   with per-protocol wire encodings and a thread-local propagation scope
//!   connecting nested layers to the trace that owns the operation;
//! * [`recorder`] — an always-on tail-sampling [`FlightRecorder`] (bounded
//!   lock-sharded ring) that retains every error trace, everything slower
//!   than a rolling p99, and a small uniform sample of fast successes;
//! * [`procinfo`] — process resource telemetry ([`ProcSample`]) read from
//!   `/proc/self` (RSS, user/sys CPU, open fds, threads), publishable as
//!   `process_*` gauges into any [`Registry`] at scrape time;
//! * [`federation`] — a Prometheus text parser that inverts
//!   [`Registry::render_prometheus`] plus a [`Federation`] merger that
//!   scrapes N nodes into per-node and fleet-merged views, histograms
//!   re-hydrated losslessly thanks to the `_min`/`_max` extension series;
//! * [`slo`] — declared per-op objectives ([`Objective`]) judged over
//!   sliding windows of federated metrics by an [`SloEngine`], exporting
//!   burn-rate/error-budget gauges and recording burn alerts into the
//!   flight recorder with exemplar trace links.
//!
//! Metric naming scheme used across the workspace:
//!
//! * `dscl_*` — enhanced-client pipeline (`dscl_op_duration_ns{op="get"}`,
//!   `dscl_stage_duration_ns{op="get",stage="decompress"}`);
//! * `cache_*` — cache policy counters (`cache_hits_total{cache="lru"}`);
//! * `cloudstore_*` — HTTP store client/server
//!   (`cloudstore_requests_total{route="/v1/objects",method="GET",status="200"}`);
//! * `*_total` counters, `*_ns` nanosecond histograms, bare nouns gauges.

#![forbid(unsafe_code)]

pub mod ctx;
pub mod federation;
pub mod hist;
pub mod procinfo;
pub mod recorder;
pub mod registry;
pub mod slo;
pub mod trace;

pub use ctx::{ServerSpan, TraceContext};
pub use federation::{
    parse_prometheus, Federation, FleetView, FnSource, MetricsSource, ParsedMetrics,
};
pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use procinfo::{ProcDelta, ProcSample};
pub use recorder::FlightRecorder;
pub use registry::{global, Counter, Exemplar, Gauge, Registry};
pub use slo::{Objective, SloAlert, SloEngine, SloKind, SloStatus};
pub use trace::{CompletedTrace, Trace, TraceEvent};

#[cfg(test)]
mod concurrency_tests {
    use super::*;
    use std::sync::Arc;

    /// Satellite requirement: 8 threads hammer one histogram and one
    /// counter; every recorded event must be visible exactly once.
    #[test]
    fn eight_thread_count_conservation() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 25_000;

        let reg = Arc::new(Registry::new());
        let hist = reg.histogram("conc_latency_ns", &[]);
        let counter = reg.counter("conc_events_total", &[]);

        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let hist = Arc::clone(&hist);
                let counter = counter.clone();
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        // Spread values across many buckets.
                        hist.record(t * 1_000_000 + i);
                        counter.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let snap = hist.snapshot();
        assert_eq!(snap.count, THREADS * PER_THREAD);
        assert_eq!(counter.get(), THREADS * PER_THREAD);
        // Bucket counts sum to the total (no lost updates in the array).
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, n)| n).sum();
        assert_eq!(bucket_total, THREADS * PER_THREAD);
        // And the sum matches the closed form of what the threads recorded.
        let expect_sum: u64 = (0..THREADS)
            .map(|t| t * 1_000_000 * PER_THREAD + PER_THREAD * (PER_THREAD - 1) / 2)
            .sum();
        assert_eq!(snap.sum, expect_sum);
    }

    /// Merging per-thread histograms equals one shared histogram.
    #[test]
    fn per_thread_merge_equals_shared() {
        const THREADS: usize = 8;
        let shared = Arc::new(LatencyHistogram::new());
        let locals: Vec<Arc<LatencyHistogram>> = (0..THREADS)
            .map(|_| Arc::new(LatencyHistogram::new()))
            .collect();

        let handles: Vec<_> = locals
            .iter()
            .enumerate()
            .map(|(t, local)| {
                let local = Arc::clone(local);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        let v = (t as u64 + 1) * 37 * i % 500_000;
                        local.record(v);
                        shared.record(v);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let mut merged = HistogramSnapshot::default();
        for local in &locals {
            merged.merge(&local.snapshot());
        }
        assert_eq!(merged, shared.snapshot());
    }
}
