//! Process resource telemetry read from `/proc/self`.
//!
//! One [`sample`] reads resident set size and thread count from
//! `/proc/self/status`, user/system CPU time from `/proc/self/stat`, and
//! the open file-descriptor count from `/proc/self/fd`. [`publish`] mirrors
//! a sample into a [`Registry`] as gauges, so every scrape surface
//! (cloudstore `GET /metrics`, miniredis `METRICS`, minisql `METRICS`, the
//! CLI `metrics` command) exposes server-side resource usage alongside its
//! request metrics, and the bench harness records deltas per run.
//!
//! On platforms without procfs (or inside restricted sandboxes) sampling
//! degrades to an all-zero sample with [`ProcSample::available`] `false`
//! rather than failing — resource telemetry is additive, never load-bearing.
//!
//! Limits: CPU time is converted from clock ticks assuming the near-
//! universal `CLK_TCK` of 100 (procfs exposes no portable way to read it
//! without libc); resolution is therefore 10 ms.

use crate::registry::Registry;
use serde::{Deserialize, Serialize};

/// Kernel clock ticks per second assumed for `/proc/self/stat` CPU fields.
const CLK_TCK: u64 = 100;

/// A point-in-time reading of this process's resource usage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcSample {
    /// Resident set size in bytes (`VmRSS`).
    pub rss_bytes: u64,
    /// Cumulative user-mode CPU time in milliseconds (`utime`).
    pub user_cpu_ms: u64,
    /// Cumulative kernel-mode CPU time in milliseconds (`stime`).
    pub sys_cpu_ms: u64,
    /// Open file descriptors (entries in `/proc/self/fd`).
    pub open_fds: u64,
    /// OS threads in the process (`Threads`).
    pub threads: u64,
    /// False when procfs was unreadable and every field is zero.
    pub available: bool,
}

/// Difference between two samples taken around a measured region. CPU
/// fields are cumulative so their deltas are non-negative; RSS, fds, and
/// threads can shrink, hence signed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcDelta {
    /// RSS growth in bytes (negative = shrank).
    pub rss_bytes: i64,
    /// User CPU consumed in the interval, milliseconds.
    pub user_cpu_ms: u64,
    /// System CPU consumed in the interval, milliseconds.
    pub sys_cpu_ms: u64,
    /// Net change in open file descriptors.
    pub open_fds: i64,
    /// Net change in thread count.
    pub threads: i64,
}

impl ProcSample {
    /// The delta from `self` (taken first) to `end` (taken later).
    pub fn delta_to(&self, end: &ProcSample) -> ProcDelta {
        ProcDelta {
            rss_bytes: end.rss_bytes as i64 - self.rss_bytes as i64,
            user_cpu_ms: end.user_cpu_ms.saturating_sub(self.user_cpu_ms),
            sys_cpu_ms: end.sys_cpu_ms.saturating_sub(self.sys_cpu_ms),
            open_fds: end.open_fds as i64 - self.open_fds as i64,
            threads: end.threads as i64 - self.threads as i64,
        }
    }
}

/// Read the current process's resource usage. Never fails: unreadable
/// sources yield a zeroed sample with `available: false`.
pub fn sample() -> ProcSample {
    let status = std::fs::read_to_string("/proc/self/status");
    let stat = std::fs::read_to_string("/proc/self/stat");
    let fds = std::fs::read_dir("/proc/self/fd")
        .map(|entries| entries.count() as u64)
        .unwrap_or(0);
    let (Ok(status), Ok(stat)) = (status, stat) else {
        return ProcSample::default();
    };

    let mut rss_bytes = 0u64;
    let mut threads = 0u64;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmRSS:") {
            rss_bytes = first_number(rest).saturating_mul(1024);
        } else if let Some(rest) = line.strip_prefix("Threads:") {
            threads = first_number(rest);
        }
    }

    // /proc/self/stat: `pid (comm) state ppid ...` — comm may itself
    // contain spaces and parentheses, so split after the *last* ')'.
    // Post-comm fields are 1-based from `state`; utime is the 12th and
    // stime the 13th of those.
    let (user_cpu_ms, sys_cpu_ms) = match stat.rfind(')') {
        Some(pos) => {
            let fields: Vec<&str> = stat[pos.saturating_add(1)..].split_whitespace().collect();
            let tick_ms = |s: Option<&&str>| {
                s.and_then(|v| v.parse::<u64>().ok())
                    .unwrap_or(0)
                    .saturating_mul(1000)
                    / CLK_TCK
            };
            (tick_ms(fields.get(11)), tick_ms(fields.get(12)))
        }
        None => (0, 0),
    };

    ProcSample {
        rss_bytes,
        user_cpu_ms,
        sys_cpu_ms,
        open_fds: fds,
        threads,
        available: true,
    }
}

fn first_number(s: &str) -> u64 {
    s.split_whitespace()
        .next()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Take a sample and mirror it into `registry` as gauges. Call at scrape
/// time so exported values are current:
///
/// * `process_resident_memory_bytes`
/// * `process_cpu_user_ms` / `process_cpu_sys_ms`
/// * `process_open_fds`
/// * `process_threads`
pub fn publish(registry: &Registry) -> ProcSample {
    let s = sample();
    registry
        .gauge("process_resident_memory_bytes", &[])
        .set(s.rss_bytes.min(i64::MAX as u64) as i64);
    registry
        .gauge("process_cpu_user_ms", &[])
        .set(s.user_cpu_ms.min(i64::MAX as u64) as i64);
    registry
        .gauge("process_cpu_sys_ms", &[])
        .set(s.sys_cpu_ms.min(i64::MAX as u64) as i64);
    registry
        .gauge("process_open_fds", &[])
        .set(s.open_fds.min(i64::MAX as u64) as i64);
    registry
        .gauge("process_threads", &[])
        .set(s.threads.min(i64::MAX as u64) as i64);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_reads_live_process_state() {
        let s = sample();
        // CI runs on Linux; a running Rust test binary must show memory,
        // at least one thread, and at least stdin/stdout/stderr open.
        assert!(s.available, "procfs should be readable on Linux: {s:?}");
        assert!(s.rss_bytes > 0, "{s:?}");
        assert!(s.threads >= 1, "{s:?}");
        assert!(s.open_fds >= 3, "{s:?}");
    }

    #[test]
    fn deltas_are_signed_where_shrinking_is_possible() {
        let start = ProcSample {
            rss_bytes: 2048,
            user_cpu_ms: 100,
            sys_cpu_ms: 50,
            open_fds: 10,
            threads: 4,
            available: true,
        };
        let end = ProcSample {
            rss_bytes: 1024,
            user_cpu_ms: 150,
            sys_cpu_ms: 50,
            open_fds: 12,
            threads: 3,
            available: true,
        };
        let d = start.delta_to(&end);
        assert_eq!(d.rss_bytes, -1024);
        assert_eq!(d.user_cpu_ms, 50);
        assert_eq!(d.sys_cpu_ms, 0);
        assert_eq!(d.open_fds, 2);
        assert_eq!(d.threads, -1);
    }

    #[test]
    fn publish_exports_all_gauges() {
        let reg = Registry::new();
        let s = publish(&reg);
        let text = reg.render_prometheus();
        for name in [
            "process_resident_memory_bytes",
            "process_cpu_user_ms",
            "process_cpu_sys_ms",
            "process_open_fds",
            "process_threads",
        ] {
            assert!(text.contains(&format!("# TYPE {name} gauge")), "{text}");
            assert!(
                text.lines().any(|l| l.starts_with(name)),
                "missing {name} in:\n{text}"
            );
        }
        // The JSON rendering carries them too.
        let json = reg.render_json();
        assert!(json.contains("\"process_resident_memory_bytes\""), "{json}");
        assert!(json.contains("\"process_threads\""), "{json}");
        // Gauge values agree with the returned sample.
        assert!(
            text.contains(&format!("process_threads {}", s.threads)),
            "{text}"
        );
    }

    #[test]
    fn sample_round_trips_through_serde() {
        let s = sample();
        let json = serde_json::to_string(&s).unwrap();
        let back: ProcSample = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
