//! Always-on tail-sampling flight recorder.
//!
//! Every completed trace — client- and server-side — is offered to the
//! recorder; a tail sampler decides retention *after* the outcome is known
//! (hence "tail"): errors are always kept, anything slower than a rolling
//! p99 of recent totals is kept, and fast successes are uniformly sampled
//! at 1-in-32 (≈3%, under the 5% budget) so the recorder always holds a
//! baseline to compare outliers against. Storage is a lock-sharded ring
//! with a hard byte ceiling: each shard evicts oldest-first until a new
//! entry fits, and an entry larger than a whole shard is dropped rather
//! than breaking the bound.
//!
//! Client and server halves of one distributed trace share a trace id and
//! therefore land in the same shard, so [`FlightRecorder::by_trace_id`] is
//! a single-shard scan.

use crate::hist::LatencyHistogram;
use crate::trace::CompletedTrace;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Number of independently locked shards.
const SHARDS: usize = 8;
/// Default total byte ceiling across all shards (1 MiB).
pub const DEFAULT_BYTE_CEILING: usize = 1 << 20;
/// Samples required before the rolling-p99 slow rule activates.
const P99_WARMUP: u64 = 100;
/// Fast successes kept: one in this many (≈3.1%).
const FAST_SAMPLE: u64 = 32;

#[derive(Default)]
struct Shard {
    entries: VecDeque<(u64, CompletedTrace)>,
    bytes: usize,
}

/// A bounded, sharded store of sampled [`CompletedTrace`]s.
pub struct FlightRecorder {
    shards: Vec<Mutex<Shard>>,
    shard_ceiling: usize,
    totals: LatencyHistogram,
    seen: AtomicU64,
    kept: AtomicU64,
}

impl FlightRecorder {
    /// A recorder bounded to roughly `byte_ceiling` bytes of retained
    /// traces (hard bound: [`FlightRecorder::bytes_used`] never exceeds it).
    pub fn new(byte_ceiling: usize) -> FlightRecorder {
        FlightRecorder {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_ceiling: (byte_ceiling / SHARDS).max(1),
            totals: LatencyHistogram::new(),
            seen: AtomicU64::new(0),
            kept: AtomicU64::new(0),
        }
    }

    /// The process-wide recorder every trace completion feeds.
    pub fn global() -> &'static FlightRecorder {
        static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
        GLOBAL.get_or_init(|| FlightRecorder::new(DEFAULT_BYTE_CEILING))
    }

    /// Offer a completed trace; the tail sampler decides whether it is
    /// retained. Returns `true` when the trace was kept.
    pub fn record(&self, trace: CompletedTrace) -> bool {
        let seq = self.seen.fetch_add(1, Ordering::Relaxed);
        let total_ns = u64::try_from(trace.total.as_nanos()).unwrap_or(u64::MAX);
        let snap = self.totals.snapshot();
        self.totals.record(total_ns);
        // "Slow" means a strictly higher log-linear bucket than the rolling
        // p99 — a value inside the p99's own bucket is within the
        // histogram's resolution, not an outlier (and under a uniform load
        // it would otherwise match every single trace).
        let slow = snap.count >= P99_WARMUP
            && crate::hist::bucket_index(total_ns) > crate::hist::bucket_index(snap.p99());
        let keep = trace.error.is_some() || slow || seq.is_multiple_of(FAST_SAMPLE);
        if !keep {
            return false;
        }
        let cost = approx_bytes(&trace);
        if cost > self.shard_ceiling {
            return false;
        }
        let idx = shard_index(&trace, seq);
        let mut shard = lock(&self.shards[idx]);
        while shard.bytes.saturating_add(cost) > self.shard_ceiling {
            match shard.entries.pop_front() {
                Some((_, old)) => shard.bytes = shard.bytes.saturating_sub(approx_bytes(&old)),
                None => break,
            }
        }
        shard.bytes = shard.bytes.saturating_add(cost);
        shard.entries.push_back((seq, trace));
        drop(shard);
        self.kept.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Every retained entry (client and server) belonging to one trace id,
    /// oldest first.
    pub fn by_trace_id(&self, trace_id: u128) -> Vec<CompletedTrace> {
        let idx = usize::try_from(trace_id % SHARDS as u128).unwrap_or(0);
        let shard = lock(&self.shards[idx]);
        shard
            .entries
            .iter()
            .filter(|(_, t)| t.ctx.map(|c| c.trace_id) == Some(trace_id))
            .map(|(_, t)| t.clone())
            .collect()
    }

    /// The `n` most recently retained traces, newest first.
    pub fn recent(&self, n: usize) -> Vec<CompletedTrace> {
        let mut all = self.all_with_seq();
        all.sort_by_key(|e| std::cmp::Reverse(e.0));
        all.into_iter().take(n).map(|(_, t)| t).collect()
    }

    /// The `n` slowest retained traces, slowest first.
    pub fn slowest(&self, n: usize) -> Vec<CompletedTrace> {
        let mut all = self.all_with_seq();
        all.sort_by(|a, b| b.1.total.cmp(&a.1.total).then(a.0.cmp(&b.0)));
        all.into_iter().take(n).map(|(_, t)| t).collect()
    }

    /// Every retained trace that completed with an error, newest first.
    pub fn errors(&self) -> Vec<CompletedTrace> {
        let mut all = self.all_with_seq();
        all.sort_by_key(|e| std::cmp::Reverse(e.0));
        all.into_iter()
            .filter(|(_, t)| t.error.is_some())
            .map(|(_, t)| t)
            .collect()
    }

    /// Traces offered to the recorder since startup.
    pub fn seen(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    /// Traces retained by the tail sampler since startup (retained does not
    /// imply still resident — old entries are evicted by the byte ceiling).
    pub fn kept(&self) -> u64 {
        self.kept.load(Ordering::Relaxed)
    }

    /// Approximate bytes currently held across all shards.
    pub fn bytes_used(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock(s).bytes)
            .fold(0usize, usize::saturating_add)
    }

    /// The configured total byte ceiling.
    pub fn byte_ceiling(&self) -> usize {
        self.shard_ceiling.saturating_mul(SHARDS)
    }

    /// All retained traces as a JSON array (the `GET /trace` payload),
    /// newest first.
    pub fn render_json(&self) -> String {
        let traces = self.recent(usize::MAX);
        let mut out = String::from("[");
        for (i, t) in traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push(']');
        out
    }

    fn all_with_seq(&self) -> Vec<(u64, CompletedTrace)> {
        let mut all = Vec::new();
        for s in &self.shards {
            let shard = lock(s);
            all.extend(shard.entries.iter().cloned());
        }
        all
    }
}

fn lock(m: &Mutex<Shard>) -> std::sync::MutexGuard<'_, Shard> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn shard_index(trace: &CompletedTrace, seq: u64) -> usize {
    let key = match trace.ctx {
        Some(c) => c.trace_id,
        None => u128::from(seq),
    };
    usize::try_from(key % SHARDS as u128).unwrap_or(0)
}

fn approx_bytes(t: &CompletedTrace) -> usize {
    let mut n = std::mem::size_of::<CompletedTrace>();
    n = n.saturating_add(t.origin.len()).saturating_add(t.op.len());
    n = n.saturating_add(t.stages.len().saturating_mul(24));
    for e in &t.events {
        n = n
            .saturating_add(48)
            .saturating_add(e.name.len())
            .saturating_add(e.detail.len());
    }
    for s in &t.server_spans {
        n = n.saturating_add(48).saturating_add(s.server.len());
    }
    n.saturating_add(t.error.as_ref().map_or(0, String::len))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctx::TraceContext;
    use std::time::Duration;

    fn mk(trace_id: u128, total_ms: u64, error: Option<&str>) -> CompletedTrace {
        CompletedTrace {
            origin: "test".to_string(),
            op: "get".to_string(),
            total: Duration::from_millis(total_ms),
            stages: Vec::new(),
            other: Duration::from_millis(total_ms),
            ctx: Some(TraceContext {
                trace_id,
                span_id: 1,
                parent_id: None,
                sampled: true,
            }),
            events: Vec::new(),
            server_spans: Vec::new(),
            error: error.map(str::to_string),
        }
    }

    #[test]
    fn errors_are_always_retained_and_fast_successes_sampled() {
        let rec = FlightRecorder::new(DEFAULT_BYTE_CEILING);
        let mut error_ids = Vec::new();
        for i in 0..10_000u64 {
            // Every 1000th op fails; the rest are uniformly fast.
            if i % 1000 == 999 {
                let id = u128::from(i) + 1;
                rec.record(mk(id, 1, Some("boom")));
                error_ids.push(id);
            } else {
                rec.record(mk(u128::from(i) + 1_000_000, 1, None));
            }
        }
        for id in &error_ids {
            assert!(
                rec.by_trace_id(*id).iter().any(|t| t.error.is_some()),
                "error trace {id} was not retained"
            );
        }
        assert_eq!(rec.errors().len(), error_ids.len());
        // Fast successes: ≤5% of the 10k-op sweep.
        let fast_kept = rec.kept() - error_ids.len() as u64;
        assert!(
            fast_kept <= 500,
            "kept {fast_kept} fast successes out of ~10k (>5%)"
        );
        assert!(fast_kept > 0, "uniform sample kept nothing");
        assert_eq!(rec.seen(), 10_000);
    }

    #[test]
    fn slow_traces_are_retained_after_warmup() {
        let rec = FlightRecorder::new(DEFAULT_BYTE_CEILING);
        for i in 0..500u64 {
            rec.record(mk(u128::from(i) + 1, 1, None));
        }
        // Far beyond the rolling p99 of the 1 ms baseline.
        assert!(rec.record(mk(0xdead, 250, None)));
        let got = rec.by_trace_id(0xdead);
        assert_eq!(got.len(), 1);
        assert!(rec.slowest(1)[0].total >= Duration::from_millis(250));
    }

    #[test]
    fn byte_ceiling_is_a_hard_bound() {
        let ceiling = 16 * 1024;
        let rec = FlightRecorder::new(ceiling);
        for i in 0..5_000u64 {
            // Errors bypass sampling, so every record is an insert attempt.
            rec.record(mk(u128::from(i) + 1, 1, Some("x")));
            assert!(
                rec.bytes_used() <= rec.byte_ceiling(),
                "bytes_used {} exceeded ceiling {}",
                rec.bytes_used(),
                rec.byte_ceiling()
            );
        }
        assert!(rec.byte_ceiling() <= ceiling);
        assert!(rec.recent(10).len() == 10, "ring should still hold entries");
    }

    #[test]
    fn oversized_traces_are_dropped_not_kept() {
        let rec = FlightRecorder::new(256);
        let mut big = mk(1, 1, Some("x"));
        big.error = Some("y".repeat(4096));
        assert!(!rec.record(big));
        assert_eq!(rec.kept(), 0);
        assert!(rec.by_trace_id(1).is_empty());
    }

    #[test]
    fn recent_orders_newest_first() {
        let rec = FlightRecorder::new(DEFAULT_BYTE_CEILING);
        for i in 1..=5u128 {
            rec.record(mk(i, 1, Some("e")));
        }
        let recent = rec.recent(2);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].ctx.unwrap().trace_id, 5);
        assert_eq!(recent[1].ctx.unwrap().trace_id, 4);
    }

    #[test]
    fn render_json_is_a_well_formed_array() {
        let rec = FlightRecorder::new(DEFAULT_BYTE_CEILING);
        rec.record(mk(0xabc, 2, None));
        rec.record(mk(0xdef, 3, Some("boom")));
        let json = rec.render_json();
        let parsed = serde_json::from_slice::<serde_json::Value>(json.as_bytes()).unwrap();
        let arr = parsed.as_array().expect("array");
        assert_eq!(arr.len(), 2);
        assert!(json.contains("00000000000000000000000000000abc"));
        assert!(json.contains("boom"));
    }
}
