//! Process-wide metrics registry.
//!
//! Metrics are addressed by `name{label=value,...}`: looking up the same
//! name and label set twice returns the same underlying atomic, so
//! instrumented code can hold a handle or re-resolve per call site. The
//! registry renders to Prometheus text exposition or JSON.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::trace::CompletedTrace;

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value. For collector-style exporters that mirror an
    /// external cumulative counter (e.g. cache hit totals) into the
    /// registry at scrape time; prefer `inc`/`add` everywhere else.
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fully qualified metric id: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// `name{k="v",...}` (Prometheus form; bare name when label-free).
    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }

    /// Same but with extra labels appended (for histogram `le`).
    fn render_with(&self, extra: &[(String, String)]) -> String {
        let mut all = self.labels.clone();
        all.extend_from_slice(extra);
        let body: Vec<String> = all
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<LatencyHistogram>),
}

/// A histogram exemplar: the trace behind an extreme observation. Rendered
/// in OpenMetrics form (`... # {trace_id="..."} value`) on the bucket that
/// contains the observation, so a p99 spike in a dashboard links directly
/// to a captured trace in the flight recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value (nanoseconds for latency histograms).
    pub value: u64,
    /// The trace that produced it.
    pub trace_id: u128,
}

/// How many completed traces the registry retains for dumping.
pub const RECENT_TRACES: usize = 64;

/// A metrics registry. Cheap to share (`Arc`) and safe to use from any
/// thread.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
    recent: Mutex<Vec<CompletedTrace>>,
    exemplars: Mutex<BTreeMap<MetricKey, Exemplar>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Counter handle for `name{labels}` (created on first use).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Gauge handle for `name{labels}` (created on first use).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Histogram handle for `name{labels}` (created on first use).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LatencyHistogram> {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Arc::new(LatencyHistogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Offer an exemplar for the histogram `name{labels}`. The registry
    /// keeps the largest-valued exemplar per histogram, so the retained one
    /// always sits in the highest occupied bucket (the p99 tail).
    pub fn observe_exemplar(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        value: u64,
        trace_id: u128,
    ) {
        let key = MetricKey::new(name, labels);
        let mut exemplars = self.exemplars.lock().unwrap_or_else(|e| e.into_inner());
        let slot = exemplars.entry(key).or_insert(Exemplar { value, trace_id });
        if value >= slot.value {
            *slot = Exemplar { value, trace_id };
        }
    }

    /// The retained exemplar for `name{labels}`, if any.
    pub fn exemplar(&self, name: &str, labels: &[(&str, &str)]) -> Option<Exemplar> {
        let key = MetricKey::new(name, labels);
        self.exemplars
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .copied()
    }

    /// Record a completed trace into the bounded recent-trace ring.
    pub(crate) fn push_trace(&self, trace: CompletedTrace) {
        let mut recent = self.recent.lock().unwrap_or_else(|e| e.into_inner());
        if recent.len() == RECENT_TRACES {
            recent.remove(0);
        }
        recent.push(trace);
    }

    /// The most recent completed traces, oldest first.
    pub fn recent_traces(&self) -> Vec<CompletedTrace> {
        self.recent
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Prometheus text exposition (text/plain; version=0.0.4).
    ///
    /// Histograms emit cumulative `_bucket{le="..."}` series over their
    /// non-empty buckets plus `le="+Inf"`, `_sum`, and `_count`.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut last_name = "";
        for (key, metric) in metrics.iter() {
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} {kind}", key.name);
                last_name = &key.name;
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{} {}", key.render(), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", key.render(), g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let base = key.name.clone();
                    // OpenMetrics exemplar: attached to the first bucket
                    // whose upper bound contains the exemplar's value.
                    // xlint: lock-order(metrics -> exemplars) reason="render holds the metric table while sampling each histogram's exemplar; recording paths take exemplars alone, so the nesting is one-directional"
                    let exemplar = self
                        .exemplars
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .get(key)
                        .copied();
                    let mut exemplar_pending = exemplar;
                    for (le, cumulative) in snap.cumulative() {
                        let bucket_key = MetricKey {
                            name: format!("{base}_bucket"),
                            labels: key.labels.clone(),
                        };
                        let _ = write!(
                            out,
                            "{} {cumulative}",
                            bucket_key.render_with(&[("le".to_string(), le.to_string())])
                        );
                        match exemplar_pending {
                            Some(ex) if ex.value <= le => {
                                let _ = write!(
                                    out,
                                    " # {{trace_id=\"{:032x}\"}} {}",
                                    ex.trace_id, ex.value
                                );
                                exemplar_pending = None;
                            }
                            _ => {}
                        }
                        out.push('\n');
                    }
                    let inf_key = MetricKey {
                        name: format!("{base}_bucket"),
                        labels: key.labels.clone(),
                    };
                    let _ = write!(
                        out,
                        "{} {}",
                        inf_key.render_with(&[("le".to_string(), "+Inf".to_string())]),
                        snap.count
                    );
                    if let Some(ex) = exemplar_pending {
                        let _ =
                            write!(out, " # {{trace_id=\"{:032x}\"}} {}", ex.trace_id, ex.value);
                    }
                    out.push('\n');
                    let sum_key = MetricKey {
                        name: format!("{base}_sum"),
                        labels: key.labels.clone(),
                    };
                    let _ = writeln!(out, "{} {}", sum_key.render(), snap.sum);
                    let count_key = MetricKey {
                        name: format!("{base}_count"),
                        labels: key.labels.clone(),
                    };
                    let _ = writeln!(out, "{} {}", count_key.render(), snap.count);
                }
            }
        }
        out
    }

    /// JSON rendering: an object keyed by `name{labels}`; counters and
    /// gauges map to numbers, histograms to summary objects.
    pub fn render_json(&self) -> String {
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::from("{");
        for (i, (key, metric)) in metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{:?}:", key.render());
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, "{}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, "{}", g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                        s.count,
                        s.sum,
                        s.min,
                        s.max,
                        s.p50(),
                        s.p90(),
                        s.p99(),
                        s.p999()
                    );
                }
            }
        }
        out.push('}');
        out
    }

    /// Snapshot of one histogram, if registered.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        let key = MetricKey::new(name, labels);
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics.get(&key) {
            Some(Metric::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        }
    }
}

/// The process-wide default registry, used by client-side instrumentation
/// (DSCL pipelines, cache policies, store clients). Servers typically make
/// their own `Registry` so concurrent instances don't mix metrics.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_counter() {
        let reg = Registry::new();
        let a = reg.counter("requests_total", &[("route", "/v1"), ("method", "GET")]);
        // Label order must not matter.
        let b = reg.counter("requests_total", &[("method", "GET"), ("route", "/v1")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn prometheus_text_shape() {
        let reg = Registry::new();
        reg.counter("hits_total", &[("cache", "lru")]).add(7);
        reg.gauge("entries", &[]).set(-3);
        let h = reg.histogram("latency_ns", &[("op", "get")]);
        h.record(100);
        h.record(200_000);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE hits_total counter"), "{text}");
        assert!(text.contains("hits_total{cache=\"lru\"} 7"), "{text}");
        assert!(text.contains("# TYPE entries gauge"), "{text}");
        assert!(text.contains("entries -3"), "{text}");
        assert!(text.contains("# TYPE latency_ns histogram"), "{text}");
        assert!(
            text.contains("latency_ns_bucket{op=\"get\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("latency_ns_sum{op=\"get\"} 200100"), "{text}");
        assert!(text.contains("latency_ns_count{op=\"get\"} 2"), "{text}");
        // Cumulative bucket counts are monotone.
        let mut last = 0;
        for line in text.lines().filter(|l| l.starts_with("latency_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone cumulative counts: {text}");
            last = v;
        }
    }

    #[test]
    fn json_rendering_is_parseable() {
        let reg = Registry::new();
        reg.counter("a_total", &[]).add(1);
        reg.histogram("lat", &[]).record(5);
        let json = reg.render_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v.get("a_total"), Some(&serde_json::Value::Int(1)));
        assert_eq!(
            v.get("lat").unwrap().get("count"),
            Some(&serde_json::Value::Int(1))
        );
    }

    #[test]
    fn exemplar_keeps_max_and_renders_on_containing_bucket() {
        let reg = Registry::new();
        let h = reg.histogram("lat_ns", &[("op", "get")]);
        h.record(100);
        h.record(90_000);
        reg.observe_exemplar("lat_ns", &[("op", "get")], 100, 0x1);
        reg.observe_exemplar("lat_ns", &[("op", "get")], 90_000, 0x2);
        reg.observe_exemplar("lat_ns", &[("op", "get")], 50, 0x3); // smaller: ignored
        assert_eq!(
            reg.exemplar("lat_ns", &[("op", "get")]),
            Some(Exemplar {
                value: 90_000,
                trace_id: 0x2
            })
        );
        let text = reg.render_prometheus();
        let ex_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("# {trace_id="))
            .collect();
        assert_eq!(ex_lines.len(), 1, "{text}");
        let line = ex_lines[0];
        assert!(line.starts_with("lat_ns_bucket"), "{line}");
        assert!(
            line.contains(&format!("# {{trace_id=\"{:032x}\"}} 90000", 0x2)),
            "{line}"
        );
        // The exemplar sits in a bucket whose bound contains its value.
        let le: u64 = line
            .split("le=\"")
            .nth(1)
            .unwrap()
            .split('"')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(le >= 90_000, "{line}");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("queue_depth", &[]);
        g.add(10);
        g.add(-4);
        assert_eq!(g.get(), 6);
    }
}
