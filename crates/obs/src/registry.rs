//! Process-wide metrics registry.
//!
//! Metrics are addressed by `name{label=value,...}`: looking up the same
//! name and label set twice returns the same underlying atomic, so
//! instrumented code can hold a handle or re-resolve per call site. The
//! registry renders to Prometheus text exposition or JSON.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::trace::CompletedTrace;

/// A monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrite the value. For collector-style exporters that mirror an
    /// external cumulative counter (e.g. cache hit totals) into the
    /// registry at scrape time; prefer `inc`/`add` everywhere else.
    pub fn set(&self, n: u64) {
        self.0.store(n, Ordering::Relaxed);
    }
}

/// A gauge: a value that can go up and down.
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fully qualified metric id: name plus sorted label pairs.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MetricKey {
    name: String,
    labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }

    /// `name{k="v",...}` (Prometheus form; bare name when label-free).
    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = self
            .labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }

    /// Same but with extra labels appended (base identity labels, histogram
    /// `le`). Falls back to the bare name when no label survives.
    fn render_with(&self, extra: &[(String, String)]) -> String {
        let mut all = self.labels.clone();
        all.extend_from_slice(extra);
        if all.is_empty() {
            return self.name.clone();
        }
        let body: Vec<String> = all
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect();
        format!("{}{{{}}}", self.name, body.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Arc<LatencyHistogram>),
}

/// A histogram exemplar: the trace behind an extreme observation. Rendered
/// in OpenMetrics form (`... # {trace_id="..."} value`) on the bucket that
/// contains the observation, so a p99 spike in a dashboard links directly
/// to a captured trace in the flight recorder.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Exemplar {
    /// The observed value (nanoseconds for latency histograms).
    pub value: u64,
    /// The trace that produced it.
    pub trace_id: u128,
}

/// How many completed traces the registry retains for dumping.
pub const RECENT_TRACES: usize = 64;

/// A metrics registry. Cheap to share (`Arc`) and safe to use from any
/// thread.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
    recent: Mutex<Vec<CompletedTrace>>,
    exemplars: Mutex<BTreeMap<MetricKey, Exemplar>>,
    /// Identity labels stamped onto every rendered series (e.g.
    /// `node="host:port"`), so federated scrapes stay distinguishable.
    base: Mutex<Vec<(String, String)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Set (or replace) an identity label appended to every series this
    /// registry renders. Servers call this once after bind with
    /// `("node", "host:port")`; per-metric labels are untouched, so metric
    /// handles resolved before or after are the same atomics.
    pub fn set_base_label(&self, key: &str, value: &str) {
        let mut base = self.base.lock().unwrap_or_else(|e| e.into_inner());
        match base.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value.to_string(),
            None => base.push((key.to_string(), value.to_string())),
        }
    }

    /// The identity labels stamped onto rendered series.
    pub fn base_labels(&self) -> Vec<(String, String)> {
        self.base.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Counter handle for `name{labels}` (created on first use).
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Gauge handle for `name{labels}` (created on first use).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Histogram handle for `name{labels}` (created on first use).
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<LatencyHistogram> {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics
            .entry(key)
            .or_insert_with(|| Metric::Histogram(Arc::new(LatencyHistogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Offer an exemplar for the histogram `name{labels}`. The registry
    /// keeps the largest-valued exemplar per histogram, so the retained one
    /// always sits in the highest occupied bucket (the p99 tail).
    pub fn observe_exemplar(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        value: u64,
        trace_id: u128,
    ) {
        let key = MetricKey::new(name, labels);
        let mut exemplars = self.exemplars.lock().unwrap_or_else(|e| e.into_inner());
        let slot = exemplars.entry(key).or_insert(Exemplar { value, trace_id });
        if value >= slot.value {
            *slot = Exemplar { value, trace_id };
        }
    }

    /// The retained exemplar for `name{labels}`, if any.
    pub fn exemplar(&self, name: &str, labels: &[(&str, &str)]) -> Option<Exemplar> {
        let key = MetricKey::new(name, labels);
        self.exemplars
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .copied()
    }

    /// Record a completed trace into the bounded recent-trace ring.
    pub(crate) fn push_trace(&self, trace: CompletedTrace) {
        let mut recent = self.recent.lock().unwrap_or_else(|e| e.into_inner());
        if recent.len() == RECENT_TRACES {
            recent.remove(0);
        }
        recent.push(trace);
    }

    /// The most recent completed traces, oldest first.
    pub fn recent_traces(&self) -> Vec<CompletedTrace> {
        self.recent
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Prometheus text exposition (text/plain; version=0.0.4).
    ///
    /// Histograms emit cumulative `_bucket{le="..."}` series over their
    /// non-empty buckets plus `le="+Inf"`, `_sum`, and `_count` — and two
    /// extension series, `_min` and `_max`, carrying the exact observed
    /// extremes. Those are what make the exposition a *lossless* federation
    /// contract: quantile estimates clamp to min/max, so a parser that
    /// recovers them reproduces this registry's p50/p99 exactly (see
    /// [`crate::federation`]). Identity labels set via
    /// [`set_base_label`](Registry::set_base_label) are appended to every
    /// series.
    pub fn render_prometheus(&self) -> String {
        let ident = self.base_labels();
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut last_name = "";
        for (key, metric) in metrics.iter() {
            let kind = match metric {
                Metric::Counter(_) => "counter",
                Metric::Gauge(_) => "gauge",
                Metric::Histogram(_) => "histogram",
            };
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} {kind}", key.name);
                last_name = &key.name;
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{} {}", key.render_with(&ident), c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{} {}", key.render_with(&ident), g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let base = key.name.clone();
                    let suffixed = |suffix: &str| MetricKey {
                        name: format!("{base}{suffix}"),
                        labels: key.labels.clone(),
                    };
                    let mut bucket_labels = ident.clone();
                    bucket_labels.push((String::new(), String::new())); // le slot
                                                                        // OpenMetrics exemplar: attached to the first bucket
                                                                        // whose upper bound contains the exemplar's value.
                                                                        // xlint: lock-order(metrics -> exemplars) reason="render holds the metric table while sampling each histogram's exemplar; recording paths take exemplars alone, so the nesting is one-directional"
                    let exemplar = self
                        .exemplars
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .get(key)
                        .copied();
                    let mut exemplar_pending = exemplar;
                    for (le, cumulative) in snap.cumulative() {
                        if let Some(slot) = bucket_labels.last_mut() {
                            *slot = ("le".to_string(), le.to_string());
                        }
                        let _ = write!(
                            out,
                            "{} {cumulative}",
                            suffixed("_bucket").render_with(&bucket_labels)
                        );
                        match exemplar_pending {
                            Some(ex) if ex.value <= le => {
                                let _ = write!(
                                    out,
                                    " # {{trace_id=\"{:032x}\"}} {}",
                                    ex.trace_id, ex.value
                                );
                                exemplar_pending = None;
                            }
                            _ => {}
                        }
                        out.push('\n');
                    }
                    if let Some(slot) = bucket_labels.last_mut() {
                        *slot = ("le".to_string(), "+Inf".to_string());
                    }
                    let _ = write!(
                        out,
                        "{} {}",
                        suffixed("_bucket").render_with(&bucket_labels),
                        snap.count
                    );
                    if let Some(ex) = exemplar_pending {
                        let _ =
                            write!(out, " # {{trace_id=\"{:032x}\"}} {}", ex.trace_id, ex.value);
                    }
                    out.push('\n');
                    let _ = writeln!(out, "{} {}", suffixed("_sum").render_with(&ident), snap.sum);
                    let _ = writeln!(
                        out,
                        "{} {}",
                        suffixed("_count").render_with(&ident),
                        snap.count
                    );
                    let _ = writeln!(out, "{} {}", suffixed("_min").render_with(&ident), snap.min);
                    let _ = writeln!(out, "{} {}", suffixed("_max").render_with(&ident), snap.max);
                }
            }
        }
        out
    }

    /// JSON rendering: an object keyed by `name{labels}`; counters and
    /// gauges map to numbers, histograms to summary objects.
    pub fn render_json(&self) -> String {
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = String::from("{");
        for (i, (key, metric)) in metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{:?}:", key.render());
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(out, "{}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = write!(out, "{}", g.get());
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    let _ = write!(
                        out,
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                        s.count,
                        s.sum,
                        s.min,
                        s.max,
                        s.p50(),
                        s.p90(),
                        s.p99(),
                        s.p999()
                    );
                }
            }
        }
        out.push('}');
        out
    }

    /// Fold a scraped snapshot into the histogram `name{labels}` (created
    /// on first use) — the federation re-hydration path.
    pub fn merge_histogram(&self, name: &str, labels: &[(&str, &str)], snap: &HistogramSnapshot) {
        self.histogram(name, labels).accumulate(snap);
    }

    /// Snapshot of one histogram, if registered.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        let key = MetricKey::new(name, labels);
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics.get(&key) {
            Some(Metric::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        }
    }
}

/// The process-wide default registry, used by client-side instrumentation
/// (DSCL pipelines, cache policies, store clients). Servers typically make
/// their own `Registry` so concurrent instances don't mix metrics.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_key_same_counter() {
        let reg = Registry::new();
        let a = reg.counter("requests_total", &[("route", "/v1"), ("method", "GET")]);
        // Label order must not matter.
        let b = reg.counter("requests_total", &[("method", "GET"), ("route", "/v1")]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn prometheus_text_shape() {
        let reg = Registry::new();
        reg.counter("hits_total", &[("cache", "lru")]).add(7);
        reg.gauge("entries", &[]).set(-3);
        let h = reg.histogram("latency_ns", &[("op", "get")]);
        h.record(100);
        h.record(200_000);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE hits_total counter"), "{text}");
        assert!(text.contains("hits_total{cache=\"lru\"} 7"), "{text}");
        assert!(text.contains("# TYPE entries gauge"), "{text}");
        assert!(text.contains("entries -3"), "{text}");
        assert!(text.contains("# TYPE latency_ns histogram"), "{text}");
        assert!(
            text.contains("latency_ns_bucket{op=\"get\",le=\"+Inf\"} 2"),
            "{text}"
        );
        assert!(text.contains("latency_ns_sum{op=\"get\"} 200100"), "{text}");
        assert!(text.contains("latency_ns_count{op=\"get\"} 2"), "{text}");
        // Cumulative bucket counts are monotone.
        let mut last = 0;
        for line in text.lines().filter(|l| l.starts_with("latency_ns_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "non-monotone cumulative counts: {text}");
            last = v;
        }
    }

    #[test]
    fn json_rendering_is_parseable() {
        let reg = Registry::new();
        reg.counter("a_total", &[]).add(1);
        reg.histogram("lat", &[]).record(5);
        let json = reg.render_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v.get("a_total"), Some(&serde_json::Value::Int(1)));
        assert_eq!(
            v.get("lat").unwrap().get("count"),
            Some(&serde_json::Value::Int(1))
        );
    }

    #[test]
    fn exemplar_keeps_max_and_renders_on_containing_bucket() {
        let reg = Registry::new();
        let h = reg.histogram("lat_ns", &[("op", "get")]);
        h.record(100);
        h.record(90_000);
        reg.observe_exemplar("lat_ns", &[("op", "get")], 100, 0x1);
        reg.observe_exemplar("lat_ns", &[("op", "get")], 90_000, 0x2);
        reg.observe_exemplar("lat_ns", &[("op", "get")], 50, 0x3); // smaller: ignored
        assert_eq!(
            reg.exemplar("lat_ns", &[("op", "get")]),
            Some(Exemplar {
                value: 90_000,
                trace_id: 0x2
            })
        );
        let text = reg.render_prometheus();
        let ex_lines: Vec<&str> = text
            .lines()
            .filter(|l| l.contains("# {trace_id="))
            .collect();
        assert_eq!(ex_lines.len(), 1, "{text}");
        let line = ex_lines[0];
        assert!(line.starts_with("lat_ns_bucket"), "{line}");
        assert!(
            line.contains(&format!("# {{trace_id=\"{:032x}\"}} 90000", 0x2)),
            "{line}"
        );
        // The exemplar sits in a bucket whose bound contains its value.
        let le: u64 = line
            .split("le=\"")
            .nth(1)
            .unwrap()
            .split('"')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(le >= 90_000, "{line}");
    }

    #[test]
    fn histograms_expose_min_max_extension_series() {
        let reg = Registry::new();
        let h = reg.histogram("lat_ns", &[("op", "get")]);
        h.record(7);
        h.record(90_000);
        let text = reg.render_prometheus();
        assert!(text.contains("lat_ns_min{op=\"get\"} 7"), "{text}");
        assert!(text.contains("lat_ns_max{op=\"get\"} 90000"), "{text}");
    }

    #[test]
    fn base_labels_stamp_every_series() {
        let reg = Registry::new();
        reg.set_base_label("node", "127.0.0.1:9999");
        reg.counter("hits_total", &[("cache", "lru")]).add(7);
        reg.gauge("entries", &[]).set(3);
        reg.histogram("lat_ns", &[]).record(100);
        let text = reg.render_prometheus();
        assert!(
            text.contains("hits_total{cache=\"lru\",node=\"127.0.0.1:9999\"} 7"),
            "{text}"
        );
        assert!(
            text.contains("entries{node=\"127.0.0.1:9999\"} 3"),
            "{text}"
        );
        assert!(
            text.contains("lat_ns_count{node=\"127.0.0.1:9999\"} 1"),
            "{text}"
        );
        assert!(
            text.contains("lat_ns_bucket{node=\"127.0.0.1:9999\",le="),
            "{text}"
        );
        // Replacing the label replaces, not duplicates.
        reg.set_base_label("node", "10.0.0.1:1");
        let text = reg.render_prometheus();
        assert!(text.contains("entries{node=\"10.0.0.1:1\"} 3"), "{text}");
        assert!(!text.contains("127.0.0.1:9999"), "{text}");
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = Registry::new();
        let g = reg.gauge("queue_depth", &[]);
        g.add(10);
        g.add(-4);
        assert_eq!(g.get(), 6);
    }
}
