//! SLO evaluation over federated metrics: error budgets, burn rates, and
//! recorder-linked alerts.
//!
//! An [`Objective`] declares what "good" means for one operation — either
//! a latency threshold over a histogram ("99% of gets under 5ms") or an
//! availability ratio over counters ("99.9% of requests succeed") — and a
//! sliding window to judge it over. The [`SloEngine`] is fed successive
//! [`ParsedMetrics`] views (typically `FleetView::merged` from a
//! federation poll); because the underlying series are cumulative, each
//! window is computed as a *delta* between the newest sample and the
//! oldest retained one, so the engine needs no cooperation from the
//! servers being judged.
//!
//! The burn rate is the standard SRE quantity: the fraction of requests
//! that were bad, divided by the fraction the objective allows
//! (`1 - target`). Burn 1.0 means the error budget drains exactly as fast
//! as it refills; burn 10 means an incident. When an objective's burn
//! crosses its alert threshold the engine records a synthetic trace into
//! the [`FlightRecorder`] — carrying the exemplar trace id of the slowest
//! observation in the offending histogram when one is available — so the
//! alert in a dashboard links straight to a concrete captured request.

use crate::ctx::TraceContext;
use crate::federation::ParsedMetrics;
use crate::hist::HistogramSnapshot;
use crate::recorder::FlightRecorder;
use crate::registry::Registry;
use crate::trace::{CompletedTrace, TraceEvent};
use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

/// What an objective measures.
#[derive(Clone, Debug)]
pub enum SloKind {
    /// Good = observations at or under `threshold_ns` in the histogram
    /// `histogram{labels}`. `labels` is a subset filter: all matching
    /// series are merged before judging (empty = every label set).
    Latency {
        histogram: String,
        labels: Vec<(String, String)>,
        threshold_ns: u64,
    },
    /// Good = `1 - errors/total` for the two counters, each summed over
    /// every series matching the `labels` subset filter.
    Availability {
        total: String,
        errors: String,
        labels: Vec<(String, String)>,
    },
}

/// One declared objective.
#[derive(Clone, Debug)]
pub struct Objective {
    /// Short stable name, used as the `op` label on the SLO gauges.
    pub name: String,
    pub kind: SloKind,
    /// Target good fraction in `(0, 1)`, e.g. `0.99`.
    pub target: f64,
    /// Sliding window the objective is judged over.
    pub window: Duration,
    /// Burn rate at or above which an alert fires, e.g. `2.0`.
    pub burn_alert: f64,
}

impl Objective {
    /// A latency objective: `target` of ops on `histogram{labels}` at or
    /// under `threshold_ns`, judged over `window`.
    pub fn latency(
        name: &str,
        histogram: &str,
        labels: &[(&str, &str)],
        threshold_ns: u64,
        target: f64,
        window: Duration,
    ) -> Objective {
        Objective {
            name: name.to_string(),
            kind: SloKind::Latency {
                histogram: histogram.to_string(),
                labels: own(labels),
                threshold_ns,
            },
            target,
            window,
            burn_alert: 2.0,
        }
    }

    /// An availability objective: at most `1 - target` of `total{labels}`
    /// may show up in `errors{labels}`, judged over `window`.
    pub fn availability(
        name: &str,
        total: &str,
        errors: &str,
        labels: &[(&str, &str)],
        target: f64,
        window: Duration,
    ) -> Objective {
        Objective {
            name: name.to_string(),
            kind: SloKind::Availability {
                total: total.to_string(),
                errors: errors.to_string(),
                labels: own(labels),
            },
            target,
            window,
            burn_alert: 2.0,
        }
    }

    /// Override the alerting burn-rate threshold (default 2.0).
    pub fn alert_at(mut self, burn: f64) -> Objective {
        self.burn_alert = burn;
        self
    }
}

fn own(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    labels
        .iter()
        .map(|&(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// Cumulative measurements captured from one metrics view.
#[derive(Clone, Debug, Default)]
struct WindowSample {
    /// Latency: the full histogram snapshot at sample time.
    hist: Option<HistogramSnapshot>,
    /// Availability: (total, errors) counter readings.
    counters: Option<(u64, u64)>,
}

/// The judged state of one objective at one evaluation.
#[derive(Clone, Debug)]
pub struct SloStatus {
    pub name: String,
    /// Events in the window (histogram count delta or counter delta).
    pub total: u64,
    /// Events that violated the objective.
    pub bad: u64,
    /// Observed good fraction (1.0 when the window is empty).
    pub good_fraction: f64,
    /// `bad_fraction / (1 - target)`.
    pub burn_rate: f64,
    /// Fraction of the window's error budget still unspent, in `[0, 1]`.
    pub budget_remaining: f64,
    /// Whether this evaluation has the alert active.
    pub alerting: bool,
}

/// A fired burn-rate alert.
#[derive(Clone, Debug)]
pub struct SloAlert {
    pub objective: String,
    pub burn_rate: f64,
    /// Trace id of the synthetic alert trace recorded into the flight
    /// recorder (and of the linked exemplar, when one was available).
    pub trace_id: u128,
    /// Millisecond timestamp passed to `evaluate`.
    pub at_ms: u64,
}

/// Evaluates objectives against successive metric views.
///
/// Burn rates are exported as `slo_burn_rate_milli{op}` and remaining
/// budget as `slo_error_budget_remaining_milli{op}` — gauges are integral,
/// so both are fixed-point thousandths (burn 2.5 renders as 2500).
pub struct SloEngine {
    objectives: Vec<Objective>,
    /// Per-objective history: (timestamp ms, cumulative sample). The front
    /// entry is kept one step *older* than the window so the delta always
    /// spans at least the full window once enough history exists.
    history: BTreeMap<String, VecDeque<(u64, WindowSample)>>,
    /// Objectives currently in the alerting state (edge-triggered firing).
    active: BTreeMap<String, u128>,
    alerts: Vec<SloAlert>,
}

impl SloEngine {
    pub fn new(objectives: Vec<Objective>) -> SloEngine {
        SloEngine {
            objectives,
            history: BTreeMap::new(),
            active: BTreeMap::new(),
            alerts: Vec::new(),
        }
    }

    /// Every alert fired so far, oldest first.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Feed one metrics view sampled at `now_ms`, publish SLO gauges into
    /// `out`, and return each objective's judged status. Alert
    /// transitions (burn crossing the threshold upward) record a
    /// synthetic trace into the global [`FlightRecorder`].
    pub fn evaluate(
        &mut self,
        source: &ParsedMetrics,
        now_ms: u64,
        out: &Registry,
    ) -> Vec<SloStatus> {
        let mut statuses = Vec::with_capacity(self.objectives.len());
        for objective in &self.objectives {
            let sample = capture(&objective.kind, source);
            let history = self.history.entry(objective.name.clone()).or_default();
            history.push_back((now_ms, sample));
            // Trim, but always keep one entry older than the window as the
            // delta baseline.
            let horizon = now_ms.saturating_sub(objective.window.as_millis() as u64);
            while history.len() > 2 && history[1].0 <= horizon {
                history.pop_front();
            }
            let (total, bad, exemplar) = window_delta(objective, history, source);
            let good_fraction = if total == 0 {
                1.0
            } else {
                1.0 - bad as f64 / total as f64
            };
            let budget = (1.0 - objective.target).max(f64::EPSILON);
            let bad_fraction = if total == 0 {
                0.0
            } else {
                bad as f64 / total as f64
            };
            let burn_rate = bad_fraction / budget;
            let budget_remaining = (1.0 - burn_rate).clamp(0.0, 1.0);
            out.gauge("slo_burn_rate_milli", &[("op", &objective.name)])
                .set((burn_rate * 1000.0).round() as i64);
            out.gauge(
                "slo_error_budget_remaining_milli",
                &[("op", &objective.name)],
            )
            .set((budget_remaining * 1000.0).round() as i64);

            let alerting = burn_rate >= objective.burn_alert && total > 0;
            let was_active = self.active.contains_key(&objective.name);
            if alerting && !was_active {
                let trace_id = fire_alert(objective, burn_rate, total, bad, exemplar);
                self.active.insert(objective.name.clone(), trace_id);
                self.alerts.push(SloAlert {
                    objective: objective.name.clone(),
                    burn_rate,
                    trace_id,
                    at_ms: now_ms,
                });
            } else if !alerting && was_active {
                self.active.remove(&objective.name);
            }
            statuses.push(SloStatus {
                name: objective.name.clone(),
                total,
                bad,
                good_fraction,
                burn_rate,
                budget_remaining,
                alerting,
            });
        }
        statuses
    }
}

/// Read the objective's cumulative inputs out of one metrics view.
/// `labels` is a *subset filter*: every series of the metric whose labels
/// are a superset of it is aggregated (histograms merge, counters sum), so
/// an empty filter judges the whole metric across all label dimensions.
fn capture(kind: &SloKind, source: &ParsedMetrics) -> WindowSample {
    match kind {
        SloKind::Latency {
            histogram, labels, ..
        } => WindowSample {
            hist: source.histograms_matching(histogram, &borrow(labels)),
            counters: None,
        },
        SloKind::Availability {
            total,
            errors,
            labels,
        } => {
            let l = borrow(labels);
            WindowSample {
                hist: None,
                counters: Some((
                    source.counters_matching(total, &l).unwrap_or(0),
                    source.counters_matching(errors, &l).unwrap_or(0),
                )),
            }
        }
    }
}

fn borrow(labels: &[(String, String)]) -> Vec<(&str, &str)> {
    labels
        .iter()
        .map(|(k, v)| (k.as_str(), v.as_str()))
        .collect()
}

/// Judge the window: newest sample minus the oldest retained baseline.
/// Returns (total, bad, exemplar trace id if relevant).
fn window_delta(
    objective: &Objective,
    history: &VecDeque<(u64, WindowSample)>,
    source: &ParsedMetrics,
) -> (u64, u64, Option<u128>) {
    let newest = &history.back().expect("pushed above").1;
    let oldest = &history.front().expect("non-empty").1;
    match &objective.kind {
        SloKind::Latency {
            histogram,
            labels,
            threshold_ns,
        } => {
            let (Some(now), Some(base)) = (&newest.hist, &oldest.hist) else {
                // Series absent (node down, or first poll): judge what we
                // have; a lone sample is its own window.
                let Some(now) = &newest.hist else {
                    return (0, 0, None);
                };
                let bad = now.count.saturating_sub(now.count_at_most(*threshold_ns));
                let ex = exemplar_for(source, histogram, labels);
                return (now.count, bad, ex);
            };
            let delta = now.saturating_delta(base);
            let bad = delta
                .count
                .saturating_sub(delta.count_at_most(*threshold_ns));
            (delta.count, bad, exemplar_for(source, histogram, labels))
        }
        SloKind::Availability { .. } => {
            let (now_t, now_e) = newest.counters.unwrap_or((0, 0));
            let (base_t, base_e) = oldest.counters.unwrap_or((0, 0));
            let total = now_t.saturating_sub(base_t);
            let bad = now_e.saturating_sub(base_e).min(total);
            (total, bad, None)
        }
    }
}

fn exemplar_for(
    source: &ParsedMetrics,
    histogram: &str,
    labels: &[(String, String)],
) -> Option<u128> {
    let key = crate::federation::SeriesKey::new(histogram, labels.to_vec());
    source.exemplars.get(&key).map(|e| e.trace_id)
}

/// Record the alert as a synthetic trace so `udsm-cli traces` / recorder
/// dumps show it next to the requests that burned the budget.
fn fire_alert(
    objective: &Objective,
    burn: f64,
    total: u64,
    bad: u64,
    exemplar: Option<u128>,
) -> u128 {
    let mut ctx = TraceContext::new_root();
    if let Some(id) = exemplar {
        // Share the exemplar's trace id: `by_trace_id` then returns both
        // the alert and the slow request that exemplifies it.
        ctx.trace_id = id;
    }
    let detail = format!(
        "burn={burn:.2} target={} window_bad={bad}/{total} threshold={}",
        objective.target,
        match &objective.kind {
            SloKind::Latency { threshold_ns, .. } => format!("{threshold_ns}ns"),
            SloKind::Availability { .. } => "availability".to_string(),
        }
    );
    let trace_id = ctx.trace_id;
    FlightRecorder::global().record(CompletedTrace {
        origin: "slo".to_string(),
        op: objective.name.clone(),
        total: Duration::ZERO,
        stages: Vec::new(),
        other: Duration::ZERO,
        ctx: Some(ctx),
        events: vec![TraceEvent {
            at: Duration::ZERO,
            name: "slo_burn_alert".to_string(),
            detail: detail.clone(),
        }],
        server_spans: Vec::new(),
        error: Some(format!("slo burn alert: {detail}")),
    });
    trace_id
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::federation::parse_prometheus;

    fn view_with_latency(fast: u64, slow: u64) -> ParsedMetrics {
        let reg = Registry::new();
        let h = reg.histogram("op_ns", &[("op", "get")]);
        for _ in 0..fast {
            h.record(1_000);
        }
        for _ in 0..slow {
            h.record(50_000_000);
        }
        if slow > 0 {
            reg.observe_exemplar("op_ns", &[("op", "get")], 50_000_000, 0xfeed);
        }
        parse_prometheus(&reg.render_prometheus()).unwrap()
    }

    #[test]
    fn healthy_window_has_zero_burn() {
        let mut engine = SloEngine::new(vec![Objective::latency(
            "get",
            "op_ns",
            &[("op", "get")],
            1_000_000,
            0.99,
            Duration::from_secs(60),
        )]);
        let out = Registry::new();
        let statuses = engine.evaluate(&view_with_latency(100, 0), 1_000, &out);
        assert_eq!(statuses[0].bad, 0);
        assert_eq!(statuses[0].burn_rate, 0.0);
        assert!(!statuses[0].alerting);
        assert_eq!(out.gauge("slo_burn_rate_milli", &[("op", "get")]).get(), 0);
        assert_eq!(
            out.gauge("slo_error_budget_remaining_milli", &[("op", "get")])
                .get(),
            1000
        );
        assert!(engine.alerts().is_empty());
    }

    #[test]
    fn burn_alert_fires_once_and_links_the_exemplar() {
        let mut engine = SloEngine::new(vec![Objective::latency(
            "get",
            "op_ns",
            &[("op", "get")],
            1_000_000,
            0.99,
            Duration::from_secs(60),
        )]);
        let out = Registry::new();
        engine.evaluate(&view_with_latency(100, 0), 1_000, &out);
        // 10% of the next window is slow: burn = 0.10 / 0.01 = 10.
        let statuses = engine.evaluate(&view_with_latency(190, 10), 2_000, &out);
        assert!(statuses[0].alerting, "{statuses:?}");
        assert!((statuses[0].burn_rate - 10.0).abs() < 0.5, "{statuses:?}");
        assert_eq!(engine.alerts().len(), 1);
        let alert = &engine.alerts()[0];
        assert_eq!(alert.trace_id, 0xfeed, "alert should adopt the exemplar id");
        let linked = FlightRecorder::global().by_trace_id(alert.trace_id);
        assert!(
            linked
                .iter()
                .any(|t| t.origin == "slo" && t.events.iter().any(|e| e.name == "slo_burn_alert")),
            "recorder should hold the alert trace"
        );
        // Still burning: edge-triggered, no second alert.
        engine.evaluate(&view_with_latency(280, 20), 3_000, &out);
        assert_eq!(engine.alerts().len(), 1);
    }

    #[test]
    fn availability_objective_counts_error_deltas() {
        let mut engine = SloEngine::new(vec![Objective::availability(
            "writes",
            "ops_total",
            "op_errors_total",
            &[],
            0.999,
            Duration::from_secs(60),
        )
        .alert_at(5.0)]);
        let out = Registry::new();
        let view = |total: u64, errors: u64| {
            let reg = Registry::new();
            reg.counter("ops_total", &[]).add(total);
            reg.counter("op_errors_total", &[]).add(errors);
            parse_prometheus(&reg.render_prometheus()).unwrap()
        };
        engine.evaluate(&view(1000, 0), 1_000, &out);
        let statuses = engine.evaluate(&view(2000, 10), 2_000, &out);
        // 10 bad of 1000 new = 1% bad; budget 0.1% -> burn 10.
        assert_eq!(statuses[0].total, 1000);
        assert_eq!(statuses[0].bad, 10);
        assert!((statuses[0].burn_rate - 10.0).abs() < 1e-9);
        assert!(statuses[0].alerting);
    }

    #[test]
    fn window_trim_keeps_a_baseline_older_than_the_window() {
        let mut engine = SloEngine::new(vec![Objective::availability(
            "w",
            "ops_total",
            "op_errors_total",
            &[],
            0.99,
            Duration::from_millis(100),
        )]);
        let out = Registry::new();
        let view = |total: u64| {
            let reg = Registry::new();
            reg.counter("ops_total", &[]).add(total);
            reg.counter("op_errors_total", &[]).add(0);
            parse_prometheus(&reg.render_prometheus()).unwrap()
        };
        for (i, t) in [100u64, 200, 300, 400, 500].iter().enumerate() {
            engine.evaluate(&view(*t), (i as u64 + 1) * 50, &out);
        }
        // Window 100ms at t=300: baseline is the newest sample at or
        // before t=200 (ops=400), not the very first one.
        let statuses = engine.evaluate(&view(600), 300, &out);
        assert_eq!(statuses[0].total, 600 - 400);
    }
}
