//! Per-request span tracing.
//!
//! A [`Trace`] accompanies one logical operation (a DSCL `get`, a server
//! request) and records how long each named stage took — `cache_lookup`,
//! `decompress`, `net_rtt`, ... A trace may carry a [`TraceContext`]
//! (distributed identity), structured [`TraceEvent`]s (retries, breaker
//! transitions, cache hits), and [`ServerSpan`]s returned by servers over
//! the wire. Finishing a trace publishes each stage into per-stage
//! histograms in a [`Registry`], attaches a histogram exemplar linking the
//! p99 bucket back to the trace id, pushes the trace onto the registry's
//! recent-trace ring, and offers it to the global flight recorder.
//!
//! Stage timings are measured inside the operation, so their sum is always
//! ≤ the trace's total wall-clock time; the remainder is reported as the
//! explicit [`CompletedTrace::other`] duration so waterfalls sum to wall
//! time instead of silently under-reporting.

use std::time::{Duration, Instant};

use crate::ctx::{ScopeData, ServerSpan, TraceContext};
use crate::registry::Registry;

/// An in-flight trace.
pub struct Trace {
    op: String,
    started: Instant,
    stages: Vec<(&'static str, Duration)>,
    ctx: Option<TraceContext>,
    events: Vec<TraceEvent>,
    server_spans: Vec<ServerSpan>,
    error: Option<String>,
}

impl Trace {
    /// Start a trace for one operation.
    pub fn begin(op: impl Into<String>) -> Trace {
        Trace {
            op: op.into(),
            started: Instant::now(),
            stages: Vec::with_capacity(8),
            ctx: None,
            events: Vec::new(),
            server_spans: Vec::new(),
            error: None,
        }
    }

    /// Attach a distributed-trace identity.
    pub fn with_ctx(mut self, ctx: TraceContext) -> Trace {
        self.ctx = Some(ctx);
        self
    }

    /// The trace's distributed identity, if any.
    pub fn ctx(&self) -> Option<TraceContext> {
        self.ctx
    }

    /// Time a closure as one named stage. Stages repeat if called twice
    /// with the same name (both samples are kept). While an `xprof`
    /// profiling session is active, the closure also runs inside a
    /// profiler scope of the same name, so sampled profiles share the
    /// trace stage vocabulary.
    pub fn time<R>(&mut self, stage: &'static str, f: impl FnOnce() -> R) -> R {
        let _prof = xprof::enter(stage);
        let t0 = Instant::now();
        let out = f();
        self.stages.push((stage, t0.elapsed()));
        out
    }

    /// Attach an externally measured stage duration.
    pub fn add(&mut self, stage: &'static str, d: Duration) {
        self.stages.push((stage, d));
    }

    /// Record a structured event at the current offset from trace start.
    pub fn event(&mut self, name: impl Into<String>, detail: impl Into<String>) {
        self.events.push(TraceEvent {
            at: self.started.elapsed(),
            name: name.into(),
            detail: detail.into(),
        });
    }

    /// Attach a server span returned over the wire.
    pub fn add_server_span(&mut self, span: ServerSpan) {
        self.server_spans.push(span);
    }

    /// Absorb what nested layers reported into a context scope while this
    /// operation ran (event instants become offsets from trace start).
    pub fn absorb_scope(&mut self, data: ScopeData) {
        for (at, name, detail) in data.events {
            self.events.push(TraceEvent {
                at: at.duration_since(self.started),
                name,
                detail,
            });
        }
        self.server_spans.extend(data.server_spans);
    }

    /// Mark the operation as failed.
    pub fn set_error(&mut self, msg: impl Into<String>) {
        self.error = Some(msg.into());
    }

    /// End the trace: record per-stage and total latency histograms into
    /// `registry` (`<prefix>_stage_duration_ns{op=..., stage=...}` and
    /// `<prefix>_op_duration_ns{op=...}`), attach an exemplar when the
    /// trace carries a context, keep the trace in the registry's recent
    /// ring, and offer it to the global flight recorder.
    pub fn finish(self, registry: &Registry, prefix: &str) -> CompletedTrace {
        let total = self.started.elapsed();
        for &(stage, d) in &self.stages {
            registry
                .histogram(
                    // xlint: allow(metric-hygiene) reason="prefix is the closed set of component names (dscl, udsm, ...) chosen by in-tree callers, never request data"
                    &format!("{prefix}_stage_duration_ns"),
                    &[("op", &self.op), ("stage", stage)],
                )
                .record_duration(d);
        }
        registry
            // xlint: allow(metric-hygiene) reason="prefix is the closed set of component names (dscl, udsm, ...) chosen by in-tree callers, never request data"
            .histogram(&format!("{prefix}_op_duration_ns"), &[("op", &self.op)])
            .record_duration(total);
        if let Some(ctx) = self.ctx {
            let ns = u64::try_from(total.as_nanos()).unwrap_or(u64::MAX);
            registry.observe_exemplar(
                // xlint: allow(metric-hygiene) reason="prefix is the closed set of component names (dscl, udsm, ...) chosen by in-tree callers, never request data"
                &format!("{prefix}_op_duration_ns"),
                &[("op", &self.op)],
                ns,
                ctx.trace_id,
            );
        }
        let done = self.seal(prefix, total);
        registry.push_trace(done.clone());
        crate::recorder::FlightRecorder::global().record(done.clone());
        done
    }

    /// End the trace without a registry: compute totals and offer the
    /// result to the global flight recorder only. `origin` labels which
    /// component produced the trace (`dscl`, `miniredis`, ...).
    pub fn complete(self, origin: &str) -> CompletedTrace {
        let total = self.started.elapsed();
        let done = self.seal(origin, total);
        crate::recorder::FlightRecorder::global().record(done.clone());
        done
    }

    fn seal(self, origin: &str, total: Duration) -> CompletedTrace {
        let stage_sum: Duration = self.stages.iter().map(|&(_, d)| d).sum();
        CompletedTrace {
            origin: origin.to_string(),
            op: self.op,
            total,
            other: total.saturating_sub(stage_sum),
            stages: self.stages,
            ctx: self.ctx,
            events: self.events,
            server_spans: self.server_spans,
            error: self.error,
        }
    }
}

/// A structured event within a trace (`retry`, `breaker`, `cache`, ...).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Offset from trace start.
    pub at: Duration,
    /// Event kind.
    pub name: String,
    /// Structured detail, e.g. `attempt=2 backoff_ms=41`.
    pub detail: String,
}

/// A finished trace.
#[derive(Clone, Debug)]
pub struct CompletedTrace {
    /// Which component produced the trace (`dscl`, `miniredis`, ...).
    pub origin: String,
    /// Operation name (`get`, `put`, ...).
    pub op: String,
    /// Total wall-clock time of the operation.
    pub total: Duration,
    /// `(stage, duration)` in execution order.
    pub stages: Vec<(&'static str, Duration)>,
    /// Untimed remainder: `total − Σ stages`, made explicit so waterfalls
    /// sum to wall time.
    pub other: Duration,
    /// Distributed identity, when the operation was traced across the wire.
    pub ctx: Option<TraceContext>,
    /// Structured events, in time order as recorded.
    pub events: Vec<TraceEvent>,
    /// Spans returned by servers that served this operation's requests.
    pub server_spans: Vec<ServerSpan>,
    /// Error message when the operation failed.
    pub error: Option<String>,
}

impl CompletedTrace {
    /// The server-side half of a distributed trace: a trace whose span ids
    /// come from `span`, parented to the client's `ctx`, with the span's
    /// queue/execute/serialize timings as its stages. Servers record this
    /// into the global flight recorder so by-trace-id queries return both
    /// halves even when the reply to the client was lost.
    pub fn server_side(client: &TraceContext, span: &ServerSpan, op: impl Into<String>) -> Self {
        let queue = Duration::from_nanos(span.queue_ns);
        let execute = Duration::from_nanos(span.execute_ns);
        let serialize = Duration::from_nanos(span.serialize_ns);
        CompletedTrace {
            origin: span.server.clone(),
            op: op.into(),
            total: queue.saturating_add(execute).saturating_add(serialize),
            stages: vec![
                ("queue", queue),
                ("execute", execute),
                ("serialize", serialize),
            ],
            other: Duration::ZERO,
            ctx: Some(TraceContext {
                trace_id: client.trace_id,
                span_id: span.span_id,
                parent_id: Some(client.span_id),
                sampled: client.sampled,
            }),
            events: Vec::new(),
            server_spans: Vec::new(),
            error: None,
        }
    }

    /// Sum of all stage durations (≤ [`CompletedTrace::total`]).
    pub fn stage_sum(&self) -> Duration {
        self.stages.iter().map(|&(_, d)| d).sum()
    }

    /// One-line human rendering: `get 1.234ms [cache_lookup 0.1ms, ...]`.
    pub fn render(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|&(s, d)| format!("{s} {:.3}ms", d.as_secs_f64() * 1e3))
            .collect();
        format!(
            "{} {:.3}ms [{}]",
            self.op,
            self.total.as_secs_f64() * 1e3,
            stages.join(", ")
        )
    }

    /// Multi-line per-stage waterfall, bars scaled to the total duration:
    ///
    /// ```text
    /// get dscl trace=0123… 2.345ms
    ///   cache_lookup  ######······· 0.412ms
    ///   other         #············ 0.010ms
    ///   server miniredis span=… queue=… execute=… serialize=…
    ///   +0.300ms retry attempt=2 backoff_ms=41
    /// ```
    pub fn waterfall(&self) -> String {
        const BAR: usize = 24;
        let total_ms = self.total.as_secs_f64() * 1e3;
        let mut out = match self.ctx {
            Some(c) => format!(
                "{} {} trace={:032x} {:.3}ms",
                self.op, self.origin, c.trace_id, total_ms
            ),
            None => format!("{} {} {:.3}ms", self.op, self.origin, total_ms),
        };
        if let Some(err) = &self.error {
            out.push_str(&format!(" ERROR: {err}"));
        }
        out.push('\n');
        let width = self
            .stages
            .iter()
            .map(|&(s, _)| s.len())
            .chain(std::iter::once("other".len()))
            .max()
            .unwrap_or(5);
        let mut bar_line = |name: &str, d: Duration| {
            let ms = d.as_secs_f64() * 1e3;
            let frac = if total_ms > 0.0 { ms / total_ms } else { 0.0 };
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let filled = ((frac * BAR as f64).round() as usize).min(BAR);
            let bar = format!(
                "{}{}",
                "#".repeat(filled),
                ".".repeat(BAR.saturating_sub(filled))
            );
            out.push_str(&format!("  {name:<width$} {bar} {ms:.3}ms\n"));
        };
        for &(stage, d) in &self.stages {
            bar_line(stage, d);
        }
        bar_line("other", self.other);
        for s in &self.server_spans {
            out.push_str(&format!(
                "  server {} span={:016x} queue={:.3}ms execute={:.3}ms serialize={:.3}ms\n",
                s.server,
                s.span_id,
                s.queue_ns as f64 / 1e6,
                s.execute_ns as f64 / 1e6,
                s.serialize_ns as f64 / 1e6,
            ));
        }
        for e in &self.events {
            out.push_str(&format!(
                "  +{:.3}ms {} {}\n",
                e.at.as_secs_f64() * 1e3,
                e.name,
                e.detail
            ));
        }
        out
    }

    /// JSON object rendering (the `GET /trace` element format). Hand-built
    /// so the `&'static str` stage names need no serde support.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"origin\":\"{}\"", json_escape(&self.origin)));
        out.push_str(&format!(",\"op\":\"{}\"", json_escape(&self.op)));
        match self.ctx {
            Some(c) => {
                out.push_str(&format!(",\"trace_id\":\"{:032x}\"", c.trace_id));
                out.push_str(&format!(",\"span_id\":\"{:016x}\"", c.span_id));
                match c.parent_id {
                    Some(p) => out.push_str(&format!(",\"parent_id\":\"{p:016x}\"")),
                    None => out.push_str(",\"parent_id\":null"),
                }
            }
            None => out.push_str(",\"trace_id\":null,\"span_id\":null,\"parent_id\":null"),
        }
        out.push_str(&format!(",\"total_ns\":{}", ns(self.total)));
        out.push_str(",\"stages\":[");
        for (i, &(stage, d)) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[\"{}\",{}]", json_escape(stage), ns(d)));
        }
        out.push_str(&format!("],\"other_ns\":{}", ns(self.other)));
        out.push_str(",\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"at_ns\":{},\"name\":\"{}\",\"detail\":\"{}\"}}",
                ns(e.at),
                json_escape(&e.name),
                json_escape(&e.detail)
            ));
        }
        out.push_str("],\"server_spans\":[");
        for (i, s) in self.server_spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"server\":\"{}\",\"span_id\":\"{:016x}\",\"queue_ns\":{},\
                 \"execute_ns\":{},\"serialize_ns\":{}}}",
                json_escape(&s.server),
                s.span_id,
                s.queue_ns,
                s.execute_ns,
                s.serialize_ns
            ));
        }
        out.push_str("],\"error\":");
        match &self.error {
            Some(e) => out.push_str(&format!("\"{}\"", json_escape(e))),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

fn ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_sum_bounded_by_total() {
        let reg = Registry::new();
        let mut t = Trace::begin("get");
        t.time("cache_lookup", || {
            std::thread::sleep(Duration::from_millis(2))
        });
        t.time("decompress", || {
            std::thread::sleep(Duration::from_millis(1))
        });
        std::thread::sleep(Duration::from_millis(1)); // untimed glue
        let done = t.finish(&reg, "dscl");
        assert!(done.stage_sum() <= done.total, "{done:?}");
        assert_eq!(done.stages.len(), 2);
        assert_eq!(done.stages[0].0, "cache_lookup");
    }

    #[test]
    fn other_makes_stages_sum_to_wall_time() {
        let reg = Registry::new();
        let mut t = Trace::begin("get");
        t.add("net_rtt", Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(2)); // untimed glue
        let done = t.finish(&reg, "t");
        assert!(done.other >= Duration::from_millis(1), "{done:?}");
        assert_eq!(done.stage_sum() + done.other, done.total);
    }

    #[test]
    fn finish_publishes_histograms_and_ring() {
        let reg = Registry::new();
        for _ in 0..3 {
            let mut t = Trace::begin("put");
            t.time("encrypt", || {});
            t.finish(&reg, "dscl");
        }
        let snap = reg
            .histogram_snapshot(
                "dscl_stage_duration_ns",
                &[("op", "put"), ("stage", "encrypt")],
            )
            .unwrap();
        assert_eq!(snap.count, 3);
        let total = reg
            .histogram_snapshot("dscl_op_duration_ns", &[("op", "put")])
            .unwrap();
        assert_eq!(total.count, 3);
        assert_eq!(reg.recent_traces().len(), 3);
    }

    #[test]
    fn ring_is_bounded() {
        let reg = Registry::new();
        for _ in 0..(crate::registry::RECENT_TRACES + 10) {
            Trace::begin("x").finish(&reg, "t");
        }
        assert_eq!(reg.recent_traces().len(), crate::registry::RECENT_TRACES);
    }

    #[test]
    fn external_durations_attach() {
        let reg = Registry::new();
        let mut t = Trace::begin("get");
        t.add("net_rtt", Duration::from_micros(1500));
        let done = t.finish(&reg, "cs");
        assert_eq!(done.stages, vec![("net_rtt", Duration::from_micros(1500))]);
    }

    #[test]
    fn finish_attaches_exemplar_for_traced_ops() {
        let reg = Registry::new();
        let ctx = TraceContext::new_root();
        let mut t = Trace::begin("get").with_ctx(ctx);
        t.add("net_rtt", Duration::from_micros(10));
        t.finish(&reg, "ex");
        let ex = reg.exemplar("ex_op_duration_ns", &[("op", "get")]).unwrap();
        assert_eq!(ex.trace_id, ctx.trace_id);
        let text = reg.render_prometheus();
        assert!(
            text.contains(&format!("# {{trace_id=\"{:032x}\"}}", ctx.trace_id)),
            "{text}"
        );
    }

    #[test]
    fn events_and_scope_data_are_absorbed() {
        let ctx = TraceContext::new_root();
        let scope = crate::ctx::activate(ctx);
        let mut t = Trace::begin("get").with_ctx(ctx);
        t.event("cache", "miss");
        crate::ctx::report_event("retry", "attempt=2 backoff_ms=7");
        crate::ctx::report_server_span(ServerSpan {
            server: "miniredis".to_string(),
            span_id: 9,
            queue_ns: 1,
            execute_ns: 2,
            serialize_ns: 3,
        });
        t.absorb_scope(scope.finish());
        let done = t.complete("test");
        assert_eq!(done.events.len(), 2);
        assert_eq!(done.events[0].name, "cache");
        assert_eq!(done.events[1].detail, "attempt=2 backoff_ms=7");
        assert_eq!(done.server_spans.len(), 1);
        let wf = done.waterfall();
        assert!(wf.contains("server miniredis"), "{wf}");
        assert!(wf.contains("retry attempt=2"), "{wf}");
        assert!(wf.contains("other"), "{wf}");
    }

    #[test]
    fn json_rendering_is_parseable_and_complete() {
        let ctx = TraceContext::new_root();
        let mut t = Trace::begin("put\"x").with_ctx(ctx);
        t.add("store_io", Duration::from_micros(5));
        t.event("cache", "hit");
        t.set_error("boom \"quoted\"");
        let done = t.complete("dscl");
        let json = done.to_json();
        let v = serde_json::from_slice::<serde_json::Value>(json.as_bytes()).unwrap();
        assert_eq!(
            v.get("trace_id").and_then(|t| t.as_str()),
            Some(format!("{:032x}", ctx.trace_id).as_str())
        );
        assert!(v.get("total_ns").is_some());
        assert_eq!(
            v.get("stages").and_then(|s| s.as_array()).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(
            v.get("events").and_then(|s| s.as_array()).map(|a| a.len()),
            Some(1)
        );
        assert!(v.get("error").and_then(|e| e.as_str()).is_some());
    }
}
