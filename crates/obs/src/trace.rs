//! Per-request span tracing.
//!
//! A [`Trace`] accompanies one logical operation (a DSCL `get`, a server
//! request) and records how long each named stage took — `cache_lookup`,
//! `decompress`, `net_rtt`, ... Finishing a trace publishes each stage into
//! per-stage histograms in a [`Registry`] and pushes the trace onto the
//! registry's recent-trace ring for dumping.
//!
//! Stage timings are measured inside the operation, so their sum is always
//! ≤ the trace's total wall-clock time (the remainder is untimed glue).

use std::time::{Duration, Instant};

use crate::registry::Registry;

/// An in-flight trace.
pub struct Trace {
    op: &'static str,
    started: Instant,
    stages: Vec<(&'static str, Duration)>,
}

impl Trace {
    /// Start a trace for one operation.
    pub fn begin(op: &'static str) -> Trace {
        Trace {
            op,
            started: Instant::now(),
            stages: Vec::with_capacity(8),
        }
    }

    /// Time a closure as one named stage. Stages repeat if called twice
    /// with the same name (both samples are kept).
    pub fn time<R>(&mut self, stage: &'static str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        self.stages.push((stage, t0.elapsed()));
        out
    }

    /// Attach an externally measured stage duration.
    pub fn add(&mut self, stage: &'static str, d: Duration) {
        self.stages.push((stage, d));
    }

    /// End the trace: record per-stage and total latency histograms into
    /// `registry` (`<prefix>_stage_duration_ns{op=..., stage=...}` and
    /// `<prefix>_op_duration_ns{op=...}`) and keep the trace in the
    /// registry's recent ring.
    pub fn finish(self, registry: &Registry, prefix: &str) -> CompletedTrace {
        let total = self.started.elapsed();
        for &(stage, d) in &self.stages {
            registry
                .histogram(
                    &format!("{prefix}_stage_duration_ns"),
                    &[("op", self.op), ("stage", stage)],
                )
                .record_duration(d);
        }
        registry
            .histogram(&format!("{prefix}_op_duration_ns"), &[("op", self.op)])
            .record_duration(total);
        let done = CompletedTrace {
            op: self.op,
            total,
            stages: self.stages,
        };
        registry.push_trace(done.clone());
        done
    }
}

/// A finished trace.
#[derive(Clone, Debug)]
pub struct CompletedTrace {
    /// Operation name (`get`, `put`, ...).
    pub op: &'static str,
    /// Total wall-clock time of the operation.
    pub total: Duration,
    /// `(stage, duration)` in execution order.
    pub stages: Vec<(&'static str, Duration)>,
}

impl CompletedTrace {
    /// Sum of all stage durations (≤ [`CompletedTrace::total`]).
    pub fn stage_sum(&self) -> Duration {
        self.stages.iter().map(|&(_, d)| d).sum()
    }

    /// One-line human rendering: `get 1.234ms [cache_lookup 0.1ms, ...]`.
    pub fn render(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|&(s, d)| format!("{s} {:.3}ms", d.as_secs_f64() * 1e3))
            .collect();
        format!(
            "{} {:.3}ms [{}]",
            self.op,
            self.total.as_secs_f64() * 1e3,
            stages.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_sum_bounded_by_total() {
        let reg = Registry::new();
        let mut t = Trace::begin("get");
        t.time("cache_lookup", || {
            std::thread::sleep(Duration::from_millis(2))
        });
        t.time("decompress", || {
            std::thread::sleep(Duration::from_millis(1))
        });
        std::thread::sleep(Duration::from_millis(1)); // untimed glue
        let done = t.finish(&reg, "dscl");
        assert!(done.stage_sum() <= done.total, "{done:?}");
        assert_eq!(done.stages.len(), 2);
        assert_eq!(done.stages[0].0, "cache_lookup");
    }

    #[test]
    fn finish_publishes_histograms_and_ring() {
        let reg = Registry::new();
        for _ in 0..3 {
            let mut t = Trace::begin("put");
            t.time("encrypt", || {});
            t.finish(&reg, "dscl");
        }
        let snap = reg
            .histogram_snapshot(
                "dscl_stage_duration_ns",
                &[("op", "put"), ("stage", "encrypt")],
            )
            .unwrap();
        assert_eq!(snap.count, 3);
        let total = reg
            .histogram_snapshot("dscl_op_duration_ns", &[("op", "put")])
            .unwrap();
        assert_eq!(total.count, 3);
        assert_eq!(reg.recent_traces().len(), 3);
    }

    #[test]
    fn ring_is_bounded() {
        let reg = Registry::new();
        for _ in 0..(crate::registry::RECENT_TRACES + 10) {
            Trace::begin("x").finish(&reg, "t");
        }
        assert_eq!(reg.recent_traces().len(), crate::registry::RECENT_TRACES);
    }

    #[test]
    fn external_durations_attach() {
        let reg = Registry::new();
        let mut t = Trace::begin("get");
        t.add("net_rtt", Duration::from_micros(1500));
        let done = t.finish(&reg, "cs");
        assert_eq!(done.stages, vec![("net_rtt", Duration::from_micros(1500))]);
    }
}
