//! A per-endpoint circuit breaker.
//!
//! When an endpoint is down, every attempt costs a full connect-or-timeout
//! round trip and a retry burst on top. The breaker converts that sustained
//! failure into fast local rejection: after `failure_threshold` consecutive
//! transport failures it *opens* and sheds calls instantly with
//! [`StoreError::Unavailable`]; after `cooldown` it goes *half-open* and
//! admits exactly one probe. A successful probe closes the breaker, a
//! failed one re-opens it for another cooldown.

use kvapi::StoreError;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive transport failures before the breaker opens.
    pub failure_threshold: u32,
    /// How long to shed calls before admitting a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            failure_threshold: 5,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// Observable breaker state. The numeric mapping (`as_gauge`) is what the
/// obs gauge `resilience_breaker_state` exports: 0 closed, 1 open, 2
/// half-open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
}

/// The breaker itself. One instance per endpoint, shared by every request
/// to that endpoint.
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    pub fn new(policy: BreakerPolicy) -> CircuitBreaker {
        CircuitBreaker {
            policy,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
            }),
        }
    }

    pub fn state(&self) -> BreakerState {
        lock(&self.inner).state
    }

    /// Gate one attempt. `Ok` admits it (and, when half-open, claims the
    /// single probe slot — the caller *must* then report `on_success` or
    /// `on_failure`); `Err(Unavailable)` sheds it without touching the
    /// network.
    pub fn admit(&self) -> Result<(), StoreError> {
        let mut inner = lock(&self.inner);
        match inner.state {
            BreakerState::Closed => Ok(()),
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .map(|at| at.elapsed() >= self.policy.cooldown)
                    .unwrap_or(true);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    inner.probe_in_flight = true;
                    Ok(())
                } else {
                    Err(StoreError::Unavailable("circuit breaker open".into()))
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    Err(StoreError::Unavailable(
                        "circuit breaker half-open, probe in flight".into(),
                    ))
                } else {
                    inner.probe_in_flight = true;
                    Ok(())
                }
            }
        }
    }

    /// Report a successful (or healthily-rejected) attempt.
    pub fn on_success(&self) {
        let mut inner = lock(&self.inner);
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
        inner.probe_in_flight = false;
    }

    /// Report a transport failure.
    pub fn on_failure(&self) {
        let mut inner = lock(&self.inner);
        inner.probe_in_flight = false;
        match inner.state {
            BreakerState::HalfOpen => {
                // Failed probe: straight back to open for another cooldown.
                inner.state = BreakerState::Open;
                inner.opened_at = Some(Instant::now());
            }
            BreakerState::Closed => {
                inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
                if inner.consecutive_failures >= self.policy.failure_threshold {
                    inner.state = BreakerState::Open;
                    inner.opened_at = Some(Instant::now());
                }
            }
            BreakerState::Open => {}
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CircuitBreaker {
        CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 3,
            cooldown: Duration::from_millis(30),
        })
    }

    #[test]
    fn opens_after_threshold_and_sheds() {
        let b = quick();
        for _ in 0..3 {
            assert!(b.admit().is_ok());
            b.on_failure();
        }
        assert_eq!(b.state(), BreakerState::Open);
        match b.admit() {
            Err(StoreError::Unavailable(_)) => {}
            other => panic!("open breaker must shed, got {other:?}"),
        }
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let b = quick();
        b.on_failure();
        b.on_failure();
        b.on_success();
        b.on_failure();
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let b = quick();
        for _ in 0..3 {
            b.on_failure();
        }
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.admit().is_ok(), "cooled-down breaker admits a probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(
            b.admit().is_err(),
            "second caller is shed while the probe is in flight"
        );
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit().is_ok());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = quick();
        for _ in 0..3 {
            b.on_failure();
        }
        std::thread::sleep(Duration::from_millis(40));
        assert!(b.admit().is_ok());
        b.on_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.admit().is_err(), "re-opened breaker sheds again");
    }

    #[test]
    fn gauge_mapping_is_stable() {
        assert_eq!(BreakerState::Closed.as_gauge(), 0);
        assert_eq!(BreakerState::Open.as_gauge(), 1);
        assert_eq!(BreakerState::HalfOpen.as_gauge(), 2);
    }
}
