//! A per-endpoint circuit breaker.
//!
//! When an endpoint is down, every attempt costs a full connect-or-timeout
//! round trip and a retry burst on top. The breaker converts that sustained
//! failure into fast local rejection: after `failure_threshold` consecutive
//! transport failures it *opens* and sheds calls instantly with
//! [`StoreError::Unavailable`]; after `cooldown` it goes *half-open* and
//! admits exactly one probe. A successful probe closes the breaker, a
//! failed one re-opens it for another cooldown.
//!
//! # Probe accounting under concurrency
//!
//! `admit()` returns a [`Permit`] that the caller hands back to exactly one
//! of `on_success` / `on_failure` / `on_abandon`. The permit records whether
//! this attempt *is* the half-open probe and the breaker generation it was
//! issued under. Only the probe permit of the current generation can close
//! a half-open breaker or re-open it; verdicts from other in-flight
//! requests (admitted earlier, while the breaker was still closed) are
//! ignored for state transitions. Without this, a hedged read — two
//! in-flight requests per logical op — could have its slow loser complete
//! during the half-open window and be miscounted as the probe's verdict.
//!
//! `on_abandon` releases a probe slot without recording a verdict: the
//! hedge loser was cancelled, not failed, so the next caller may probe.

use kvapi::StoreError;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Clone, Debug, PartialEq)]
pub struct BreakerPolicy {
    /// Consecutive transport failures before the breaker opens.
    pub failure_threshold: u32,
    /// How long to shed calls before admitting a half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerPolicy {
    fn default() -> BreakerPolicy {
        BreakerPolicy {
            failure_threshold: 5,
            cooldown: Duration::from_secs(5),
        }
    }
}

/// Observable breaker state. The numeric mapping (`as_gauge`) is what the
/// obs gauge `resilience_breaker_state` exports: 0 closed, 1 open, 2
/// half-open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    Closed,
    Open,
    HalfOpen,
}

impl BreakerState {
    pub fn as_gauge(self) -> i64 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// Proof of admission returned by [`CircuitBreaker::admit`]. Hand it back
/// to exactly one of `on_success` / `on_failure` / `on_abandon`.
///
/// The permit is `Copy` so a caller can stash it across a spawned hedge
/// attempt; the generation check makes a stale permit harmless.
#[derive(Clone, Copy, Debug)]
pub struct Permit {
    probe: bool,
    generation: u64,
}

impl Permit {
    /// True when this attempt holds the single half-open probe slot.
    pub fn is_probe(&self) -> bool {
        self.probe
    }
}

struct Inner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    probe_in_flight: bool,
    /// Bumped on every state transition; probe verdicts from an older
    /// generation are ignored.
    generation: u64,
}

impl Inner {
    fn transition(&mut self, to: BreakerState) {
        self.state = to;
        self.generation = self.generation.wrapping_add(1);
    }
}

/// The breaker itself. One instance per endpoint, shared by every request
/// to that endpoint.
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    pub fn new(policy: BreakerPolicy) -> CircuitBreaker {
        CircuitBreaker {
            policy,
            inner: Mutex::new(Inner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                probe_in_flight: false,
                generation: 0,
            }),
        }
    }

    pub fn state(&self) -> BreakerState {
        lock(&self.inner).state
    }

    /// Gate one attempt. `Ok(permit)` admits it — the caller *must* then
    /// report the permit to `on_success`, `on_failure`, or `on_abandon`;
    /// `Err(Unavailable)` sheds it without touching the network.
    ///
    /// When the breaker is open and cooled down, the admitted attempt
    /// becomes the single half-open probe (`permit.is_probe()`).
    pub fn admit(&self) -> Result<Permit, StoreError> {
        let mut inner = lock(&self.inner);
        match inner.state {
            BreakerState::Closed => Ok(Permit {
                probe: false,
                generation: inner.generation,
            }),
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .map(|at| at.elapsed() >= self.policy.cooldown)
                    .unwrap_or(true);
                if cooled {
                    inner.transition(BreakerState::HalfOpen);
                    inner.probe_in_flight = true;
                    Ok(Permit {
                        probe: true,
                        generation: inner.generation,
                    })
                } else {
                    Err(StoreError::Unavailable("circuit breaker open".into()))
                }
            }
            BreakerState::HalfOpen => {
                if inner.probe_in_flight {
                    Err(StoreError::Unavailable(
                        "circuit breaker half-open, probe in flight".into(),
                    ))
                } else {
                    inner.probe_in_flight = true;
                    Ok(Permit {
                        probe: true,
                        generation: inner.generation,
                    })
                }
            }
        }
    }

    /// Report a successful (or healthily-rejected) attempt.
    pub fn on_success(&self, permit: Permit) {
        let mut inner = lock(&self.inner);
        match inner.state {
            BreakerState::Closed => {
                inner.consecutive_failures = 0;
            }
            BreakerState::HalfOpen => {
                if permit.probe && permit.generation == inner.generation {
                    inner.transition(BreakerState::Closed);
                    inner.consecutive_failures = 0;
                    inner.opened_at = None;
                    inner.probe_in_flight = false;
                }
                // A non-probe success (admitted before the breaker opened)
                // is stale evidence: leave the probe to decide.
            }
            BreakerState::Open => {}
        }
    }

    /// Report a transport failure.
    pub fn on_failure(&self, permit: Permit) {
        let mut inner = lock(&self.inner);
        match inner.state {
            BreakerState::HalfOpen => {
                // Only the probe's own failure re-opens; a concurrent
                // non-probe request failing late must not be recorded as
                // the probe's verdict.
                if permit.probe && permit.generation == inner.generation {
                    inner.probe_in_flight = false;
                    inner.transition(BreakerState::Open);
                    inner.opened_at = Some(Instant::now());
                }
            }
            BreakerState::Closed => {
                inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
                if inner.consecutive_failures >= self.policy.failure_threshold {
                    inner.transition(BreakerState::Open);
                    inner.opened_at = Some(Instant::now());
                }
            }
            BreakerState::Open => {}
        }
    }

    /// The attempt was abandoned without a verdict — e.g. a hedge loser
    /// cancelled after the other leg won. Releases the probe slot (so the
    /// next caller may probe) but never counts as a probe failure and
    /// never transitions state.
    pub fn on_abandon(&self, permit: Permit) {
        let mut inner = lock(&self.inner);
        if permit.probe
            && permit.generation == inner.generation
            && inner.state == BreakerState::HalfOpen
        {
            inner.probe_in_flight = false;
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CircuitBreaker {
        CircuitBreaker::new(BreakerPolicy {
            failure_threshold: 3,
            cooldown: Duration::from_millis(30),
        })
    }

    fn fail_once(b: &CircuitBreaker) {
        let p = b.admit().expect("closed breaker admits");
        b.on_failure(p);
    }

    #[test]
    fn opens_after_threshold_and_sheds() {
        let b = quick();
        for _ in 0..3 {
            fail_once(&b);
        }
        assert_eq!(b.state(), BreakerState::Open);
        match b.admit() {
            Err(StoreError::Unavailable(_)) => {}
            other => panic!("open breaker must shed, got {other:?}"),
        }
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let b = quick();
        fail_once(&b);
        fail_once(&b);
        let p = b.admit().unwrap();
        b.on_success(p);
        fail_once(&b);
        fail_once(&b);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let b = quick();
        for _ in 0..3 {
            fail_once(&b);
        }
        std::thread::sleep(Duration::from_millis(40));
        let probe = b.admit().expect("cooled-down breaker admits a probe");
        assert!(probe.is_probe());
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(
            b.admit().is_err(),
            "second caller is shed while the probe is in flight"
        );
        b.on_success(probe);
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit().is_ok());
    }

    #[test]
    fn failed_probe_reopens() {
        let b = quick();
        for _ in 0..3 {
            fail_once(&b);
        }
        std::thread::sleep(Duration::from_millis(40));
        let probe = b.admit().unwrap();
        b.on_failure(probe);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.admit().is_err(), "re-opened breaker sheds again");
    }

    #[test]
    fn late_non_probe_failure_is_not_a_probe_verdict() {
        let b = quick();
        // A slow request admitted while closed...
        let slow = b.admit().unwrap();
        assert!(!slow.is_probe());
        // ...then the endpoint degrades: threshold failures open the breaker.
        for _ in 0..3 {
            fail_once(&b);
        }
        std::thread::sleep(Duration::from_millis(40));
        let probe = b.admit().unwrap();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // The slow request now fails. It must not re-open the breaker or
        // steal the probe slot.
        b.on_failure(slow);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.admit().is_err(), "probe slot still held by the probe");
        b.on_success(probe);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn late_non_probe_success_does_not_close_half_open() {
        let b = quick();
        let slow = b.admit().unwrap();
        for _ in 0..3 {
            fail_once(&b);
        }
        std::thread::sleep(Duration::from_millis(40));
        let probe = b.admit().unwrap();
        // The slow pre-open request succeeds late: stale evidence, the
        // probe still decides.
        b.on_success(slow);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_failure(probe);
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn abandoned_probe_releases_slot_without_verdict() {
        let b = quick();
        for _ in 0..3 {
            fail_once(&b);
        }
        std::thread::sleep(Duration::from_millis(40));
        let probe = b.admit().unwrap();
        assert!(b.admit().is_err());
        // Hedge loser: cancelled, not failed.
        b.on_abandon(probe);
        assert_eq!(
            b.state(),
            BreakerState::HalfOpen,
            "abandon is not a failure: breaker must not re-open"
        );
        let probe2 = b.admit().expect("released slot admits the next probe");
        assert!(probe2.is_probe());
        b.on_success(probe2);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn abandon_of_non_probe_is_a_no_op() {
        let b = quick();
        let p = b.admit().unwrap();
        b.on_abandon(p);
        assert_eq!(b.state(), BreakerState::Closed);
        // Failure counting unaffected.
        for _ in 0..3 {
            fail_once(&b);
        }
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn stale_probe_verdict_from_prior_generation_is_ignored() {
        let b = quick();
        for _ in 0..3 {
            fail_once(&b);
        }
        std::thread::sleep(Duration::from_millis(40));
        let probe1 = b.admit().unwrap();
        b.on_failure(probe1); // re-opens, bumps generation
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(40));
        let probe2 = b.admit().unwrap();
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // A duplicate report of the dead probe must not close the breaker.
        b.on_success(probe1);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_success(probe2);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn gauge_mapping_is_stable() {
        assert_eq!(BreakerState::Closed.as_gauge(), 0);
        assert_eq!(BreakerState::Open.as_gauge(), 1);
        assert_eq!(BreakerState::HalfOpen.as_gauge(), 2);
    }
}
