//! Total per-request budgets, and a stream wrapper that enforces them at
//! every socket operation.
//!
//! Per-socket-op timeouts bound each *syscall*, not the *request*: a peer
//! that dribbles one byte per `read` makes progress on every call and can
//! hold a request hostage for `ops × timeout` — effectively forever. A
//! [`Deadline`] is the fix: one budget fixed at request start, and every
//! subsequent connect/read/write is given only the time that remains.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A fixed point in time by which the whole request must finish.
#[derive(Clone, Copy, Debug)]
pub struct Deadline {
    end: Instant,
}

impl Deadline {
    /// A deadline `budget` from now.
    pub fn within(budget: Duration) -> Deadline {
        Deadline {
            end: Instant::now() + budget,
        }
    }

    /// A deadline at an absolute point in time.
    pub fn at(end: Instant) -> Deadline {
        Deadline { end }
    }

    /// The absolute point in time this deadline expires.
    pub fn instant(&self) -> Instant {
        self.end
    }

    /// Time left, or `None` once the deadline has passed.
    pub fn remaining(&self) -> Option<Duration> {
        let now = Instant::now();
        if now >= self.end {
            None
        } else {
            Some(self.end - now)
        }
    }

    /// Has the deadline passed?
    pub fn expired(&self) -> bool {
        self.remaining().is_none()
    }
}

/// The deadline cell shared between a client and the [`DeadlineStream`]s of
/// its pooled connections.
///
/// Connections outlive requests, so the stream cannot own the deadline: the
/// client *arms* the shared cell at the start of each request and every
/// socket op on every connection it touches honours it. While disarmed
/// (between requests) the stream falls back to its per-op timeout.
#[derive(Clone, Default)]
pub struct SharedDeadline(Arc<Mutex<Option<Deadline>>>);

impl SharedDeadline {
    pub fn new() -> SharedDeadline {
        SharedDeadline::default()
    }

    /// Arm for the current request.
    pub fn arm(&self, deadline: Deadline) {
        *lock(&self.0) = Some(deadline);
    }

    /// Disarm after the request completes.
    pub fn disarm(&self) {
        *lock(&self.0) = None;
    }

    /// Budget for the next socket op: `Ok(None)` when disarmed, the
    /// remaining time when armed, or `TimedOut` when armed and expired.
    fn op_budget(&self) -> io::Result<Option<Duration>> {
        match *lock(&self.0) {
            None => Ok(None),
            Some(d) => match d.remaining() {
                Some(rem) => Ok(Some(rem)),
                None => Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "request deadline exceeded",
                )),
            },
        }
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A `TcpStream` whose every read/write is bounded by the remaining request
/// budget in a [`SharedDeadline`].
///
/// Before each syscall the socket timeout is re-armed from what is left of
/// the deadline, so no matter how slowly the peer dribbles bytes the
/// request as a whole cannot exceed its budget. When no deadline is armed,
/// `fallback` (a per-op timeout) applies.
pub struct DeadlineStream {
    inner: TcpStream,
    deadline: SharedDeadline,
    fallback: Duration,
}

/// Socket timeouts must be non-zero (`set_read_timeout(Some(ZERO))` is an
/// error), so an almost-spent budget is clamped up to this floor; the
/// deadline check on the *next* op still catches true expiry.
const MIN_OP_TIMEOUT: Duration = Duration::from_millis(1);

impl DeadlineStream {
    /// Connect within `min(connect_timeout, remaining deadline budget)` and
    /// wrap the stream. `TCP_NODELAY` is set: every protocol here is
    /// request/response, where Nagle only adds latency.
    pub fn connect(
        addr: SocketAddr,
        connect_timeout: Duration,
        fallback: Duration,
        deadline: SharedDeadline,
    ) -> io::Result<DeadlineStream> {
        let budget = match deadline.op_budget()? {
            Some(rem) => connect_timeout.min(rem).max(MIN_OP_TIMEOUT),
            None => connect_timeout,
        };
        let stream = TcpStream::connect_timeout(&addr, budget)?;
        stream.set_nodelay(true)?;
        Ok(DeadlineStream {
            inner: stream,
            deadline,
            fallback,
        })
    }

    /// Clone the stream handle (shared socket, shared deadline) — the usual
    /// split into a buffered reader half and writer half.
    pub fn try_clone(&self) -> io::Result<DeadlineStream> {
        Ok(DeadlineStream {
            inner: self.inner.try_clone()?,
            deadline: self.deadline.clone(),
            fallback: self.fallback,
        })
    }

    /// Re-arm the socket timeouts for the next op from the shared deadline
    /// (or the fallback). Fails with `TimedOut` once the deadline passed.
    fn arm_socket(&self) -> io::Result<()> {
        let budget = match self.deadline.op_budget()? {
            Some(rem) => rem.max(MIN_OP_TIMEOUT),
            None => self.fallback,
        };
        self.inner.set_read_timeout(Some(budget))?;
        self.inner.set_write_timeout(Some(budget))?;
        Ok(())
    }

    /// Normalize the platform's "socket timeout" error kinds (`WouldBlock`
    /// on Unix, `TimedOut` on Windows) so callers see one kind.
    fn normalize(e: io::Error) -> io::Error {
        if e.kind() == io::ErrorKind::WouldBlock {
            io::Error::new(io::ErrorKind::TimedOut, "socket operation timed out")
        } else {
            e
        }
    }
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.arm_socket()?;
        self.inner.read(buf).map_err(Self::normalize)
    }
}

impl Write for DeadlineStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.arm_socket()?;
        self.inner.write(buf).map_err(Self::normalize)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush().map_err(Self::normalize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};
    use std::net::TcpListener;

    #[test]
    fn deadline_counts_down_and_expires() {
        let d = Deadline::within(Duration::from_millis(40));
        assert!(!d.expired());
        let rem = d.remaining().expect("fresh deadline has budget");
        assert!(rem <= Duration::from_millis(40));
        std::thread::sleep(Duration::from_millis(50));
        assert!(d.expired());
        assert!(d.remaining().is_none());
    }

    #[test]
    fn shared_deadline_arms_and_disarms() {
        let sd = SharedDeadline::new();
        assert!(sd.op_budget().expect("disarmed is ok").is_none());
        sd.arm(Deadline::within(Duration::from_secs(5)));
        assert!(sd.op_budget().expect("armed with budget").is_some());
        sd.arm(Deadline::within(Duration::ZERO));
        assert_eq!(
            sd.op_budget().expect_err("expired").kind(),
            io::ErrorKind::TimedOut
        );
        sd.disarm();
        assert!(sd.op_budget().expect("disarmed again").is_none());
    }

    /// The slow-loris scenario: a server that sends one byte then goes
    /// silent must not hold a read beyond the armed deadline, even though
    /// the first byte "made progress".
    #[test]
    fn dribbling_peer_cannot_outlive_the_deadline() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            s.write_all(b"x").expect("dribble one byte");
            // Hold the connection open, silently, long past the deadline.
            std::thread::sleep(Duration::from_millis(400));
        });

        let sd = SharedDeadline::new();
        sd.arm(Deadline::within(Duration::from_millis(80)));
        let stream =
            DeadlineStream::connect(addr, Duration::from_secs(1), Duration::from_secs(1), sd)
                .expect("connect");
        let started = Instant::now();
        let mut line = String::new();
        let err = BufReader::new(stream)
            .read_line(&mut line)
            .expect_err("read past the dribbled byte must time out");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert!(
            started.elapsed() < Duration::from_millis(300),
            "deadline bounded the read, not the peer"
        );
        server.join().expect("server thread");
    }
}
