//! # resilience — deadlines, backoff, circuit breaking
//!
//! The native store clients originally handled failure with one blind
//! immediate retry on a fresh connection, bounded only by per-socket-op
//! timeouts (and wildly different ones: 120 s for cloudstore, 10 s for
//! miniredis, 30 s for minisql). This crate replaces all of that with one
//! policy-driven failure budget shared by every client:
//!
//! * [`Deadline`] / [`DeadlineStream`] — a total per-request budget threaded
//!   through connect, read and write, immune to slow-loris byte dribble;
//! * [`RetryPolicy`] — bounded exponential backoff with decorrelated
//!   jitter, applied only to transient failures of idempotent operations;
//! * [`CircuitBreaker`] — per-endpoint fast-fail once an endpoint is
//!   provably down, with a half-open probe to detect recovery;
//! * [`IdlePool`] — connection reuse that ages out idle sockets instead of
//!   handing callers a connection the server already closed.
//!
//! [`Resilience`] bundles these behind two entry points: [`Resilience::
//! run_idempotent`] for operations safe to replay, and
//! [`Resilience::run_once`] for operations that must execute at most once
//! (these still get the deadline and the breaker — just never a retry,
//! composing with the `exec_once` / `frame_sent` replay guards downstream).

#![forbid(unsafe_code)]

pub mod breaker;
pub mod deadline;
pub mod pool;
pub mod retry;

pub use breaker::{BreakerPolicy, BreakerState, CircuitBreaker, Permit};
pub use deadline::{Deadline, DeadlineStream, SharedDeadline};
pub use pool::IdlePool;
pub use retry::RetryPolicy;

use kvapi::{Result, StoreError};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// One failure budget for every store client.
///
/// The previous per-client socket timeouts (cloudstore 120 s, miniredis
/// 10 s, minisql 30 s) made cross-store workload sweeps incomparable: the
/// same outage cost each store a different amount of wall clock. The
/// default here — a 30 s total request budget — is what every native
/// client now inherits.
#[derive(Clone, Debug)]
pub struct ResiliencePolicy {
    /// Total wall-clock budget for one logical request, covering connect,
    /// all socket I/O, and any backoff sleeps and retries within it.
    pub request_timeout: Duration,
    /// Per-attempt cap on TCP connect (further clamped by the deadline).
    pub connect_timeout: Duration,
    /// Retry schedule for transient failures of idempotent operations.
    pub retry: RetryPolicy,
    /// Per-endpoint circuit breaker tuning.
    pub breaker: BreakerPolicy,
    /// Max pooled idle connections per endpoint.
    pub max_idle: usize,
    /// Idle age beyond which a pooled connection is presumed dead.
    pub max_idle_age: Duration,
    /// Seed for backoff jitter (deterministic tests).
    pub seed: u64,
}

impl Default for ResiliencePolicy {
    fn default() -> ResiliencePolicy {
        ResiliencePolicy {
            request_timeout: Duration::from_secs(30),
            connect_timeout: Duration::from_secs(5),
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            max_idle: 16,
            max_idle_age: Duration::from_secs(60),
            seed: 0x5e11_1e5e,
        }
    }
}

impl ResiliencePolicy {
    /// A tight-budget profile for tests: short deadline, fast backoff,
    /// quick breaker cooldown.
    pub fn test_profile() -> ResiliencePolicy {
        ResiliencePolicy {
            request_timeout: Duration::from_secs(2),
            connect_timeout: Duration::from_millis(500),
            retry: RetryPolicy {
                max_attempts: 3,
                base: Duration::from_millis(5),
                cap: Duration::from_millis(50),
            },
            breaker: BreakerPolicy {
                failure_threshold: 3,
                cooldown: Duration::from_millis(100),
            },
            max_idle: 4,
            max_idle_age: Duration::from_secs(10),
            seed: 0x7e57,
        }
    }
}

/// Policy plus live state (breaker, jitter RNG, counters) for one endpoint.
///
/// Clients hold one `Resilience` per endpoint and route every request
/// through [`run_idempotent`](Self::run_idempotent) or
/// [`run_once`](Self::run_once).
pub struct Resilience {
    policy: ResiliencePolicy,
    breaker: CircuitBreaker,
    rng: Mutex<SmallRng>,
    retries: AtomicU64,
    breaker_rejections: AtomicU64,
    deadline_expiries: AtomicU64,
}

impl Resilience {
    pub fn new(policy: ResiliencePolicy) -> Resilience {
        let breaker = CircuitBreaker::new(policy.breaker.clone());
        let rng = Mutex::new(SmallRng::seed_from_u64(policy.seed));
        Resilience {
            policy,
            breaker,
            rng,
            retries: AtomicU64::new(0),
            breaker_rejections: AtomicU64::new(0),
            deadline_expiries: AtomicU64::new(0),
        }
    }

    pub fn policy(&self) -> &ResiliencePolicy {
        &self.policy
    }

    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// Retry attempts performed (beyond first attempts) since creation.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Calls shed by the circuit breaker without touching the network.
    pub fn breaker_rejections(&self) -> u64 {
        self.breaker_rejections.load(Ordering::Relaxed)
    }

    /// Requests that exhausted their total deadline.
    pub fn deadline_expiries(&self) -> u64 {
        self.deadline_expiries.load(Ordering::Relaxed)
    }

    /// Run an idempotent operation: breaker-gated, deadline-bounded, and
    /// retried with backoff on transient failure.
    ///
    /// `f` is called with the request deadline (arm it on the connection's
    /// [`SharedDeadline`]) and the 1-based attempt number.
    pub fn run_idempotent<T>(&self, mut f: impl FnMut(&Deadline, u32) -> Result<T>) -> Result<T> {
        self.run(true, move |deadline, attempt, _guard| f(deadline, attempt))
    }

    /// Run a non-idempotent operation: breaker-gated and deadline-bounded,
    /// but **never retried** — at-most-once is the caller's contract.
    pub fn run_once<T>(&self, f: impl FnOnce(&Deadline) -> Result<T>) -> Result<T> {
        let mut f = Some(f);
        self.run(false, |deadline, _attempt, _guard| {
            // Only reachable once: with idempotent=false, run() never
            // re-invokes after a failure.
            match f.take() {
                Some(f) => f(deadline),
                None => Err(StoreError::Other("run_once invoked twice".into())),
            }
        })
    }

    /// Run an operation whose replay safety is decided *during* the attempt:
    /// retried like [`run_idempotent`](Self::run_idempotent) until the
    /// closure calls [`ReplayGuard::poison`], after which a failure is final.
    ///
    /// This is the `frame_sent` contract: a statement that may already have
    /// reached (and been executed by) the server must not be replayed, but a
    /// failure *before* the request left the client is always safe to retry.
    pub fn run_guarded<T>(
        &self,
        f: impl FnMut(&Deadline, u32, &ReplayGuard) -> Result<T>,
    ) -> Result<T> {
        self.run(true, f)
    }

    fn run<T>(
        &self,
        idempotent: bool,
        mut f: impl FnMut(&Deadline, u32, &ReplayGuard) -> Result<T>,
    ) -> Result<T> {
        let deadline = Deadline::within(self.policy.request_timeout);
        let guard = ReplayGuard::default();
        let mut prev_sleep = self.policy.retry.base;
        let mut attempt: u32 = 0;
        loop {
            attempt += 1;
            let pre_admit = self.breaker.state();
            let permit = match self.breaker.admit() {
                Ok(p) => p,
                Err(e) => {
                    self.note_transition(pre_admit);
                    obs::ctx::report_event("breaker", "shed");
                    self.breaker_rejections.fetch_add(1, Ordering::Relaxed);
                    return Err(e);
                }
            };
            self.note_transition(pre_admit);
            let err = match f(&deadline, attempt, &guard) {
                Ok(v) => {
                    let pre = self.breaker.state();
                    self.breaker.on_success(permit);
                    self.note_transition(pre);
                    return Ok(v);
                }
                Err(e) => e,
            };
            // Only transport-level failures count against the endpoint's
            // health: a server that answers — even with a rejection or a
            // malformed reply — is reachable.
            let pre = self.breaker.state();
            if err.is_transient() {
                self.breaker.on_failure(permit);
            } else {
                self.breaker.on_success(permit);
            }
            self.note_transition(pre);
            if deadline.expired() {
                obs::ctx::report_event("deadline", "expired");
                self.deadline_expiries.fetch_add(1, Ordering::Relaxed);
                return Err(StoreError::Timeout);
            }
            let out_of_attempts = attempt >= self.policy.retry.max_attempts.max(1);
            if !idempotent || guard.poisoned() || !err.is_transient() || out_of_attempts {
                return Err(err);
            }
            let sleep = {
                let mut rng = lock(&self.rng);
                self.policy.retry.backoff(prev_sleep, &mut rng)
            };
            prev_sleep = sleep;
            match deadline.remaining() {
                Some(remaining) => {
                    let backoff = sleep.min(remaining);
                    obs::ctx::report_event(
                        "retry",
                        format!(
                            "attempt={} backoff_ms={}",
                            attempt.saturating_add(1),
                            backoff.as_millis()
                        ),
                    );
                    std::thread::sleep(backoff);
                }
                None => {
                    obs::ctx::report_event("deadline", "expired");
                    self.deadline_expiries.fetch_add(1, Ordering::Relaxed);
                    return Err(StoreError::Timeout);
                }
            }
            self.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Report a breaker state change (if any since `before`) as a trace
    /// event into the active context scope.
    fn note_transition(&self, before: BreakerState) {
        let now = self.breaker.state();
        if now != before {
            obs::ctx::report_event(
                "breaker",
                format!("{}→{}", state_label(before), state_label(now)),
            );
        }
    }

    /// Publish retry/breaker/deadline counters and the breaker state gauge
    /// to `reg`, labelled by endpoint.
    pub fn publish(&self, reg: &obs::Registry, endpoint: &str) {
        let labels = &[("endpoint", endpoint)];
        reg.counter("resilience_retries_total", labels)
            .set(self.retries());
        reg.counter("resilience_breaker_rejections_total", labels)
            .set(self.breaker_rejections());
        reg.counter("resilience_deadline_expiries_total", labels)
            .set(self.deadline_expiries());
        reg.gauge("resilience_breaker_state", labels)
            .set(self.breaker.state().as_gauge());
    }
}

/// Replay-safety latch handed to [`Resilience::run_guarded`] closures.
///
/// Starts clean; the closure poisons it the moment the request may have
/// produced a server-side effect (e.g. the frame was flushed to the wire).
/// Once poisoned, the surrounding retry loop treats every failure as final.
#[derive(Default)]
pub struct ReplayGuard {
    poisoned: std::cell::Cell<bool>,
}

impl ReplayGuard {
    /// Mark the in-flight request as possibly applied — no replay after this.
    pub fn poison(&self) {
        self.poisoned.set(true);
    }

    /// Has replay been ruled out?
    pub fn poisoned(&self) -> bool {
        self.poisoned.get()
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn state_label(s: BreakerState) -> &'static str {
    match s {
        BreakerState::Closed => "closed",
        BreakerState::Open => "open",
        BreakerState::HalfOpen => "half-open",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn res() -> Resilience {
        Resilience::new(ResiliencePolicy::test_profile())
    }

    #[test]
    fn idempotent_retries_transient_failures() {
        let r = res();
        let calls = AtomicU32::new(0);
        let out = r.run_idempotent(|_d, attempt| {
            calls.fetch_add(1, Ordering::Relaxed);
            if attempt < 3 {
                Err(StoreError::Closed)
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out.expect("third attempt succeeds"), 3);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(r.retries(), 2);
    }

    #[test]
    fn non_transient_errors_are_not_retried() {
        let r = res();
        let calls = AtomicU32::new(0);
        let out: Result<()> = r.run_idempotent(|_d, _a| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(StoreError::Protocol("bad frame".into()))
        });
        assert!(matches!(out, Err(StoreError::Protocol(_))));
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(r.retries(), 0);
    }

    #[test]
    fn run_once_never_replays() {
        let r = res();
        let calls = AtomicU32::new(0);
        let out: Result<()> = r.run_once(|_d| {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(StoreError::Closed)
        });
        assert!(matches!(out, Err(StoreError::Closed)));
        assert_eq!(calls.load(Ordering::Relaxed), 1, "at most once");
    }

    #[test]
    fn guarded_run_retries_until_poisoned() {
        // Attempt 1 fails before "sending" → retried. Attempt 2 poisons the
        // guard (frame on the wire) then fails → final, no third attempt.
        let r = res();
        let calls = AtomicU32::new(0);
        let out: Result<()> = r.run_guarded(|_d, attempt, guard| {
            calls.fetch_add(1, Ordering::Relaxed);
            if attempt >= 2 {
                guard.poison();
            }
            Err(StoreError::Closed)
        });
        assert!(matches!(out, Err(StoreError::Closed)));
        assert_eq!(calls.load(Ordering::Relaxed), 2, "no replay once poisoned");
        assert_eq!(r.retries(), 1);
    }

    #[test]
    fn breaker_opens_then_sheds_then_recovers() {
        let r = res();
        for _ in 0..3 {
            let _: Result<()> = r.run_once(|_d| Err(StoreError::Closed));
        }
        assert_eq!(r.breaker().state(), BreakerState::Open);
        let shed: Result<()> = r.run_once(|_d| Ok(()));
        assert!(
            matches!(shed, Err(StoreError::Unavailable(_))),
            "open breaker sheds without calling f"
        );
        assert_eq!(r.breaker_rejections(), 1);
        std::thread::sleep(Duration::from_millis(120));
        let probed = r.run_once(|_d| Ok(42));
        assert_eq!(probed.expect("half-open probe admitted"), 42);
        assert_eq!(r.breaker().state(), BreakerState::Closed);
    }

    #[test]
    fn rejections_by_server_do_not_trip_the_breaker() {
        let r = res();
        for _ in 0..10 {
            let _: Result<()> = r.run_once(|_d| Err(StoreError::Rejected("no".into())));
        }
        assert_eq!(r.breaker().state(), BreakerState::Closed);
    }

    #[test]
    fn exhausted_deadline_reports_timeout() {
        let mut policy = ResiliencePolicy::test_profile();
        policy.request_timeout = Duration::from_millis(30);
        policy.retry.max_attempts = 100;
        let r = Resilience::new(policy);
        let started = std::time::Instant::now();
        let out: Result<()> = r.run_idempotent(|_d, _a| {
            std::thread::sleep(Duration::from_millis(10));
            Err(StoreError::Closed)
        });
        assert!(matches!(out, Err(StoreError::Timeout)));
        assert!(r.deadline_expiries() >= 1);
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "deadline bounds the whole retry loop"
        );
    }

    #[test]
    fn retry_and_breaker_events_reach_the_active_trace_scope() {
        let r = res();
        let scope = obs::ctx::activate(obs::ctx::TraceContext::new_root());
        // Three transient failures: two retries scheduled, breaker trips.
        let _: Result<()> = r.run_idempotent(|_d, _a| Err(StoreError::Closed));
        // A fourth call is shed by the now-open breaker.
        let _: Result<()> = r.run_idempotent(|_d, _a| Ok(()));
        let data = scope.finish();
        let retries: Vec<&str> = data
            .events
            .iter()
            .filter(|(_, n, _)| n == "retry")
            .map(|(_, _, d)| d.as_str())
            .collect();
        assert_eq!(retries.len(), 2, "{:?}", data.events);
        assert!(
            retries[0].starts_with("attempt=2 backoff_ms="),
            "{retries:?}"
        );
        assert!(
            retries[1].starts_with("attempt=3 backoff_ms="),
            "{retries:?}"
        );
        assert!(
            data.events
                .iter()
                .any(|(_, n, d)| n == "breaker" && d == "closed→open"),
            "{:?}",
            data.events
        );
        assert!(
            data.events
                .iter()
                .any(|(_, n, d)| n == "breaker" && d == "shed"),
            "{:?}",
            data.events
        );
    }

    #[test]
    fn deadline_expiry_emits_event() {
        let mut policy = ResiliencePolicy::test_profile();
        policy.request_timeout = Duration::from_millis(20);
        policy.retry.max_attempts = 100;
        let r = Resilience::new(policy);
        let scope = obs::ctx::activate(obs::ctx::TraceContext::new_root());
        let _: Result<()> = r.run_idempotent(|_d, _a| {
            std::thread::sleep(Duration::from_millis(10));
            Err(StoreError::Closed)
        });
        let data = scope.finish();
        assert!(
            data.events
                .iter()
                .any(|(_, n, d)| n == "deadline" && d == "expired"),
            "{:?}",
            data.events
        );
    }

    #[test]
    fn publish_exports_counters_and_state() {
        let r = res();
        let _: Result<()> = r.run_idempotent(|_d, a| {
            if a < 2 {
                Err(StoreError::Closed)
            } else {
                Ok(())
            }
        });
        let reg = obs::Registry::new();
        r.publish(&reg, "store-a");
        let text = reg.render_prometheus();
        assert!(text.contains("resilience_retries_total{endpoint=\"store-a\"} 1"));
        assert!(text.contains("resilience_breaker_state{endpoint=\"store-a\"} 0"));
    }
}
