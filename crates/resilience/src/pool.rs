//! Idle-aware connection pooling.
//!
//! Servers, load balancers and NATs silently drop connections that sit idle
//! past their timeout. A pool that hands such a connection out anyway
//! condemns the first request to a doomed round trip (write succeeds into
//! the kernel buffer, read hits EOF) before the retry path opens a fresh
//! one. [`IdlePool`] ages entries at checkout instead: anything idle longer
//! than `max_idle_age` is dropped on the floor, so callers only ever see
//! connections young enough to plausibly still be open.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

struct Idle<T> {
    conn: T,
    since: Instant,
}

/// A LIFO pool of at most `max_idle` connections, each discarded once it
/// has sat unused for `max_idle_age`.
pub struct IdlePool<T> {
    conns: Mutex<Vec<Idle<T>>>,
    max_idle: usize,
    max_idle_age: Duration,
    aged_out: AtomicU64,
}

impl<T> IdlePool<T> {
    pub fn new(max_idle: usize, max_idle_age: Duration) -> IdlePool<T> {
        IdlePool {
            conns: Mutex::new(Vec::new()),
            max_idle,
            max_idle_age,
            aged_out: AtomicU64::new(0),
        }
    }

    /// Most recently used connection that is still young enough, if any.
    ///
    /// LIFO order means the entry at the back is the freshest; once it is
    /// over age, everything beneath it is older still, so the whole pool is
    /// drained in one pass.
    pub fn checkout(&self) -> Option<T> {
        let mut conns = lock(&self.conns);
        let now = Instant::now();
        while let Some(idle) = conns.pop() {
            if now.duration_since(idle.since) <= self.max_idle_age {
                return Some(idle.conn);
            }
            let stale = conns.len() + 1;
            self.aged_out.fetch_add(stale as u64, Ordering::Relaxed);
            conns.clear();
        }
        None
    }

    /// Return a healthy connection; dropped instead if the pool is full.
    pub fn checkin(&self, conn: T) {
        let mut conns = lock(&self.conns);
        if conns.len() < self.max_idle {
            conns.push(Idle {
                conn,
                since: Instant::now(),
            });
        }
    }

    /// Drop everything (e.g. after the endpoint was declared dead).
    pub fn clear(&self) {
        lock(&self.conns).clear();
    }

    /// Currently pooled connections.
    pub fn len(&self) -> usize {
        lock(&self.conns).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Connections discarded for exceeding `max_idle_age`.
    pub fn aged_out(&self) -> u64 {
        self.aged_out.load(Ordering::Relaxed)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_reuse_and_capacity() {
        let pool = IdlePool::new(2, Duration::from_secs(60));
        pool.checkin(1);
        pool.checkin(2);
        pool.checkin(3); // over capacity, dropped
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.checkout(), Some(2), "most recently used first");
        assert_eq!(pool.checkout(), Some(1));
        assert_eq!(pool.checkout(), None);
    }

    #[test]
    fn aged_connections_are_dropped_at_checkout() {
        let pool = IdlePool::new(8, Duration::from_millis(20));
        pool.checkin("old");
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(
            pool.checkout(),
            None,
            "aged-out conn must not be handed out"
        );
        assert_eq!(pool.aged_out(), 1);
        pool.checkin("fresh");
        assert_eq!(pool.checkout(), Some("fresh"));
    }

    #[test]
    fn one_stale_head_drains_the_older_tail() {
        let pool = IdlePool::new(8, Duration::from_millis(20));
        pool.checkin("oldest");
        pool.checkin("old");
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(pool.checkout(), None);
        assert_eq!(pool.aged_out(), 2, "both entries counted");
        assert!(pool.is_empty());
    }

    #[test]
    fn clear_empties_the_pool() {
        let pool = IdlePool::new(8, Duration::from_secs(60));
        pool.checkin(1);
        pool.clear();
        assert_eq!(pool.checkout(), None);
    }
}
