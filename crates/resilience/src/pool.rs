//! Idle-aware connection pooling.
//!
//! Servers, load balancers and NATs silently drop connections that sit idle
//! past their timeout. A pool that hands such a connection out anyway
//! condemns the first request to a doomed round trip (write succeeds into
//! the kernel buffer, read hits EOF) before the retry path opens a fresh
//! one. [`IdlePool`] ages entries at checkout instead: anything idle longer
//! than `max_idle_age` is dropped on the floor, so callers only ever see
//! connections young enough to plausibly still be open.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Idle<T> {
    conn: T,
    since: Instant,
    /// Live request count for entries that are *handles to a shared
    /// connection* (multiplexing) rather than exclusively owned sockets.
    /// `None` for plain entries. An entry whose counter is non-zero is
    /// carrying traffic right now and is never aged out: "idle time" is a
    /// per-socket concept, and a multiplexed socket with requests in
    /// flight is not idle no matter how long ago it was checked in.
    in_flight: Option<Arc<AtomicUsize>>,
}

impl<T> Idle<T> {
    fn busy(&self) -> bool {
        self.in_flight
            .as_ref()
            .is_some_and(|c| c.load(Ordering::Relaxed) > 0)
    }
}

/// A LIFO pool of at most `max_idle` connections, each discarded once it
/// has sat unused for `max_idle_age`.
pub struct IdlePool<T> {
    conns: Mutex<Vec<Idle<T>>>,
    max_idle: usize,
    max_idle_age: Duration,
    aged_out: AtomicU64,
}

impl<T> IdlePool<T> {
    pub fn new(max_idle: usize, max_idle_age: Duration) -> IdlePool<T> {
        IdlePool {
            conns: Mutex::new(Vec::new()),
            max_idle,
            max_idle_age,
            aged_out: AtomicU64::new(0),
        }
    }

    /// Most recently used connection that is still young enough — or still
    /// busy — if any.
    ///
    /// LIFO order means the entry at the back is the freshest; stale idle
    /// entries beneath it are aged out one by one on the way down. Entries
    /// checked in via [`IdlePool::checkin_shared`] with requests in flight
    /// are exempt from aging: a multiplexed connection carrying traffic is
    /// alive by definition, however long ago it was checked in.
    pub fn checkout(&self) -> Option<T> {
        let mut conns = lock(&self.conns);
        let now = Instant::now();
        while let Some(idle) = conns.pop() {
            if idle.busy() || now.duration_since(idle.since) <= self.max_idle_age {
                return Some(idle.conn);
            }
            self.aged_out.fetch_add(1, Ordering::Relaxed);
        }
        None
    }

    /// Return a healthy connection; dropped instead if the pool is full.
    pub fn checkin(&self, conn: T) {
        self.insert(conn, None);
    }

    /// Return a handle to a *shared* (multiplexed) connection, with
    /// `in_flight` tracking its live request count. While the counter is
    /// non-zero the entry is never aged out at checkout — per-socket idle
    /// aging must not sever a connection other requests are riding.
    pub fn checkin_shared(&self, conn: T, in_flight: Arc<AtomicUsize>) {
        self.insert(conn, Some(in_flight));
    }

    fn insert(&self, conn: T, in_flight: Option<Arc<AtomicUsize>>) {
        let mut conns = lock(&self.conns);
        if conns.len() < self.max_idle {
            conns.push(Idle {
                conn,
                since: Instant::now(),
                in_flight,
            });
        }
    }

    /// Drop everything (e.g. after the endpoint was declared dead).
    pub fn clear(&self) {
        lock(&self.conns).clear();
    }

    /// Currently pooled connections.
    pub fn len(&self) -> usize {
        lock(&self.conns).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Connections discarded for exceeding `max_idle_age`.
    pub fn aged_out(&self) -> u64 {
        self.aged_out.load(Ordering::Relaxed)
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_reuse_and_capacity() {
        let pool = IdlePool::new(2, Duration::from_secs(60));
        pool.checkin(1);
        pool.checkin(2);
        pool.checkin(3); // over capacity, dropped
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.checkout(), Some(2), "most recently used first");
        assert_eq!(pool.checkout(), Some(1));
        assert_eq!(pool.checkout(), None);
    }

    #[test]
    fn aged_connections_are_dropped_at_checkout() {
        let pool = IdlePool::new(8, Duration::from_millis(20));
        pool.checkin("old");
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(
            pool.checkout(),
            None,
            "aged-out conn must not be handed out"
        );
        assert_eq!(pool.aged_out(), 1);
        pool.checkin("fresh");
        assert_eq!(pool.checkout(), Some("fresh"));
    }

    #[test]
    fn one_stale_head_drains_the_older_tail() {
        let pool = IdlePool::new(8, Duration::from_millis(20));
        pool.checkin("oldest");
        pool.checkin("old");
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(pool.checkout(), None);
        assert_eq!(pool.aged_out(), 2, "both entries counted");
        assert!(pool.is_empty());
    }

    #[test]
    fn clear_empties_the_pool() {
        let pool = IdlePool::new(8, Duration::from_secs(60));
        pool.checkin(1);
        pool.clear();
        assert_eq!(pool.checkout(), None);
    }

    /// Regression: a multiplexed connection handle with requests in flight
    /// must never be aged out, no matter how stale its checkin time — and
    /// a stale idle entry sitting *under* a busy one must still age out
    /// without taking the busy entry with it.
    #[test]
    fn busy_shared_connections_are_never_aged_out() {
        let pool = IdlePool::new(8, Duration::from_millis(20));
        let load = Arc::new(AtomicUsize::new(1));
        pool.checkin("plain-stale");
        pool.checkin_shared("mux-busy", load.clone());
        std::thread::sleep(Duration::from_millis(40));
        // LIFO: the busy mux handle is on top; it is over age but carrying
        // a request, so it comes back instead of being dropped.
        assert_eq!(pool.checkout(), Some("mux-busy"));
        assert_eq!(pool.aged_out(), 0, "busy entry must not count as aged");
        // The plain stale entry beneath it still ages out normally.
        assert_eq!(pool.checkout(), None);
        assert_eq!(pool.aged_out(), 1);
        // Once the last in-flight request completes the handle is subject
        // to normal aging again.
        pool.checkin_shared("mux-idle", load.clone());
        load.store(0, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(40));
        assert_eq!(pool.checkout(), None, "quiesced mux handle ages out");
        assert_eq!(pool.aged_out(), 2);
    }
}
