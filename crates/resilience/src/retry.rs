//! Bounded exponential backoff with decorrelated jitter.
//!
//! Synchronized retries are how one hiccup becomes a retry storm: if every
//! client sleeps the same deterministic `base * 2^n`, they all return at
//! once. Decorrelated jitter (the AWS Architecture Blog variant) draws each
//! sleep uniformly from `[base, prev * 3]` and clamps to a cap, spreading
//! retries in time while still growing the envelope exponentially.

use rand::rngs::SmallRng;
use rand::Rng;
use std::time::Duration;

/// How many times to try, and how long to sleep between tries.
#[derive(Clone, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (`1` means never retry).
    pub max_attempts: u32,
    /// Lower bound and growth seed for backoff sleeps.
    pub base: Duration,
    /// Upper bound on a single backoff sleep.
    pub cap: Duration,
}

impl RetryPolicy {
    /// Never retry; the single attempt still gets deadline + breaker.
    pub fn no_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base: Duration::ZERO,
            cap: Duration::ZERO,
        }
    }

    /// Next backoff sleep: `min(cap, uniform(base, prev * 3))`, where
    /// `prev` is what this function returned last time (pass `base` before
    /// the first retry).
    pub fn backoff(&self, prev: Duration, rng: &mut SmallRng) -> Duration {
        let base = self.base.min(self.cap);
        let hi = prev
            .checked_mul(3)
            .unwrap_or(self.cap)
            .clamp(base, self.cap.max(base));
        if hi <= base {
            return base;
        }
        let span = (hi - base).as_nanos() as u64;
        base + Duration::from_nanos(rng.gen_range(0..=span))
    }
}

impl Default for RetryPolicy {
    /// Three attempts, 25 ms base, 1 s cap — two quick retries that stay
    /// well inside the default 30 s request budget.
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn backoff_stays_within_base_and_cap() {
        let p = RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(200),
        };
        let mut rng = SmallRng::seed_from_u64(11);
        let mut prev = p.base;
        for _ in 0..200 {
            let s = p.backoff(prev, &mut rng);
            assert!(s >= p.base, "sleep {s:?} below base");
            assert!(s <= p.cap, "sleep {s:?} above cap");
            prev = s;
        }
    }

    #[test]
    fn backoff_is_jittered_not_constant() {
        let p = RetryPolicy::default();
        let mut rng = SmallRng::seed_from_u64(5);
        let sleeps: Vec<Duration> = (0..16).map(|_| p.backoff(p.base, &mut rng)).collect();
        let distinct: std::collections::HashSet<_> = sleeps.iter().collect();
        assert!(
            distinct.len() > 1,
            "decorrelated jitter must vary: {sleeps:?}"
        );
    }

    #[test]
    fn no_retry_is_single_attempt() {
        let p = RetryPolicy::no_retry();
        assert_eq!(p.max_attempts, 1);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(p.backoff(p.base, &mut rng), Duration::ZERO);
    }
}
