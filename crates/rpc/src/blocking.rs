//! The pooled blocking-socket transport.

use kvapi::{Framer, RpcSender, SendOptions, StoreError, Transport};
use resilience::{Deadline, DeadlineStream, IdlePool, ResiliencePolicy, SharedDeadline};
use std::io::{Read, Write};
use std::net::SocketAddr;
use std::sync::Arc;

/// One pooled, deadline-bounded blocking socket per in-flight request.
///
/// This is the transport every client in the workspace historically
/// hard-wired, extracted behind [`RpcSender`]: checkout (or open) a
/// [`DeadlineStream`], arm the request deadline, write the framed request,
/// read until the [`Framer`] delimits one reply, check the socket back in.
/// Concurrency comes from sockets — N parallel requests occupy N
/// connections and N blocked threads.
pub struct BlockingSender {
    addr: SocketAddr,
    policy: ResiliencePolicy,
    framer: Arc<dyn Framer>,
    pool: IdlePool<BlockConn>,
}

struct BlockConn {
    stream: DeadlineStream,
    deadline: SharedDeadline,
}

impl BlockingSender {
    pub fn new(addr: SocketAddr, policy: ResiliencePolicy, framer: Arc<dyn Framer>) -> Self {
        let pool = IdlePool::new(policy.max_idle, policy.max_idle_age);
        BlockingSender {
            addr,
            policy,
            framer,
            pool,
        }
    }

    /// Number of idle pooled sockets, for introspection in tests.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    fn deadline_for(&self, opts: &SendOptions<'_>) -> Deadline {
        match opts.deadline {
            Some(at) => Deadline::at(at),
            None => Deadline::within(self.policy.request_timeout),
        }
    }

    fn open(&self, deadline: &Deadline) -> kvapi::Result<BlockConn> {
        let shared = SharedDeadline::new();
        shared.arm(*deadline);
        let stream = DeadlineStream::connect(
            self.addr,
            self.policy.connect_timeout,
            self.policy.request_timeout,
            shared.clone(),
        )?;
        Ok(BlockConn {
            stream,
            deadline: shared,
        })
    }

    fn lease(&self, opts: &SendOptions<'_>, deadline: &Deadline) -> kvapi::Result<BlockConn> {
        let pooled = if opts.fresh_conn {
            None
        } else {
            self.pool.checkout()
        };
        match pooled {
            Some(conn) => {
                conn.deadline.arm(*deadline);
                Ok(conn)
            }
            None => self.open(deadline),
        }
    }

    /// Read from `conn` into `buf` until the framer delimits one reply,
    /// then split it off the front (pipelined replies ride back-to-back).
    fn read_reply(
        &self,
        conn: &mut BlockConn,
        buf: &mut Vec<u8>,
        opts: &SendOptions<'_>,
    ) -> kvapi::Result<Vec<u8>> {
        let mut scratch = [0u8; 16 * 1024];
        loop {
            if let Some(len) = self.framer.scan_reply(buf, &opts.meta) {
                let rest = buf.split_off(len.min(buf.len()));
                let frame = std::mem::replace(buf, rest);
                return Ok(frame);
            }
            let n = conn.stream.read(&mut scratch)?;
            if n == 0 {
                return Err(StoreError::Closed);
            }
            buf.extend_from_slice(scratch.get(..n).unwrap_or_default());
        }
    }

    fn exchange(
        &self,
        conn: &mut BlockConn,
        reqs: &[&[u8]],
        opts: &SendOptions<'_>,
    ) -> kvapi::Result<Vec<Vec<u8>>> {
        // `sent()` fires after the *first* request hits the wire: from
        // that point the server may have executed a prefix of the batch,
        // so replay guards must trip even if a later write fails.
        for (i, req) in reqs.iter().enumerate() {
            conn.stream.write_all(req)?;
            if i == 0 {
                conn.stream.flush()?;
                opts.sent();
            }
        }
        conn.stream.flush()?;
        let mut buf = Vec::new();
        let mut replies = Vec::with_capacity(reqs.len());
        for _ in reqs {
            replies.push(self.read_reply(conn, &mut buf, opts)?);
        }
        Ok(replies)
    }

    fn run(&self, reqs: &[&[u8]], opts: &SendOptions<'_>) -> kvapi::Result<Vec<Vec<u8>>> {
        let deadline = self.deadline_for(opts);
        let mut conn = self.lease(opts, &deadline)?;
        let result = self.exchange(&mut conn, reqs, opts);
        conn.deadline.disarm();
        if result.is_ok() {
            // A connection that just failed mid-exchange is in an unknown
            // protocol state; only clean ones go back to the pool.
            self.pool.checkin(conn);
        }
        result
    }
}

impl RpcSender for BlockingSender {
    fn transport(&self) -> Transport {
        Transport::Blocking
    }

    fn send(&self, req: &[u8], opts: &SendOptions<'_>) -> kvapi::Result<Vec<u8>> {
        let mut replies = self.run(&[req], opts)?;
        replies.pop().ok_or(StoreError::Closed)
    }

    fn send_pipelined(
        &self,
        reqs: &[Vec<u8>],
        opts: &SendOptions<'_>,
    ) -> kvapi::Result<Vec<Vec<u8>>> {
        let refs: Vec<&[u8]> = reqs.iter().map(Vec::as_slice).collect();
        self.run(&refs, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{echo_server, frame, TinyFramer};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::time::{Duration, Instant};

    fn sender(addr: SocketAddr) -> BlockingSender {
        BlockingSender::new(addr, ResiliencePolicy::test_profile(), Arc::new(TinyFramer))
    }

    #[test]
    fn echoes_one_frame_and_pools_the_socket() {
        let (addr, conns) = echo_server();
        let s = sender(addr);
        let req = frame(7, b"hello");
        let reply = s.send(&req, &SendOptions::default()).expect("echo");
        assert_eq!(reply, req);
        assert_eq!(s.pooled(), 1, "socket returned to the pool");
        let reply2 = s.send(&req, &SendOptions::default()).expect("echo again");
        assert_eq!(reply2, req);
        assert_eq!(
            conns.load(Ordering::SeqCst),
            1,
            "second send reused the socket"
        );
    }

    #[test]
    fn fresh_conn_bypasses_the_pool() {
        let (addr, conns) = echo_server();
        let s = sender(addr);
        s.send(&frame(1, b"a"), &SendOptions::default())
            .expect("seed the pool");
        let opts = SendOptions {
            fresh_conn: true,
            ..SendOptions::default()
        };
        s.send(&frame(2, b"b"), &opts).expect("fresh send");
        assert_eq!(
            conns.load(Ordering::SeqCst),
            2,
            "fresh_conn opened a new socket"
        );
    }

    #[test]
    fn pipelined_replies_come_back_positionally() {
        let (addr, conns) = echo_server();
        let s = sender(addr);
        let reqs = vec![frame(1, b"one"), frame(2, b"two"), frame(3, b"three")];
        let replies = s
            .send_pipelined(&reqs, &SendOptions::default())
            .expect("pipeline");
        assert_eq!(replies, reqs);
        assert_eq!(
            conns.load(Ordering::SeqCst),
            1,
            "one socket carried the batch"
        );
    }

    #[test]
    fn on_sent_fires_after_flush() {
        let (addr, _) = echo_server();
        let s = sender(addr);
        let fired = AtomicUsize::new(0);
        let hook = || {
            fired.fetch_add(1, Ordering::SeqCst);
        };
        let opts = SendOptions {
            on_sent: Some(&hook),
            ..SendOptions::default()
        };
        s.send(&frame(9, b"x"), &opts).expect("send");
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn silent_server_times_out_at_the_deadline() {
        // A listener that accepts and never replies.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let _held = listener.accept();
            std::thread::sleep(Duration::from_secs(2));
        });
        let s = sender(addr);
        let opts = SendOptions {
            deadline: Some(Instant::now() + Duration::from_millis(80)),
            ..SendOptions::default()
        };
        let started = Instant::now();
        let err = s
            .send(&frame(1, b"never"), &opts)
            .expect_err("must time out");
        assert!(err.is_transient(), "timeout must be retryable, got {err:?}");
        assert!(
            started.elapsed() < Duration::from_millis(800),
            "deadline bounded the wait"
        );
    }
}
