//! # rpc — transports for the `kvapi` RPC surface
//!
//! The protocol clients (`minisql`, `miniredis`, `cloudstore`) describe
//! *what* to send through [`kvapi::Framer`] and consume replies as framed
//! bytes; this crate supplies the *how* — the two [`kvapi::RpcSender`]
//! implementations they can be constructed over:
//!
//! * [`BlockingSender`] — the classic strategy: one socket per in-flight
//!   request, checked out of a [`resilience::IdlePool`], every byte moved
//!   by the calling thread under a [`resilience::SharedDeadline`].
//! * [`MuxSender`] — the event-driven strategy: all requests interleave on
//!   one shared connection owned by a client-side [`reactor`] thread,
//!   matched back to callers by correlation id (or strict FIFO order for
//!   requests without one). Callers park on a completion slot, not on a
//!   socket, so thousands of logical requests need one fd and one
//!   background thread rather than a thread each.
//!
//! Both senders speak through the same [`kvapi::Framer`], so a protocol
//! client is transport-agnostic: it builds request bytes, picks a sender,
//! and decodes whatever framed reply comes back.

mod blocking;
mod mux;

pub use blocking::BlockingSender;
pub use mux::MuxSender;

use std::sync::Mutex;

/// Lock helper: these locks guard pure data, so a poisoned lock (a caller
/// panicked mid-update elsewhere) is still safe to read through.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod testutil {
    use kvapi::{Framer, ReplyMeta};
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpListener};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    /// Test protocol: `[u8 len][u8 id][len payload bytes]`, echoed back
    /// verbatim by the test server. The one-byte `id` doubles as the
    /// correlation slot.
    pub struct TinyFramer;

    impl Framer for TinyFramer {
        fn scan_reply(&self, buf: &[u8], _meta: &ReplyMeta) -> Option<usize> {
            let len = *buf.first()? as usize;
            let total = len.checked_add(2)?;
            (buf.len() >= total).then_some(total)
        }
        fn reply_id(&self, frame: &[u8]) -> Option<u64> {
            frame.get(1).map(|&id| u64::from(id))
        }
    }

    /// Encode one tiny-protocol frame.
    pub fn frame(id: u64, payload: &[u8]) -> Vec<u8> {
        let mut f = vec![payload.len() as u8, id as u8];
        f.extend_from_slice(payload);
        f
    }

    /// An echo server for the tiny protocol. Each accepted connection is
    /// served by its own thread (the *test double* may block; the code
    /// under test must not). Returns the address and a connection counter.
    pub fn echo_server() -> (SocketAddr, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let conns = Arc::new(AtomicUsize::new(0));
        let counter = conns.clone();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { break };
                counter.fetch_add(1, Ordering::SeqCst);
                std::thread::spawn(move || {
                    let mut buf = [0u8; 512];
                    loop {
                        match stream.read(&mut buf) {
                            Ok(0) | Err(_) => break,
                            Ok(n) => {
                                if stream.write_all(buf.get(..n).unwrap_or_default()).is_err() {
                                    break;
                                }
                            }
                        }
                    }
                });
            }
        });
        (addr, conns)
    }
}
