//! The reactor-driven multiplexed transport.

use crate::lock;
use kvapi::{Framer, ReplyMeta, RpcSender, SendOptions, StoreError, Transport};
use reactor::{ConnHandler, ConnId, Handle, Outbox, Reactor, ReactorThread};
use resilience::{Deadline, IdlePool, ResiliencePolicy};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Many in-flight requests interleaved on one shared connection, driven by
/// a client-side [`Reactor`] thread.
///
/// Each request registers a pending entry (correlation id, reply-framing
/// meta, completion), hands its bytes to the event loop, and parks on the
/// completion — not on a socket. The loop's [`ConnHandler`] delimits
/// replies with the protocol's [`Framer`] in strict server order and
/// completes entries by echoed correlation id (falling back to FIFO order
/// for replies without one). One fd and one background thread carry any
/// number of logical requests.
///
/// Failure semantics, which the chaos suites pin down:
///
/// * The connection dying — peer reset, server `drop_connections()`,
///   reactor shutdown — fails **every** in-flight request exactly once
///   with [`StoreError::Closed`] (the entries are drained under one lock,
///   so no request is failed twice or missed).
/// * A request whose deadline passes abandons its entry but leaves a
///   tombstone in reply order, so the late reply is still framed correctly
///   and discarded instead of being matched to a later request.
/// * `fresh_conn` retries get a dedicated connection: on a shared socket
///   "give me an unpolluted connection" must not sever the requests other
///   callers have in flight.
pub struct MuxSender {
    addr: SocketAddr,
    policy: ResiliencePolicy,
    framer: Arc<dyn Framer>,
    reactor: Mutex<Option<ReactorThread>>,
    /// Slot for the one shared connection handle. Checked in via
    /// [`IdlePool::checkin_shared`] with the live-request counter, so idle
    /// aging can never sever a connection carrying traffic.
    pool: IdlePool<MuxConn>,
    next_id: AtomicU64,
}

/// A cloneable handle to one multiplexed connection.
#[derive(Clone)]
struct MuxConn {
    id: ConnId,
    handle: Handle,
    state: Arc<MuxState>,
}

#[derive(Default)]
struct MuxState {
    pending: Mutex<PendingMap>,
    /// Live (non-abandoned) request count, shared with the idle pool.
    in_flight: Arc<AtomicUsize>,
    /// Set (under the `pending` lock) when the connection died; late
    /// registrations fail fast instead of parking forever.
    closed: AtomicBool,
}

#[derive(Default)]
struct PendingMap {
    /// Correlation ids in send order — the order the server will reply in.
    fifo: VecDeque<u64>,
    map: HashMap<u64, Waiter>,
}

enum Waiter {
    /// A caller parked on a completion slot.
    Sync {
        meta: ReplyMeta,
        slot: Arc<SyncSlot>,
    },
    /// A callback to run with the reply (from the reactor thread).
    Async {
        meta: ReplyMeta,
        done: Box<dyn FnOnce(kvapi::Result<Vec<u8>>) + Send>,
    },
    /// Timed out locally. The tombstone keeps its place in reply order so
    /// the late reply is framed with the right meta and discarded, rather
    /// than matched to whoever sent next.
    Abandoned { meta: ReplyMeta },
}

impl Waiter {
    fn meta(&self) -> ReplyMeta {
        match self {
            Waiter::Sync { meta, .. } | Waiter::Async { meta, .. } | Waiter::Abandoned { meta } => {
                *meta
            }
        }
    }
}

#[derive(Default)]
struct SyncSlot {
    cell: Mutex<Option<kvapi::Result<Vec<u8>>>>,
    cv: Condvar,
}

impl MuxState {
    /// Deliver `res` to a waiter taken out of the pending map. Runs with
    /// the `pending` lock released: an async `done` may itself send.
    fn complete(waiter: Waiter, res: kvapi::Result<Vec<u8>>, in_flight: &AtomicUsize) {
        match waiter {
            Waiter::Sync { slot, .. } => {
                in_flight.fetch_sub(1, Ordering::SeqCst);
                *lock(&slot.cell) = Some(res);
                slot.cv.notify_all();
            }
            Waiter::Async { done, .. } => {
                in_flight.fetch_sub(1, Ordering::SeqCst);
                done(res);
            }
            Waiter::Abandoned { .. } => {}
        }
    }

    /// The connection died: fail everything in flight, exactly once.
    fn fail_all(&self) {
        let drained: Vec<Waiter> = {
            let mut p = lock(&self.pending);
            self.closed.store(true, Ordering::SeqCst);
            p.fifo.clear();
            p.map.drain().map(|(_, w)| w).collect()
        };
        for waiter in drained {
            MuxState::complete(waiter, Err(StoreError::Closed), &self.in_flight);
        }
    }
}

/// The per-connection state machine run on the reactor thread.
struct MuxHandler {
    framer: Arc<dyn Framer>,
    state: Arc<MuxState>,
}

impl ConnHandler for MuxHandler {
    fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut Outbox) {
        loop {
            let taken = {
                let mut p = lock(&self.state.pending);
                let Some(&front) = p.fifo.front() else {
                    // Bytes with nothing in flight: the server broke the
                    // protocol. Sever; on_close cleans up.
                    if !inbuf.is_empty() {
                        out.close();
                    }
                    return;
                };
                // Frame with the oldest unreplied request's meta — replies
                // come back in FIFO order on one connection.
                let meta = p.map.get(&front).map(Waiter::meta).unwrap_or_default();
                let Some(len) = self.framer.scan_reply(inbuf, &meta) else {
                    return;
                };
                let frame: Vec<u8> = inbuf.drain(..len.min(inbuf.len())).collect();
                // Match by echoed correlation id when the reply carries
                // one we know; otherwise strict FIFO.
                let id = match self.framer.reply_id(&frame) {
                    Some(id) if p.map.contains_key(&id) => id,
                    _ => front,
                };
                p.fifo.retain(|&q| q != id);
                (frame, p.map.remove(&id))
            };
            let (frame, waiter) = taken;
            if let Some(waiter) = waiter {
                MuxState::complete(waiter, Ok(frame), &self.state.in_flight);
            }
        }
    }

    fn on_close(&mut self) {
        self.state.fail_all();
    }
}

impl MuxSender {
    pub fn new(addr: SocketAddr, policy: ResiliencePolicy, framer: Arc<dyn Framer>) -> Self {
        let pool = IdlePool::new(1, policy.max_idle_age);
        MuxSender {
            addr,
            policy,
            framer,
            reactor: Mutex::new(None),
            pool,
            next_id: AtomicU64::new(1),
        }
    }

    fn alloc_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::Relaxed)
    }

    fn deadline_for(&self, opts: &SendOptions<'_>) -> Deadline {
        match opts.deadline {
            Some(at) => Deadline::at(at),
            None => Deadline::within(self.policy.request_timeout),
        }
    }

    /// The (lazily spawned) client-side event loop.
    fn reactor_handle(&self) -> kvapi::Result<Handle> {
        let mut guard = lock(&self.reactor);
        let live = guard.as_ref().is_some_and(|rt| rt.handle().is_live());
        if !live {
            *guard = Some(Reactor::new()?.spawn());
        }
        guard
            .as_ref()
            .map(ReactorThread::handle)
            .ok_or(StoreError::Closed)
    }

    fn connect(&self, deadline: &Deadline) -> kvapi::Result<MuxConn> {
        let budget = deadline
            .remaining()
            .ok_or(StoreError::Timeout)?
            .min(self.policy.connect_timeout)
            .max(Duration::from_millis(1));
        let stream = TcpStream::connect_timeout(&self.addr, budget)?;
        let state = Arc::new(MuxState::default());
        let handle = self.reactor_handle()?;
        let id = handle.add_connection(
            stream,
            Box::new(MuxHandler {
                framer: self.framer.clone(),
                state: state.clone(),
            }),
        );
        Ok(MuxConn { id, handle, state })
    }

    /// The shared connection (reconnecting if it died), or a dedicated one
    /// for `fresh_conn` retries. Returns `(conn, dedicated)`.
    fn lease(&self, fresh: bool, deadline: &Deadline) -> kvapi::Result<(MuxConn, bool)> {
        if fresh {
            return Ok((self.connect(deadline)?, true));
        }
        if let Some(conn) = self.pool.checkout() {
            if !conn.state.closed.load(Ordering::SeqCst) && conn.handle.is_live() {
                // Put the handle straight back so concurrent callers share
                // it; the live-request counter rides along for aging.
                self.pool
                    .checkin_shared(conn.clone(), conn.state.in_flight.clone());
                return Ok((conn, false));
            }
        }
        let conn = self.connect(deadline)?;
        self.pool
            .checkin_shared(conn.clone(), conn.state.in_flight.clone());
        Ok((conn, false))
    }

    fn register_sync(
        &self,
        conn: &MuxConn,
        id: u64,
        meta: ReplyMeta,
    ) -> kvapi::Result<Arc<SyncSlot>> {
        let slot = Arc::new(SyncSlot::default());
        let mut p = lock(&conn.state.pending);
        if conn.state.closed.load(Ordering::SeqCst) {
            return Err(StoreError::Closed);
        }
        p.fifo.push_back(id);
        p.map.insert(
            id,
            Waiter::Sync {
                meta,
                slot: slot.clone(),
            },
        );
        conn.state.in_flight.fetch_add(1, Ordering::SeqCst);
        Ok(slot)
    }

    /// Replace a still-waiting entry with a tombstone (deadline ran out).
    /// False when the entry is gone or already being completed — the
    /// caller should collect the imminent result instead. Only safe from
    /// the parked caller itself (it does not complete the slot); external
    /// cancellation goes through [`RpcSender::abandon`].
    fn tombstone(&self, conn: &MuxConn, id: u64) -> bool {
        let mut p = lock(&conn.state.pending);
        match p.map.get_mut(&id) {
            Some(w) if !matches!(w, Waiter::Abandoned { .. }) => {
                let meta = w.meta();
                *w = Waiter::Abandoned { meta };
                conn.state.in_flight.fetch_sub(1, Ordering::SeqCst);
                true
            }
            _ => false,
        }
    }

    fn wait(
        &self,
        conn: &MuxConn,
        id: u64,
        slot: &Arc<SyncSlot>,
        deadline: &Deadline,
    ) -> kvapi::Result<Vec<u8>> {
        let mut cell = lock(&slot.cell);
        loop {
            if let Some(res) = cell.take() {
                return res;
            }
            let Some(rem) = deadline.remaining() else {
                drop(cell);
                if self.tombstone(conn, id) {
                    return Err(StoreError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "request deadline exceeded",
                    )));
                }
                // Completion is in flight on another thread; collect it.
                cell = lock(&slot.cell);
                if cell.is_none() {
                    cell = slot
                        .cv
                        .wait_timeout(cell, Duration::from_millis(1))
                        .map(|(g, _)| g)
                        .unwrap_or_else(|poisoned| poisoned.into_inner().0);
                }
                continue;
            };
            cell = slot
                .cv
                .wait_timeout(cell, rem)
                .map(|(g, _)| g)
                .unwrap_or_else(|poisoned| poisoned.into_inner().0);
        }
    }
}

impl RpcSender for MuxSender {
    fn transport(&self) -> Transport {
        Transport::Multiplexed
    }

    fn next_correlation_id(&self) -> Option<u64> {
        Some(self.alloc_id())
    }

    fn send(&self, req: &[u8], opts: &SendOptions<'_>) -> kvapi::Result<Vec<u8>> {
        let deadline = self.deadline_for(opts);
        let (conn, dedicated) = self.lease(opts.fresh_conn, &deadline)?;
        let id = opts.correlation_id.unwrap_or_else(|| self.alloc_id());
        let registered = self.register_sync(&conn, id, opts.meta);
        let result = match registered {
            Ok(slot) => {
                conn.handle.send(conn.id, req.to_vec());
                opts.sent();
                self.wait(&conn, id, &slot, &deadline)
            }
            Err(e) => Err(e),
        };
        if dedicated {
            conn.handle.close(conn.id);
        }
        result
    }

    fn send_async(
        &self,
        req: Vec<u8>,
        opts: &SendOptions<'_>,
        done: Box<dyn FnOnce(kvapi::Result<Vec<u8>>) + Send + 'static>,
    ) {
        let deadline = self.deadline_for(opts);
        let (conn, dedicated) = match self.lease(opts.fresh_conn, &deadline) {
            Ok(leased) => leased,
            Err(e) => return done(Err(e)),
        };
        // A dedicated connection has no other users: close it once this
        // request completes (however it completes).
        let done: Box<dyn FnOnce(kvapi::Result<Vec<u8>>) + Send> = if dedicated {
            let handle = conn.handle.clone();
            let conn_id = conn.id;
            Box::new(move |res| {
                handle.close(conn_id);
                done(res);
            })
        } else {
            done
        };
        let id = opts.correlation_id.unwrap_or_else(|| self.alloc_id());
        {
            let mut p = lock(&conn.state.pending);
            if conn.state.closed.load(Ordering::SeqCst) {
                drop(p);
                return done(Err(StoreError::Closed));
            }
            p.fifo.push_back(id);
            p.map.insert(
                id,
                Waiter::Async {
                    meta: opts.meta,
                    done,
                },
            );
            conn.state.in_flight.fetch_add(1, Ordering::SeqCst);
        }
        conn.handle.send(conn.id, req);
        opts.sent();
        // Enforce the deadline from the loop: if the entry is still
        // pending when the budget runs out, fail it and leave a tombstone.
        let state = conn.state.clone();
        let rem = deadline.remaining().unwrap_or(Duration::ZERO);
        conn.handle.after(rem, move |_reactor| {
            let taken = {
                let mut p = lock(&state.pending);
                let meta = match p.map.get(&id) {
                    Some(w @ (Waiter::Sync { .. } | Waiter::Async { .. })) => Some(w.meta()),
                    _ => None,
                };
                meta.and_then(|m| p.map.insert(id, Waiter::Abandoned { meta: m }))
            };
            if let Some(waiter) = taken {
                MuxState::complete(
                    waiter,
                    Err(StoreError::Io(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "request deadline exceeded",
                    ))),
                    &state.in_flight,
                );
            }
        });
    }

    /// Interleave the batch on the shared connection: register and fire
    /// every request, then collect the replies positionally.
    fn send_pipelined(
        &self,
        reqs: &[Vec<u8>],
        opts: &SendOptions<'_>,
    ) -> kvapi::Result<Vec<Vec<u8>>> {
        let deadline = self.deadline_for(opts);
        let (conn, dedicated) = self.lease(opts.fresh_conn, &deadline)?;
        let mut waits = Vec::with_capacity(reqs.len());
        let mut setup_err = None;
        for req in reqs {
            let id = self.alloc_id();
            match self.register_sync(&conn, id, opts.meta) {
                Ok(slot) => {
                    conn.handle.send(conn.id, req.clone());
                    if waits.is_empty() {
                        // First request handed to the loop: past this
                        // point the server may have executed a prefix.
                        opts.sent();
                    }
                    waits.push((id, slot));
                }
                Err(e) => {
                    setup_err = Some(e);
                    break;
                }
            }
        }
        let mut replies = Vec::with_capacity(waits.len());
        let mut first_err = setup_err;
        for (id, slot) in &waits {
            match self.wait(&conn, *id, slot, &deadline) {
                Ok(frame) => replies.push(frame),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if dedicated {
            conn.handle.close(conn.id);
        }
        match first_err {
            None => Ok(replies),
            Some(e) => Err(e),
        }
    }

    /// Hedge-loss cancellation through the correlation table: take the
    /// loser's waiter out of the shared connection's pending map, leave an
    /// `Abandoned` tombstone in its reply-order slot (so the late reply is
    /// framed correctly and discarded), and complete the parked waiter
    /// immediately with a transient error. The winner's reply already
    /// answered the logical operation; the loser must not camp on its
    /// deadline.
    fn abandon(&self, correlation_id: u64) -> bool {
        let Some(conn) = self.pool.checkout() else {
            return false;
        };
        self.pool
            .checkin_shared(conn.clone(), conn.state.in_flight.clone());
        let taken = {
            let mut p = lock(&conn.state.pending);
            let meta = match p.map.get(&correlation_id) {
                Some(w @ (Waiter::Sync { .. } | Waiter::Async { .. })) => Some(w.meta()),
                _ => None,
            };
            meta.and_then(|m| p.map.insert(correlation_id, Waiter::Abandoned { meta: m }))
        };
        match taken {
            Some(waiter) => {
                MuxState::complete(
                    waiter,
                    Err(StoreError::Io(io::Error::new(
                        io::ErrorKind::Interrupted,
                        "abandoned: hedge winner already replied",
                    ))),
                    &conn.state.in_flight,
                );
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{echo_server, frame, TinyFramer};
    use std::time::Instant;

    fn sender(addr: SocketAddr) -> MuxSender {
        MuxSender::new(addr, ResiliencePolicy::test_profile(), Arc::new(TinyFramer))
    }

    #[test]
    fn concurrent_requests_share_one_connection() {
        let (addr, conns) = echo_server();
        let s = Arc::new(sender(addr));
        let mut threads = Vec::new();
        for i in 0..8u64 {
            let s = s.clone();
            threads.push(std::thread::spawn(move || {
                let id = s.next_correlation_id().expect("mux allocates ids");
                let req = frame(id, format!("payload-{i}").as_bytes());
                let opts = SendOptions {
                    correlation_id: Some(id),
                    ..SendOptions::default()
                };
                let reply = s.send(&req, &opts).expect("echo");
                assert_eq!(reply, req, "reply matched to the right request");
            }));
        }
        for t in threads {
            t.join().expect("worker");
        }
        assert_eq!(
            conns.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "eight concurrent requests rode one socket"
        );
    }

    #[test]
    fn fresh_conn_gets_a_dedicated_socket_and_shared_stays_up() {
        let (addr, conns) = echo_server();
        let s = sender(addr);
        s.send(&frame(1, b"seed"), &SendOptions::default())
            .expect("seed");
        let opts = SendOptions {
            fresh_conn: true,
            ..SendOptions::default()
        };
        s.send(&frame(2, b"retry"), &opts).expect("fresh send");
        assert_eq!(conns.load(std::sync::atomic::Ordering::SeqCst), 2);
        // The shared connection was not severed by the fresh one.
        s.send(&frame(3, b"after"), &SendOptions::default())
            .expect("shared again");
        assert_eq!(conns.load(std::sync::atomic::Ordering::SeqCst), 2);
    }

    #[test]
    fn pipelined_batch_interleaves_on_the_shared_connection() {
        let (addr, conns) = echo_server();
        let s = sender(addr);
        let reqs: Vec<Vec<u8>> = (1..=5u64).map(|i| frame(i, &[b'a' + i as u8])).collect();
        let replies = s
            .send_pipelined(&reqs, &SendOptions::default())
            .expect("pipeline");
        assert_eq!(replies, reqs);
        assert_eq!(conns.load(std::sync::atomic::Ordering::SeqCst), 1);
    }

    #[test]
    fn send_async_completes_from_the_loop_thread() {
        let (addr, _) = echo_server();
        let s = sender(addr);
        let slot = Arc::new(SyncSlot::default());
        let done_slot = slot.clone();
        let req = frame(4, b"async");
        s.send_async(
            req.clone(),
            &SendOptions::default(),
            Box::new(move |res| {
                *lock(&done_slot.cell) = Some(res);
                done_slot.cv.notify_all();
            }),
        );
        let mut cell = lock(&slot.cell);
        while cell.is_none() {
            cell = slot
                .cv
                .wait_timeout(cell, Duration::from_secs(2))
                .map(|(g, _)| g)
                .unwrap_or_else(|p| p.into_inner().0);
        }
        assert_eq!(cell.take().expect("completed").expect("echoed"), req);
    }

    #[test]
    fn deadline_abandons_but_late_replies_never_misroute() {
        // A server that swallows the first request entirely, then echoes
        // normally: the abandoned entry's tombstone must keep reply order
        // intact for the follow-up request.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            use std::io::{Read, Write};
            let (mut stream, _) = listener.accept().expect("accept");
            let mut buf = Vec::new();
            let mut chunk = [0u8; 256];
            // Swallow the first frame.
            let mut first: Option<usize> = None;
            loop {
                let n = match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => n,
                };
                buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
                if first.is_none() {
                    if let Some(&len) = buf.first() {
                        let total = len as usize + 2;
                        if buf.len() >= total {
                            buf.drain(..total);
                            first = Some(total);
                        }
                    }
                }
                if first.is_some() && !buf.is_empty() {
                    // Echo everything after the swallowed frame.
                    if stream.write_all(&buf).is_err() {
                        return;
                    }
                    buf.clear();
                }
            }
        });
        let s = sender(addr);
        let opts = SendOptions {
            deadline: Some(Instant::now() + Duration::from_millis(100)),
            ..SendOptions::default()
        };
        let err = s
            .send(&frame(1, b"swallowed"), &opts)
            .expect_err("times out");
        assert!(err.is_transient(), "timeout is retryable: {err:?}");
        // The follow-up request gets its own reply, not the dead one's.
        let req = frame(2, b"follow-up");
        let reply = s.send(&req, &SendOptions::default()).expect("follow-up");
        assert_eq!(reply, req);
    }

    #[test]
    fn connection_death_fails_all_in_flight_exactly_once() {
        // A server that accepts, reads a bit, then slams the connection.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            use std::io::Read;
            let (mut stream, _) = listener.accept().expect("accept");
            let mut chunk = [0u8; 64];
            let _ = stream.read(&mut chunk);
            std::thread::sleep(Duration::from_millis(50));
            drop(stream); // FIN; client reactor sees EOF and tears down
        });
        let s = Arc::new(sender(addr));
        let failures = Arc::new(AtomicU64::new(0));
        let mut threads = Vec::new();
        for i in 0..4u64 {
            let s = s.clone();
            let failures = failures.clone();
            threads.push(std::thread::spawn(move || {
                let err = s
                    .send(&frame(i + 1, b"doomed"), &SendOptions::default())
                    .expect_err("connection died");
                assert!(matches!(err, StoreError::Closed), "got {err:?}");
                failures.fetch_add(1, Ordering::SeqCst);
            }));
        }
        for t in threads {
            t.join().expect("worker");
        }
        assert_eq!(
            failures.load(Ordering::SeqCst),
            4,
            "every in-flight request failed exactly once"
        );
    }

    /// A server that swallows the first frame it reads, then echoes
    /// everything after it. The first request never gets a reply; later
    /// requests do.
    fn swallow_first_server() -> SocketAddr {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            use std::io::{Read, Write};
            let (mut stream, _) = listener.accept().expect("accept");
            let mut buf = Vec::new();
            let mut chunk = [0u8; 256];
            let mut swallowed = false;
            loop {
                let n = match stream.read(&mut chunk) {
                    Ok(0) | Err(_) => return,
                    Ok(n) => n,
                };
                buf.extend_from_slice(chunk.get(..n).unwrap_or_default());
                if !swallowed {
                    if let Some(&len) = buf.first() {
                        let total = len as usize + 2;
                        if buf.len() >= total {
                            buf.drain(..total);
                            swallowed = true;
                        }
                    }
                }
                if swallowed && !buf.is_empty() {
                    if stream.write_all(&buf).is_err() {
                        return;
                    }
                    buf.clear();
                }
            }
        });
        addr
    }

    /// Regression (fail-fast): shutting the client reactor down mid-flight
    /// must complete every parked waiter with a transient `Closed` error
    /// promptly — the reactor clock's shutdown control drives `on_close` →
    /// `fail_all` — never leaving them parked until the request deadline.
    #[test]
    fn reactor_shutdown_mid_flight_fails_fast_with_a_transient_error() {
        // Black-hole server: accepts and reads, never replies, keeps the
        // socket open so only the client-side teardown can end the wait.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            use std::io::Read;
            let (mut stream, _) = listener.accept().expect("accept");
            let mut chunk = [0u8; 256];
            while let Ok(n) = stream.read(&mut chunk) {
                if n == 0 {
                    return;
                }
            }
        });
        let s = Arc::new(sender(addr));
        let s2 = s.clone();
        let started = Instant::now();
        let parked = std::thread::spawn(move || {
            // A deadline far beyond what this test tolerates: if the error
            // comes back quickly it was fail-fast, not deadline expiry.
            let opts = SendOptions {
                deadline: Some(Instant::now() + Duration::from_secs(30)),
                ..SendOptions::default()
            };
            s2.send(&frame(1, b"parked"), &opts)
        });
        // Let the request reach the wire, then kill the client event loop.
        std::thread::sleep(Duration::from_millis(100));
        if let Some(rt) = lock(&s.reactor).as_mut() {
            rt.shutdown();
        }
        let err = parked
            .join()
            .expect("waiter thread")
            .expect_err("no reply possible");
        assert!(matches!(err, StoreError::Closed), "got {err:?}");
        assert!(err.is_transient(), "fail-fast error must be retryable");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "waiter parked for {:?} — not fail-fast",
            started.elapsed()
        );
    }

    /// Regression (fail-fast): handing a connection to a reactor that is
    /// already gone must deliver `on_close` synchronously, so the mux
    /// state is marked closed and registrations fail instead of parking.
    /// Before the fix the queued `AddConn` control was silently dropped
    /// and the handler never learned the loop was dead.
    #[test]
    fn adding_a_connection_to_a_dead_reactor_closes_the_handler() {
        let (addr, _) = echo_server();
        let mut rt = Reactor::new().expect("reactor").spawn();
        let handle = rt.handle();
        rt.shutdown();
        assert!(!handle.is_live());

        let stream = std::net::TcpStream::connect(addr).expect("connect");
        let state = Arc::new(MuxState::default());
        let _ = handle.add_connection(
            stream,
            Box::new(MuxHandler {
                framer: Arc::new(TinyFramer),
                state: state.clone(),
            }),
        );
        assert!(
            state.closed.load(Ordering::SeqCst),
            "dead loop must close the handler synchronously"
        );
    }

    /// The hedge-loss pattern end to end: the loser's parked waiter is
    /// completed promptly through the correlation table, its tombstone
    /// keeps reply order intact, and the connection stays usable.
    #[test]
    fn abandon_on_hedge_loss_unparks_the_loser_and_preserves_reply_order() {
        let addr = swallow_first_server();
        let s = Arc::new(sender(addr));
        let loser_id = s.next_correlation_id().expect("mux allocates ids");
        let s2 = s.clone();
        let started = Instant::now();
        let loser = std::thread::spawn(move || {
            let opts = SendOptions {
                correlation_id: Some(loser_id),
                deadline: Some(Instant::now() + Duration::from_secs(30)),
                ..SendOptions::default()
            };
            s2.send(&frame(loser_id, b"loser"), &opts)
        });
        // Let the loser register and reach the wire, then abandon it —
        // in the hedged-read flow this is the moment the other replica's
        // reply wins.
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            RpcSender::abandon(&*s, loser_id),
            "in-flight loser found and cancelled"
        );
        let err = loser
            .join()
            .expect("loser thread")
            .expect_err("abandoned leg must not succeed");
        assert!(err.is_transient(), "abandonment is retryable: {err:?}");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "loser parked for {:?} — abandon must unpark promptly",
            started.elapsed()
        );
        // Double-abandon reports too-late.
        assert!(!RpcSender::abandon(&*s, loser_id));
        // The shared connection still works and the follow-up gets its
        // own reply, not the loser's.
        let follow_id = s.next_correlation_id().expect("id");
        let req = frame(follow_id, b"follow-up");
        let opts = SendOptions {
            correlation_id: Some(follow_id),
            ..SendOptions::default()
        };
        let reply = s.send(&req, &opts).expect("follow-up");
        assert_eq!(reply, req);
    }

    #[test]
    fn reconnects_after_the_shared_connection_dies() {
        let (addr, conns) = echo_server();
        let s = sender(addr);
        s.send(&frame(1, b"a"), &SendOptions::default())
            .expect("first");
        // Kill the shared connection from the client side.
        {
            let checked_out = s.pool.checkout().expect("shared conn cached");
            checked_out.handle.close(checked_out.id);
            // Wait for the reactor to tear it down.
            let t0 = Instant::now();
            while !checked_out.state.closed.load(Ordering::SeqCst) {
                assert!(t0.elapsed() < Duration::from_secs(2), "close observed");
                std::thread::sleep(Duration::from_millis(5));
            }
        }
        s.send(&frame(2, b"b"), &SendOptions::default())
            .expect("reconnected");
        assert_eq!(conns.load(std::sync::atomic::Ordering::SeqCst), 2);
    }
}
