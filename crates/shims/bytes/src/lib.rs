//! Offline shim for the `bytes` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of the `bytes` API it actually uses: [`Bytes`], a
//! cheaply cloneable, immutable, reference-counted byte buffer. Cloning
//! shares the underlying allocation (the property the cache layer relies on
//! for zero-copy in-process reads).

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer (no allocation shared with anything).
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wrap a static slice. (The shim copies; the workspace only uses this
    /// for tiny test literals.)
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copy out into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Vec<u8> {
        b.to_vec()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self[..].cmp(&other[..])
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}
impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        *self == other[..]
    }
}
impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self[..] == **other
    }
}
impl PartialEq<Bytes> for &[u8] {
    fn eq(&self, other: &Bytes) -> bool {
        **self == other[..]
    }
}
impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}
impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self[..] == other[..]
    }
}
impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_allocation() {
        let a = Bytes::from(vec![1, 2, 3]);
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(a.as_ref().as_ptr(), b.as_ref().as_ptr());
    }

    #[test]
    fn equality_across_types() {
        let b = Bytes::copy_from_slice(b"abc");
        assert_eq!(b, &b"abc"[..]);
        assert_eq!(b, b"abc");
        assert_eq!(b, vec![97, 98, 99]);
        assert_eq!(&b[..1], b"a");
    }

    #[test]
    fn debug_is_readable() {
        let b = Bytes::from_static(b"a\x00");
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
