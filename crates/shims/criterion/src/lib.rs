//! Offline shim for `criterion`.
//!
//! Runs each benchmark for a bounded wall-clock budget and prints
//! mean/min/max per iteration (plus throughput when configured), writing a
//! line-oriented report to stdout. No statistical analysis, no HTML
//! reports — enough to run `cargo bench` offline and eyeball relative
//! numbers.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier: `function_id/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_id: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_id}/{parameter}"),
        }
    }

    /// Build an id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> BenchmarkId {
        BenchmarkId { id: s.clone() }
    }
}

/// Throughput annotation for per-iteration rates.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    /// Time `routine` repeatedly until the sample budget is used.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }
}

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the warm-up budget.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Set the target sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate following benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        // Warm-up pass (discarded).
        let mut warm = Bencher {
            samples: Vec::new(),
            budget: self.warm_up,
            max_samples: self.sample_size,
        };
        f(&mut warm);
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            budget: self.measurement,
            max_samples: self.sample_size,
        };
        f(&mut bencher);
        self.report(&id, &bencher.samples);
        self
    }

    /// Run one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (prints nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples collected", self.name, id.id);
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean.as_nanos() > 0 => {
                let mib_s = n as f64 / mean.as_secs_f64() / (1024.0 * 1024.0);
                format!("  {mib_s:10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) if mean.as_nanos() > 0 => {
                let elem_s = n as f64 / mean.as_secs_f64();
                format!("  {elem_s:10.0} elem/s")
            }
            _ => String::new(),
        };
        println!(
            "{}/{}: mean {} min {} max {} ({} samples){rate}",
            self.name,
            id.id,
            fmt_duration(mean),
            fmt_duration(min),
            fmt_duration(max),
            samples.len(),
        );
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_secs(2),
            sample_size: 100,
            throughput: None,
            _criterion: self,
        }
    }

    /// Run a standalone benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a group-runner function over the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_loop_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(20));
        group.sample_size(5);
        group.throughput(Throughput::Bytes(1024));
        let mut ran = false;
        group.bench_function(BenchmarkId::new("noop", 1), |b| {
            b.iter(|| black_box(2 + 2));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }
}
