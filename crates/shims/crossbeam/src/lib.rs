//! Offline shim for `crossbeam`.
//!
//! Provides `channel::{unbounded, Sender, Receiver}` — a multi-producer,
//! **multi-consumer** unbounded channel (std's mpsc receiver cannot be
//! cloned, which the UDSM thread pool needs), built on a mutex + condvar.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Sending half; clone freely.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// Receiving half; clone freely (each message goes to exactly one
    /// receiver).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Manual impl so `SendError<T>: Debug` regardless of `T` (payloads are
    // often closures), matching crossbeam.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue a message; fails only when all receivers are dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut g = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if g.receivers == 0 {
                return Err(SendError(value));
            }
            g.items.push_back(value);
            drop(g);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Sender<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut g = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            g.senders -= 1;
            if g.senders == 0 {
                drop(g);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut g = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(item) = g.items.pop_front() {
                    return Ok(item);
                }
                if g.senders == 0 {
                    return Err(RecvError);
                }
                g = self.shared.ready.wait(g).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeue without blocking; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Receiver<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers -= 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_out_to_cloned_receivers() {
            let (tx, rx) = unbounded::<u32>();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = 0;
                        while rx.recv().is_ok() {
                            got += 1;
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: u32 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 100, "every message consumed exactly once");
        }

        #[test]
        fn send_fails_after_receivers_gone() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(SendError(1)));
        }

        #[test]
        fn recv_fails_after_senders_gone() {
            let (tx, rx) = unbounded::<u8>();
            tx.send(9).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(9));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
