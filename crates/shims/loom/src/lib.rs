//! Offline shim of the `loom` model checker's core idea: run a concurrent
//! test body under a deterministic scheduler, and *exhaustively* explore
//! every interleaving of its synchronization operations.
//!
//! [`model`] runs the closure repeatedly. Threads spawned with
//! [`thread::spawn`] are real OS threads, but strictly serialized: exactly
//! one runs at a time, and at every scheduling point (lock acquire, lock
//! release, spawn, join, [`thread::yield_now`]) the scheduler picks which
//! runnable thread proceeds next. Each pick is a recorded decision;
//! depth-first backtracking over the decision trace enumerates every
//! schedule. A schedule where every live thread is blocked panics with
//! `"deadlock"`, and an assertion failure in any schedule propagates out of
//! [`model`] — so a passing `model()` call means the invariant held under
//! *all* interleavings of the modeled operations, not just the ones the OS
//! happened to produce.
//!
//! Divergences from real loom, chosen for this workspace:
//! * Only `Mutex`/`thread`/`Arc` are modeled (no atomics orderings, no
//!   `UnsafeCell` tracking) — the workspace's sharded cache and connection
//!   pool are lock-based.
//! * `Mutex::lock` returns the guard directly (parking_lot style, matching
//!   the `parking_lot` shim the production code uses) rather than a
//!   `LockResult`.
//! * Exploration is capped at [`MAX_EXECUTIONS`] schedules as a runaway
//!   backstop; hitting the cap panics rather than silently passing.

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex as StdMutex, MutexGuard as StdGuard, OnceLock, PoisonError};

/// Hard cap on explored schedules; a model that exceeds it panics.
pub const MAX_EXECUTIONS: usize = 100_000;

thread_local! {
    /// Model-thread id of the current OS thread (usize::MAX = not a model thread).
    static CUR: Cell<usize> = const { Cell::new(usize::MAX) };
}

fn cur() -> usize {
    let id = CUR.with(Cell::get);
    assert!(
        id != usize::MAX,
        "loom primitives may only be used inside loom::model"
    );
    id
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    /// Waiting for a mutex (by lock id).
    BlockedLock(usize),
    /// Waiting for a thread (by thread id) to finish.
    BlockedJoin(usize),
    Finished,
}

struct State {
    /// Per-execution thread table; index is the model-thread id.
    threads: Vec<Run>,
    /// Which thread holds the token (may run).
    active: usize,
    /// Held-flags for mutexes registered this execution.
    locks: Vec<bool>,
    /// OS handles of spawned child threads, joined at execution end.
    handles: Vec<std::thread::JoinHandle<()>>,
    /// Decision trace: (choice index, number of options) per scheduling point.
    trace: Vec<(usize, usize)>,
    /// Replay cursor into `trace`.
    pos: usize,
    /// Execution aborted (deadlock or panic): all threads unwind out.
    dead: bool,
    /// First panic message observed this execution.
    panic: Option<String>,
}

struct Sched {
    state: StdMutex<State>,
    cv: Condvar,
}

fn sched() -> &'static Sched {
    static S: OnceLock<Sched> = OnceLock::new();
    S.get_or_init(|| Sched {
        state: StdMutex::new(State {
            threads: Vec::new(),
            active: 0,
            locks: Vec::new(),
            handles: Vec::new(),
            trace: Vec::new(),
            pos: 0,
            dead: false,
            panic: None,
        }),
        cv: Condvar::new(),
    })
}

impl Sched {
    fn st(&self) -> StdGuard<'_, State> {
        // A panicking model thread poisons the lock; the state itself stays
        // consistent (mutations are all single-step), so recover.
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record (or replay) one scheduling decision with `n` options.
    fn choose(st: &mut State, n: usize) -> usize {
        debug_assert!(n > 0);
        let c = if st.pos < st.trace.len() {
            // Replaying a prefix from a previous execution. The model body
            // must be deterministic, so the option count matches; clamp
            // defensively anyway.
            st.trace[st.pos].1 = n;
            st.trace[st.pos].0.min(n.saturating_sub(1))
        } else {
            st.trace.push((0, n));
            0
        };
        st.pos = st.pos.saturating_add(1);
        c
    }

    fn enabled(st: &State) -> Vec<usize> {
        st.threads
            .iter()
            .enumerate()
            .filter(|&(_, r)| *r == Run::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Pick the next thread to run and hand it the token. Returns false when
    /// the execution is dead (deadlock detected here, or already aborted).
    fn pick_next(&self, st: &mut State) -> bool {
        if st.dead {
            self.cv.notify_all();
            return false;
        }
        let enabled = Self::enabled(st);
        if enabled.is_empty() {
            if st.threads.iter().all(|r| *r == Run::Finished) {
                self.cv.notify_all();
                return true;
            }
            // Live threads exist but none can run.
            if st.panic.is_none() {
                st.panic = Some(format!(
                    "deadlock: every live thread is blocked ({:?})",
                    st.threads
                ));
            }
            st.dead = true;
            self.cv.notify_all();
            return false;
        }
        let pick = Self::choose(st, enabled.len());
        st.active = enabled[pick];
        self.cv.notify_all();
        true
    }

    /// Block until this thread holds the token again (or the run is dead).
    /// Returns false if the execution died while waiting.
    fn wait_for_token<'a>(
        &self,
        mut st: StdGuard<'a, State>,
        me: usize,
    ) -> (StdGuard<'a, State>, bool) {
        while st.active != me && !st.dead {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let alive = !st.dead;
        (st, alive)
    }

    /// A full scheduling point for the running thread: choose a successor
    /// (possibly itself) and wait for the token back. Panics (to unwind the
    /// model body) if the execution dies.
    fn yield_point(&self) {
        let me = cur();
        let mut st = self.st();
        if !self.pick_next(&mut st) {
            drop(st);
            panic!("loom: model aborted");
        }
        let (st, alive) = self.wait_for_token(st, me);
        drop(st);
        if !alive {
            panic!("loom: model aborted");
        }
    }
}

/// Run `body` on model thread `id`, then mark it finished and hand off.
fn enter_thread(id: usize, body: impl FnOnce()) {
    CUR.with(|c| c.set(id));
    let s = sched();
    {
        let (st, alive) = s.wait_for_token(s.st(), id);
        drop(st);
        if !alive {
            // Execution died before this thread first ran; fall through to
            // the finish bookkeeping below with no body run.
            finish_thread(id);
            return;
        }
    }
    let result = catch_unwind(AssertUnwindSafe(body));
    if let Err(payload) = result {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "model thread panicked".to_string());
        let mut st = s.st();
        // First genuine panic wins; secondary "model aborted" unwinds from
        // other threads never overwrite it.
        if st.panic.is_none() {
            st.panic = Some(msg);
        }
        st.dead = true;
        s.cv.notify_all();
    }
    finish_thread(id);
}

fn finish_thread(id: usize) {
    let s = sched();
    let mut st = s.st();
    st.threads[id] = Run::Finished;
    for r in st.threads.iter_mut() {
        if *r == Run::BlockedJoin(id) {
            *r = Run::Runnable;
        }
    }
    // Hand the token on (or end/abort the execution); this thread exits
    // either way, so it never waits for the token back.
    let _ = s.pick_next(&mut st);
}

/// Explore every schedule of `f`. Panics if any schedule deadlocks, panics,
/// or the execution cap is hit.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    static MODEL_LOCK: StdMutex<()> = StdMutex::new(());
    let _serial = MODEL_LOCK.lock().unwrap_or_else(PoisonError::into_inner);

    let s = sched();
    {
        let mut st = s.st();
        st.trace.clear();
        st.pos = 0;
    }
    let f = std::sync::Arc::new(f);
    let mut executions = 0usize;
    loop {
        executions = executions.saturating_add(1);
        assert!(
            executions <= MAX_EXECUTIONS,
            "loom: exceeded {MAX_EXECUTIONS} schedules; shrink the model"
        );
        // Reset per-execution state (the decision trace persists).
        {
            let mut st = s.st();
            st.threads = vec![Run::Runnable];
            st.active = 0;
            st.locks.clear();
            st.dead = false;
            st.panic = None;
            st.pos = 0;
        }
        let body = f.clone();
        let root = std::thread::spawn(move || enter_thread(0, move || body()));
        // Wait for every model thread to finish, then reap the OS threads.
        let handles = {
            let mut st = s.st();
            while !st.threads.iter().all(|r| *r == Run::Finished) {
                st = s.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
            }
            std::mem::take(&mut st.handles)
        };
        let _ = root.join();
        for h in handles {
            let _ = h.join();
        }
        let failed = {
            let mut st = s.st();
            // Decisions past `pos` belong to abandoned deeper explorations.
            let pos = st.pos;
            st.trace.truncate(pos);
            st.panic.take()
        };
        if let Some(msg) = failed {
            panic!("loom: schedule {executions} failed: {msg}");
        }
        // Depth-first advance: bump the deepest decision with options left.
        let more = {
            let mut st = s.st();
            loop {
                match st.trace.last().copied() {
                    None => break false,
                    Some((c, n)) if c.saturating_add(1) < n => {
                        if let Some(last) = st.trace.last_mut() {
                            last.0 = c.saturating_add(1);
                        }
                        break true;
                    }
                    Some(_) => {
                        st.trace.pop();
                    }
                }
            }
        };
        if !more {
            return;
        }
    }
}

/// Model-aware threads.
pub mod thread {
    use super::{cur, enter_thread, sched, Run, Sched};
    use std::sync::{Arc, Mutex as StdMutex, PoisonError};

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        id: usize,
        slot: Arc<StdMutex<Option<T>>>,
    }

    /// Spawn a model thread. A scheduling point for the parent.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let s = sched();
        let slot = Arc::new(StdMutex::new(None));
        let slot2 = slot.clone();
        let id = {
            let mut st = s.st();
            st.threads.push(Run::Runnable);
            st.threads.len() - 1
        };
        let os = std::thread::spawn(move || {
            enter_thread(id, move || {
                let out = f();
                *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(out);
            });
        });
        {
            let mut st = s.st();
            st.handles.push(os);
        }
        s.yield_point();
        JoinHandle { id, slot }
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish; a scheduling point.
        pub fn join(self) -> std::thread::Result<T> {
            let s = sched();
            let me = cur();
            loop {
                let mut st = s.st();
                if st.dead {
                    drop(st);
                    panic!("loom: model aborted");
                }
                if st.threads[self.id] == Run::Finished {
                    break;
                }
                st.threads[me] = Run::BlockedJoin(self.id);
                if !s.pick_next(&mut st) {
                    drop(st);
                    panic!("loom: model aborted");
                }
                let (st, alive) = s.wait_for_token(st, me);
                drop(st);
                if !alive {
                    panic!("loom: model aborted");
                }
            }
            match self
                .slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
            {
                Some(v) => Ok(v),
                // The thread died before storing a result (it panicked); the
                // scheduler has already recorded the original message.
                None => Err(Box::new("loom: joined thread produced no value")),
            }
        }
    }

    /// Explicit scheduling point.
    pub fn yield_now() {
        Sched::yield_point(sched());
    }
}

/// Model-aware sync primitives.
pub mod sync {
    use super::{cur, sched, Run};
    use std::cell::UnsafeCell;
    use std::sync::atomic::{AtomicUsize, Ordering};

    pub use std::sync::Arc;

    /// A mutex whose acquire/release are scheduling points explored by the
    /// model. The data lives in an `UnsafeCell`; mutual exclusion is
    /// enforced by the scheduler (only the token-holding thread runs, and
    /// the held-flag blocks competing lockers).
    pub struct Mutex<T> {
        /// Lock id within the current execution (`usize::MAX` = unassigned).
        id: AtomicUsize,
        data: UnsafeCell<T>,
    }

    // SAFETY: the scheduler serializes all model threads and the held-flag
    // protocol guarantees at most one live guard, so `&T`/`&mut T` handed
    // out by the guard are never aliased across threads.
    unsafe impl<T: Send> Send for Mutex<T> {}
    // SAFETY: as above — shared references to the Mutex only touch `data`
    // through a guard, and guard acquisition is mutually exclusive.
    unsafe impl<T: Send> Sync for Mutex<T> {}

    /// Exclusive access to a [`Mutex`]'s data; released (a scheduling
    /// point) on drop.
    pub struct MutexGuard<'a, T> {
        lock: &'a Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Wrap `value`. Mutexes must be created inside the model body so
        /// each execution re-registers them.
        pub fn new(value: T) -> Mutex<T> {
            Mutex {
                id: AtomicUsize::new(usize::MAX),
                data: UnsafeCell::new(value),
            }
        }

        fn ensure_id(&self) -> usize {
            // Single-step registration is race-free: only one model thread
            // runs at a time.
            let id = self.id.load(Ordering::Relaxed);
            if id != usize::MAX {
                return id;
            }
            let s = sched();
            let mut st = s.st();
            st.locks.push(false);
            let id = st.locks.len() - 1;
            drop(st);
            self.id.store(id, Ordering::Relaxed);
            id
        }

        /// Acquire. A scheduling point before the attempt, and blocks (as a
        /// modeled state, explored by the scheduler) while held elsewhere.
        pub fn lock(&self) -> MutexGuard<'_, T> {
            let id = self.ensure_id();
            let s = sched();
            s.yield_point();
            let me = cur();
            loop {
                let mut st = s.st();
                if st.dead {
                    drop(st);
                    panic!("loom: model aborted");
                }
                // A mutex captured from outside the model body keeps its id
                // across executions while the lock table is reset; re-extend.
                while st.locks.len() <= id {
                    st.locks.push(false);
                }
                if !st.locks[id] {
                    st.locks[id] = true;
                    return MutexGuard { lock: self };
                }
                st.threads[me] = Run::BlockedLock(id);
                if !s.pick_next(&mut st) {
                    drop(st);
                    panic!("loom: model aborted");
                }
                let (st, alive) = s.wait_for_token(st, me);
                drop(st);
                if !alive {
                    panic!("loom: model aborted");
                }
            }
        }

        /// Consume the mutex, returning the data (no scheduling point).
        pub fn into_inner(self) -> T {
            self.data.into_inner()
        }
    }

    impl<'a, T> std::ops::Deref for MutexGuard<'a, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // SAFETY: this guard proves the held-flag is set for this lock
            // and only one guard can exist at a time (see `lock`).
            unsafe { &*self.lock.data.get() }
        }
    }

    impl<'a, T> std::ops::DerefMut for MutexGuard<'a, T> {
        fn deref_mut(&mut self) -> &mut T {
            // SAFETY: exclusive `&mut self` on the sole live guard.
            unsafe { &mut *self.lock.data.get() }
        }
    }

    impl<'a, T> Drop for MutexGuard<'a, T> {
        fn drop(&mut self) {
            let s = sched();
            let id = self.lock.id.load(Ordering::Relaxed);
            let mut st = s.st();
            if let Some(held) = st.locks.get_mut(id) {
                *held = false;
            }
            for r in st.threads.iter_mut() {
                if *r == Run::BlockedLock(id) {
                    *r = Run::Runnable;
                }
            }
            if st.dead {
                // Unwinding out of a dead execution: release without
                // scheduling (and never panic from a drop).
                s.cv.notify_all();
                return;
            }
            // Release is a scheduling point, but must not panic in drop:
            // on abort just fall through, the caller's next scheduling
            // point unwinds.
            let me = cur();
            if s.pick_next(&mut st) {
                let (st, _alive) = s.wait_for_token(st, me);
                drop(st);
            }
        }
    }
}

pub use sync::Arc;

#[cfg(test)]
mod tests {
    use super::sync::{Arc, Mutex};
    use super::thread;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Two unsynchronized read-modify-write sections lose an update under
    /// at least one interleaving; the model must find it.
    #[test]
    #[should_panic(expected = "lost update")]
    fn finds_lost_update() {
        super::model(|| {
            let n = Arc::new(Mutex::new(0u32));
            let n2 = n.clone();
            let t = thread::spawn(move || {
                let read = *n2.lock();
                // The other thread can interleave here.
                *n2.lock() = read + 1;
            });
            {
                let read = *n.lock();
                *n.lock() = read + 1;
            }
            t.join().expect("child");
            assert_eq!(*n.lock(), 2, "lost update");
        });
    }

    /// Holding the lock across the whole read-modify-write makes every
    /// schedule correct.
    #[test]
    fn locked_counter_holds_everywhere() {
        super::model(|| {
            let n = Arc::new(Mutex::new(0u32));
            let n2 = n.clone();
            let t = thread::spawn(move || {
                let mut g = n2.lock();
                *g += 1;
            });
            {
                let mut g = n.lock();
                *g += 1;
            }
            t.join().expect("child");
            assert_eq!(*n.lock(), 2);
        });
    }

    /// The checker actually explores more than one schedule.
    #[test]
    fn explores_multiple_schedules() {
        static RUNS: AtomicUsize = AtomicUsize::new(0);
        super::model(|| {
            RUNS.fetch_add(1, Ordering::SeqCst);
            let m = Arc::new(Mutex::new(0u8));
            let m2 = m.clone();
            let t = thread::spawn(move || {
                *m2.lock() += 1;
            });
            *m.lock() += 1;
            t.join().expect("child");
        });
        assert!(
            RUNS.load(Ordering::SeqCst) > 1,
            "expected multiple interleavings, got {}",
            RUNS.load(Ordering::SeqCst)
        );
    }

    /// Classic AB-BA lock ordering inversion must be reported as deadlock.
    #[test]
    #[should_panic(expected = "deadlock")]
    fn detects_ab_ba_deadlock() {
        super::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (a.clone(), b.clone());
            let t = thread::spawn(move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop((_ga, _gb));
            t.join().expect("child");
        });
    }

    /// yield_now is a legal scheduling point and the model terminates.
    #[test]
    fn yield_now_terminates() {
        super::model(|| {
            let t = thread::spawn(|| {
                thread::yield_now();
                7u8
            });
            thread::yield_now();
            assert_eq!(t.join().expect("child"), 7);
        });
    }
}
