//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's non-poisoning API:
//! `lock()`/`read()`/`write()` return guards directly, and a panic while a
//! guard is held does not poison the lock for later users.

use std::sync::{self, TryLockError};

/// A mutual-exclusion lock that does not poison.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning from a panicked holder.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the deadline passed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// Condition variable with parking_lot's `&mut guard` API.
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // std's wait consumes the guard and returns a fresh one;
        // parking_lot's takes `&mut`. Move the guard out and back.
        // SAFETY: ptr::read duplicates the guard, but exactly one copy is
        // ever dropped — wait() consumes the moved-out value and returns a
        // fresh guard that ptr::write installs over the (never-dropped)
        // original. The only fallible step is the poison check, recovered
        // with `into_inner`, so no early return can leak the duplicate.
        unsafe {
            let taken = std::ptr::read(guard);
            let reacquired = self.inner.wait(taken).unwrap_or_else(|e| e.into_inner());
            std::ptr::write(guard, reacquired);
        }
    }

    /// Block until notified or `deadline` passes.
    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: std::time::Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(std::time::Instant::now());
        // SAFETY: same move-out/move-back protocol as `wait` above — one of
        // the two guard copies is consumed by wait_timeout, the other is
        // overwritten without being dropped.
        unsafe {
            let taken = std::ptr::read(guard);
            let (reacquired, result) = self
                .inner
                .wait_timeout(taken, timeout)
                .unwrap_or_else(|e| e.into_inner());
            std::ptr::write(guard, reacquired);
            WaitTimeoutResult(result.timed_out())
        }
    }
}

/// A readers-writer lock that does not poison.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        assert_eq!(l.read().len(), 1);
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("die holding the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
