//! Offline shim for `proptest`.
//!
//! Same macro surface (`proptest!`, `prop_assert*`, `prop_oneof!`) and
//! strategy combinators the workspace's property tests use, minus
//! shrinking: a failing case reports its case index and panics, and cases
//! regenerate deterministically from the test name, so failures reproduce
//! exactly on re-run.

use std::marker::PhantomData;
use std::sync::Arc;

use rand::{Rng, RngCore, SeedableRng};

/// Deterministic per-test RNG.
pub struct TestRng(rand::rngs::SmallRng);

impl TestRng {
    /// Seed from a test name, so each test gets a stable stream.
    pub fn deterministic(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng(rand::rngs::SmallRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl std::fmt::Display) -> TestCaseError {
        TestCaseError(msg.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `f` wraps an inner strategy into one
    /// producing a container of the same type. `depth` bounds recursion;
    /// the size-tuning parameters of real proptest are accepted and
    /// ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        Recursive {
            base: Arc::new(self),
            depth,
            recurse: Arc::new(move |inner| Box::new(f(inner)) as BoxedStrategy<_>),
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform values of a primitive type.
pub struct Any<T>(PhantomData<T>);

/// Strategy for any value of a primitive type (`any::<u8>()` etc).
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample_standard(rng)
    }
}

/// Uniform choice between boxed alternatives (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one branch");
        let idx = rng.gen_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// [`Strategy::prop_recursive`] combinator.
pub struct Recursive<T> {
    base: Arc<dyn Strategy<Value = T>>,
    depth: u32,
    recurse: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
}

/// Adapter so an `Arc`'d strategy can be re-boxed per generation.
struct SharedStrategy<T>(Arc<dyn Strategy<Value = T>>);

impl<T> Strategy for SharedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let levels = rng.gen_range(0..=self.depth);
        let mut strat: BoxedStrategy<T> = Box::new(SharedStrategy(Arc::clone(&self.base)));
        for _ in 0..levels {
            strat = (self.recurse)(strat);
        }
        strat.generate(rng)
    }
}

// Integer/float ranges are strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

// Tuples of strategies are strategies over tuples.
macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

// String literals are regex-subset strategies: one `.` or `[...]` class
// with an optional `{m}` / `{m,n}` / `*` / `+` quantifier.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_simple_regex(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy {self:?} (shim supports one char class with a quantifier)"));
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| alphabet[rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

/// Parse the `class{m,n}` regex subset; returns (alphabet, min_len, max_len).
fn parse_simple_regex(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let printable: Vec<char> = (0x20u8..=0x7e).map(char::from).collect();
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0;

    let alphabet: Vec<char> = match chars.get(pos)? {
        '.' => {
            pos += 1;
            printable
        }
        '[' => {
            pos += 1;
            let negated = chars.get(pos) == Some(&'^');
            if negated {
                pos += 1;
            }
            let mut set = Vec::new();
            while let Some(&c) = chars.get(pos) {
                if c == ']' {
                    break;
                }
                let lo = if c == '\\' {
                    pos += 1;
                    match chars.get(pos)? {
                        'r' => '\r',
                        'n' => '\n',
                        't' => '\t',
                        &other => other,
                    }
                } else {
                    c
                };
                pos += 1;
                if chars.get(pos) == Some(&'-') && chars.get(pos + 1).is_some_and(|&c| c != ']') {
                    let hi = chars[pos + 1];
                    pos += 2;
                    for v in lo as u32..=hi as u32 {
                        set.push(char::from_u32(v)?);
                    }
                } else {
                    set.push(lo);
                }
            }
            if chars.get(pos) != Some(&']') {
                return None;
            }
            pos += 1;
            if negated {
                printable.into_iter().filter(|c| !set.contains(c)).collect()
            } else {
                set
            }
        }
        _ => return None,
    };
    if alphabet.is_empty() {
        return None;
    }

    let (min, max) = match chars.get(pos) {
        None => (1, 1),
        Some('*') => (0, 16),
        Some('+') => (1, 16),
        Some('{') => {
            let body: String = chars[pos + 1..].iter().take_while(|&&c| c != '}').collect();
            pos += 1 + body.len();
            if chars.get(pos) != Some(&'}') || pos + 1 != chars.len() {
                return None;
            }
            match body.split_once(',') {
                None => {
                    let n = body.parse().ok()?;
                    (n, n)
                }
                Some((lo, hi)) => (lo.parse().ok()?, hi.parse().ok()?),
            }
        }
        Some(_) => return None,
    };
    Some((alphabet, min, max))
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for vectors with lengths drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: std::ops::Range<usize>,
    }

    /// `vec(element, len_range)` — vectors of generated elements.
    pub fn vec<S: Strategy>(element: S, sizes: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.sizes.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-runner namespace mirror (`proptest::test_runner`).
pub mod test_runner {
    pub use super::{TestCaseError, TestRng};
}

/// Strategy namespace mirror (`proptest::strategy`).
pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy, Union};
}

/// One-of strategy over the listed branches (uniform choice).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union(vec![
            $( $crate::Strategy::boxed($strat) ),+
        ])
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}: both sides were `{:?}`",
                format!($($fmt)+),
                l
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...)` becomes a
/// `#[test]` running `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @config ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @config ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@config ($config:expr);) => {};
    (@config ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_fns! { @config ($config); $($rest)* }
    };
}

/// The usual glob import (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, Any, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subsets_parse() {
        let mut rng = crate::TestRng::deterministic("regex");
        for _ in 0..200 {
            let s = "[a-z]{1,6}".generate(&mut rng);
            assert!((1..=6).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = "[^\r\n]{0,30}".generate(&mut rng);
            assert!(s.len() <= 30);
            assert!(!s.contains(['\r', '\n']));

            let s = ".{0,40}".generate(&mut rng);
            assert!(s.len() <= 40);
        }
    }

    #[test]
    fn oneof_hits_all_branches() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::deterministic("oneof");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [false, true, true, true]);
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = any::<u8>().prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 24, 6, |inner| {
            collection::vec(inner, 0..4).prop_map(Tree::Node)
        });
        let mut rng = crate::TestRng::deterministic("recursive");
        for _ in 0..50 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_end_to_end(x in 0u32..100, data in collection::vec(any::<u8>(), 0..10)) {
            prop_assert!(x < 100);
            prop_assert!(data.len() < 10);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1, "offset check {}", x);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
