//! Offline shim for the `rand` crate (0.8 API subset).
//!
//! Backed by xoshiro256++ seeded via splitmix64 — deterministic for a given
//! seed, which is exactly what the reproducible benchmarks need. Not
//! cryptographically secure; the crypto crate uses it only for test vectors
//! and IV generation in simulations.

use std::cell::RefCell;

/// Low-level RNG interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill a byte slice with random data.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
    /// Build from OS-ish entropy (time + address mixing here).
    fn from_entropy() -> Self {
        let t = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        let stack_probe = &t as *const _ as u64;
        Self::seed_from_u64(t ^ stack_probe.rotate_left(32))
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// xoshiro256++ — small, fast, and plenty good for simulation.
#[derive(Clone, Debug)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> SmallRng {
        let mut sm = seed;
        SmallRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNG namespace mirror of `rand::rngs`.
pub mod rngs {
    pub use super::SmallRng;
    pub use super::ThreadRng;
}

thread_local! {
    static THREAD_RNG: RefCell<SmallRng> = RefCell::new(SmallRng::from_entropy());
}

/// Handle to a thread-local RNG.
pub struct ThreadRng;

/// Get the thread-local RNG.
pub fn thread_rng() -> ThreadRng {
    ThreadRng
}

impl RngCore for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u32())
    }
    fn next_u64(&mut self) -> u64 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u64())
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        THREAD_RNG.with(|r| r.borrow_mut().fill_bytes(dest))
    }
}

/// Types producible by [`Rng::gen`] (the `Standard` distribution).
pub trait Standard: Sized {
    /// Draw a uniformly random value.
    fn sample_standard(rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard(rng: &mut impl RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard(rng: &mut impl RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard(rng: &mut impl RngCore) -> f64 {
        // 53 random mantissa bits → uniform in [0,1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard(rng: &mut impl RngCore) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample_standard(rng: &mut impl RngCore) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types drawable uniformly from a range (`rand::distributions::uniform`
/// equivalent, flattened).
pub trait SampleUniform: Sized {
    /// Uniform draw from `lo..hi`.
    fn sample_exclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self;
    /// Uniform draw from `lo..=hi`.
    fn sample_inclusive(lo: Self, hi: Self, rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive(lo: $t, hi: $t, rng: &mut impl RngCore) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128);
                // Modulo bias is negligible for a 64-bit draw over the spans
                // this workspace uses (all far below 2^63).
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut impl RngCore) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive(lo: $t, hi: $t, rng: &mut impl RngCore) -> $t {
                assert!(lo < hi, "empty range in gen_range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
            fn sample_inclusive(lo: $t, hi: $t, rng: &mut impl RngCore) -> $t {
                assert!(lo <= hi, "empty range in gen_range");
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Ranges usable with [`Rng::gen_range`]. Generic over the element type so
/// integer literals in ranges infer from the result type, as in rand 0.8.
pub trait SampleRange<T> {
    /// Draw uniformly from the range.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// High-level convenience methods, blanket-implemented for every RNG.
pub trait Rng: RngCore {
    /// Uniform value of an inferred type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_standard(self) < p
    }

    /// Uniform value from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Distribution sampling (`rand::distributions` subset).
pub mod distributions {
    use super::{RngCore, Standard};

    /// A distribution over `T`.
    pub trait Distribution<T> {
        /// Draw one value.
        fn sample<R: RngCore>(&self, rng: &mut R) -> T;
    }

    /// Uniform on the open interval (0, 1).
    #[derive(Clone, Copy, Debug)]
    pub struct Open01;

    impl Distribution<f64> for Open01 {
        fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
            loop {
                let v = f64::sample_standard(rng);
                if v > 0.0 {
                    return v;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Open01};
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20u32);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(1..=6i32);
            assert!((1..=6).contains(&w));
            let f = rng.gen_range(0.5..2.0f64);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!(
            (2000..3000).contains(&hits),
            "got {hits} of 10000 at p=0.25"
        );
    }

    #[test]
    fn open01_is_open() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: f64 = Open01.sample(&mut rng);
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn array_gen() {
        let mut rng = SmallRng::seed_from_u64(5);
        let a: [u8; 16] = rng.gen();
        let b: [u8; 16] = rng.gen();
        assert_ne!(a, b);
    }
}
