//! The event loop: connection slots, write pipelines, timers, and the
//! cross-thread control channel.
//!
//! One [`Reactor`] owns an epoll instance plus every listener and
//! connection registered on it. It can be driven two ways:
//!
//! * **deterministic single-threaded mode** — tests call [`Reactor::turn`]
//!   directly and observe exactly one batch of events per call;
//! * **background mode** — [`Reactor::spawn`] moves the loop onto a
//!   dedicated thread; other threads talk to it through a cloneable
//!   [`Handle`] (self-pipe waker + control queue).
//!
//! Per connection the reactor keeps an input buffer and an ordered *write
//! pipeline* of steps ([`Outbox`]): byte chunks, pauses, and close. Steps
//! release strictly in FIFO order — a pause at the head of the queue holds
//! every later chunk back — which is how the event-driven servers
//! reproduce the byte-exact wire behavior of their old blocking
//! write-then-sleep code paths without ever blocking the loop.

use crate::poll::Poller;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Stable identifier for a connection, valid across the reactor's lifetime
/// (slot indices are recycled; these are not).
pub type ConnId = u64;

/// Per-connection protocol state machine driven by the reactor.
///
/// Callbacks run on the reactor thread and must never block: no sleeps, no
/// blocking syscalls, no lock guard held across an [`Outbox`] scheduling
/// call. Delays are expressed as [`Outbox::delay`] steps instead.
pub trait ConnHandler: Send {
    /// New bytes were appended to `inbuf`. Consume any complete frames
    /// from the front (`Vec::drain`) and queue replies on `out`; leave
    /// incomplete trailing bytes in place for the next call.
    fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut Outbox);

    /// Peer closed its write side. `inbuf` holds any unconsumed trailing
    /// bytes (a truncated frame, typically). Default: close.
    fn on_eof(&mut self, inbuf: &mut Vec<u8>, out: &mut Outbox) {
        let _ = inbuf;
        out.close();
    }

    /// The connection is gone (flushed close, error, severed, shutdown).
    fn on_close(&mut self) {}
}

/// Accepts inbound connections on a listener; `None` refuses (severs the
/// socket before any I/O, the shape of `FaultInjector::refuse_connection`).
pub trait Acceptor: Send {
    /// Decide whether to serve `peer` and with which handler.
    fn accept(&mut self, peer: SocketAddr) -> Option<Box<dyn ConnHandler>>;
}

impl<F> Acceptor for F
where
    F: FnMut(SocketAddr) -> Option<Box<dyn ConnHandler>> + Send,
{
    fn accept(&mut self, peer: SocketAddr) -> Option<Box<dyn ConnHandler>> {
        self(peer)
    }
}

/// Write-pipeline steps a handler may queue for its own connection.
#[derive(Debug)]
enum Step {
    /// Bytes to write (in order).
    Bytes(Vec<u8>),
    /// Pause the pipeline once this step reaches the head; the clock
    /// starts then, matching a blocking `sleep` between two writes.
    Delay(Duration),
    /// Flush everything queued before this step, then close.
    Close,
}

/// Ordered output operations recorded by a [`ConnHandler`] callback and
/// applied to the connection's write pipeline when the callback returns.
#[derive(Default)]
pub struct Outbox {
    steps: Vec<Step>,
}

impl Outbox {
    /// Queue bytes for writing.
    pub fn send(&mut self, bytes: impl Into<Vec<u8>>) {
        self.steps.push(Step::Bytes(bytes.into()));
    }

    /// Queue a pause: later steps wait `d` after everything queued before.
    pub fn delay(&mut self, d: Duration) {
        if !d.is_zero() {
            self.steps.push(Step::Delay(d));
        }
    }

    /// Close the connection after flushing everything queued before.
    pub fn close(&mut self) {
        self.steps.push(Step::Close);
    }

    /// True if nothing was queued.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// A queued pipeline step with its release state.
enum QStep {
    Bytes {
        buf: Vec<u8>,
        off: usize,
    },
    Delay {
        dur: Duration,
        until: Option<Instant>,
    },
    Close,
}

struct ConnState {
    sock: TcpStream,
    id: ConnId,
    handler: Option<Box<dyn ConnHandler>>,
    inbuf: Vec<u8>,
    outq: VecDeque<QStep>,
    /// Registered epoll interest (readable, writable).
    registered: (bool, bool),
    /// Peer EOF seen (or read error): stop reading.
    eof: bool,
    /// A delay step at the head of the queue has an armed timer.
    parked: bool,
}

enum Slot {
    Listener {
        sock: TcpListener,
        acceptor: Box<dyn Acceptor>,
    },
    Conn(ConnState),
}

type TimerCb = Box<dyn FnOnce(&mut Reactor) + Send>;

enum TimerKind {
    /// Re-run the write pipeline of a parked connection.
    Unpark(ConnId),
    /// Arbitrary callback on the loop.
    Call(TimerCb),
}

struct TimerEntry {
    when: Instant,
    seq: u64,
    kind: TimerKind,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.when == other.when && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest deadline wins.
        (other.when, other.seq).cmp(&(self.when, self.seq))
    }
}

enum Control {
    AddConn {
        id: ConnId,
        stream: TcpStream,
        handler: Box<dyn ConnHandler>,
    },
    Send {
        id: ConnId,
        bytes: Vec<u8>,
    },
    CloseConn {
        id: ConnId,
    },
    CloseAll,
    After {
        delay: Duration,
        cb: TimerCb,
    },
    Shutdown,
}

struct Shared {
    q: Mutex<VecDeque<Control>>,
    wake_tx: UnixStream,
    next_id: AtomicU64,
    live: AtomicBool,
}

impl Shared {
    /// Queue a control for the loop. Returns the control back when the
    /// loop is already dead so the caller can dispose of it properly —
    /// an `AddConn` carries a handler whose `on_close` contract must hold
    /// even when the loop never sees it. The liveness check runs under
    /// the queue lock, pairing with `shutdown_now`'s flag-then-drain (also
    /// under the lock): a control either lands before the drain and is
    /// closed by it, or observes `live == false` and comes back here.
    fn push(&self, c: Control) -> Option<Control> {
        let rejected = match self.q.lock() {
            Ok(mut q) => {
                if self.live.load(Ordering::Acquire) {
                    q.push_back(c);
                    None
                } else {
                    Some(c)
                }
            }
            Err(_) => Some(c),
        };
        if rejected.is_none() {
            // A full pipe still wakes the loop; ignore short/failed writes.
            let _ = (&self.wake_tx).write(&[1]);
        }
        rejected
    }
}

/// Cloneable, `Send` entry point to a running reactor. All operations are
/// queued and applied on the loop thread; sends to ids that are already
/// closed (or never existed) are silently dropped.
#[derive(Clone)]
pub struct Handle {
    shared: Arc<Shared>,
}

impl Handle {
    /// Hand an established stream to the loop. Returns immediately with
    /// the connection's id; registration happens on the loop thread.
    pub fn add_connection(&self, stream: TcpStream, handler: Box<dyn ConnHandler>) -> ConnId {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        if let Some(Control::AddConn { mut handler, .. }) = self.shared.push(Control::AddConn {
            id,
            stream,
            handler,
        }) {
            // The loop is already gone: deliver the close synchronously so
            // the handler fails its in-flight work fast instead of letting
            // callers park until their deadlines.
            handler.on_close();
        }
        id
    }

    /// Queue bytes on a connection's write pipeline.
    pub fn send(&self, id: ConnId, bytes: Vec<u8>) {
        self.shared.push(Control::Send { id, bytes });
    }

    /// Close a connection after flushing already-queued output.
    pub fn close(&self, id: ConnId) {
        self.shared.push(Control::CloseConn { id });
    }

    /// Sever every connection (listeners stay). The server-side
    /// `drop_connections()` chaos primitive.
    pub fn close_all_conns(&self) {
        self.shared.push(Control::CloseAll);
    }

    /// Run `cb` on the loop thread after `delay`.
    pub fn after(&self, delay: Duration, cb: impl FnOnce(&mut Reactor) + Send + 'static) {
        self.shared.push(Control::After {
            delay,
            cb: Box::new(cb),
        });
    }

    /// Run `cb` on the loop thread as soon as it is idle.
    pub fn run(&self, cb: impl FnOnce(&mut Reactor) + Send + 'static) {
        self.shared.push(Control::After {
            delay: Duration::ZERO,
            cb: Box::new(cb),
        });
    }

    /// Ask the loop to tear everything down and exit.
    pub fn shutdown(&self) {
        self.shared.push(Control::Shutdown);
    }

    /// False once the loop has exited (late sends become no-ops).
    pub fn is_live(&self) -> bool {
        self.shared.live.load(Ordering::Acquire)
    }
}

/// Token reserved for the self-pipe waker.
const WAKER_TOKEN: u64 = u64::MAX;

/// Accept backlog used by [`Reactor::listen`]. One loop thread handles
/// thousands of sockets, so bursts of simultaneous connects are the
/// normal case (C10K ramp-up, chaos reconnect storms), and a pending
/// connection costs the kernel almost nothing — size for the burst.
pub const DEFAULT_ACCEPT_BACKLOG: usize = 1024;

/// The epoll event loop. See the module docs for the two driving modes.
pub struct Reactor {
    poller: Poller,
    slots: Vec<Option<Slot>>,
    free: Vec<usize>,
    /// Slot indices freed this turn; recycled only next turn so stale
    /// events from the same epoll batch can't hit a reused slot.
    pending_free: Vec<usize>,
    ids: HashMap<ConnId, usize>,
    timers: BinaryHeap<TimerEntry>,
    timer_seq: u64,
    shared: Arc<Shared>,
    wake_rx: UnixStream,
    events: Vec<crate::poll::Event>,
    scratch: Vec<u8>,
    shutdown: bool,
}

impl Reactor {
    /// Build an idle reactor.
    pub fn new() -> io::Result<Reactor> {
        let poller = Poller::new(1024)?;
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        poller.add(wake_rx.as_raw_fd(), WAKER_TOKEN, true, false)?;
        Ok(Reactor {
            poller,
            slots: Vec::new(),
            free: Vec::new(),
            pending_free: Vec::new(),
            ids: HashMap::new(),
            timers: BinaryHeap::new(),
            timer_seq: 0,
            shared: Arc::new(Shared {
                q: Mutex::new(VecDeque::new()),
                wake_tx,
                next_id: AtomicU64::new(1),
                live: AtomicBool::new(true),
            }),
            wake_rx,
            events: Vec::new(),
            scratch: vec![0u8; 64 * 1024],
            shutdown: false,
        })
    }

    /// A cloneable cross-thread handle to this loop.
    pub fn handle(&self) -> Handle {
        Handle {
            shared: self.shared.clone(),
        }
    }

    /// True once [`Handle::shutdown`] (or [`Reactor::shutdown_now`]) has
    /// torn the loop down.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    /// Number of live connections (not listeners).
    pub fn conn_count(&self) -> usize {
        self.ids.len()
    }

    fn alloc_slot(&mut self, slot: Slot) -> usize {
        match self.free.pop() {
            Some(idx) => {
                if let Some(entry) = self.slots.get_mut(idx) {
                    *entry = Some(slot);
                }
                idx
            }
            None => {
                self.slots.push(Some(slot));
                self.slots.len() - 1
            }
        }
    }

    /// Register a listening socket with the default accept backlog
    /// ([`DEFAULT_ACCEPT_BACKLOG`]); `acceptor` decides per connection.
    pub fn listen(
        &mut self,
        sock: TcpListener,
        acceptor: impl Acceptor + 'static,
    ) -> io::Result<()> {
        self.listen_with_backlog(sock, acceptor, DEFAULT_ACCEPT_BACKLOG)
    }

    /// Register a listening socket, resizing its kernel accept backlog.
    /// `std::net::TcpListener::bind` hardcodes 128; one reactor thread
    /// serving thousands of connections wants far more headroom for
    /// connect bursts, so the backlog is re-issued here (`listen(2)` on an
    /// established listener updates it in place on Linux).
    pub fn listen_with_backlog(
        &mut self,
        sock: TcpListener,
        acceptor: impl Acceptor + 'static,
        backlog: usize,
    ) -> io::Result<()> {
        sock.set_nonblocking(true)?;
        let fd = sock.as_raw_fd();
        crate::sys::set_listen_backlog(fd, i32::try_from(backlog).unwrap_or(i32::MAX))?;
        let idx = self.alloc_slot(Slot::Listener {
            sock,
            acceptor: Box::new(acceptor),
        });
        self.poller.add(fd, idx as u64, true, false)
    }

    /// Register an established stream with a handler. Used directly in
    /// deterministic tests; background callers go through
    /// [`Handle::add_connection`].
    pub fn add_connection(
        &mut self,
        stream: TcpStream,
        handler: Box<dyn ConnHandler>,
    ) -> io::Result<ConnId> {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        self.install_conn(id, stream, handler)?;
        Ok(id)
    }

    fn install_conn(
        &mut self,
        id: ConnId,
        stream: TcpStream,
        mut handler: Box<dyn ConnHandler>,
    ) -> io::Result<()> {
        // Every failure path must still deliver `on_close`: client-side
        // handlers (the mux transport) use it to fail their in-flight
        // waiters fast instead of parking them until the request deadline.
        if let Err(e) = stream.set_nonblocking(true) {
            handler.on_close();
            return Err(e);
        }
        let _ = stream.set_nodelay(true);
        let fd = stream.as_raw_fd();
        let idx = self.alloc_slot(Slot::Conn(ConnState {
            sock: stream,
            id,
            handler: Some(handler),
            inbuf: Vec::new(),
            outq: VecDeque::new(),
            registered: (true, false),
            eof: false,
            parked: false,
        }));
        self.ids.insert(id, idx);
        if let Err(e) = self.poller.add(fd, idx as u64, true, false) {
            self.teardown(idx);
            return Err(e);
        }
        Ok(())
    }

    fn arm_timer(&mut self, when: Instant, kind: TimerKind) {
        self.timer_seq = self.timer_seq.wrapping_add(1);
        self.timers.push(TimerEntry {
            when,
            seq: self.timer_seq,
            kind,
        });
    }

    /// Run `cb` on this loop after `delay`.
    pub fn after(&mut self, delay: Duration, cb: impl FnOnce(&mut Reactor) + Send + 'static) {
        self.arm_timer(Instant::now() + delay, TimerKind::Call(Box::new(cb)));
    }

    /// Queue bytes on `id`'s write pipeline (no-op for unknown ids).
    pub fn send(&mut self, id: ConnId, bytes: Vec<u8>) {
        let Some(&idx) = self.ids.get(&id) else {
            return;
        };
        if let Some(Some(Slot::Conn(c))) = self.slots.get_mut(idx) {
            c.outq.push_back(QStep::Bytes { buf: bytes, off: 0 });
        }
        self.flush_conn(idx);
    }

    /// Close `id` after flushing already-queued output.
    pub fn close(&mut self, id: ConnId) {
        let Some(&idx) = self.ids.get(&id) else {
            return;
        };
        if let Some(Some(Slot::Conn(c))) = self.slots.get_mut(idx) {
            c.outq.push_back(QStep::Close);
        }
        self.flush_conn(idx);
    }

    /// Sever every connection immediately (queued output is discarded,
    /// like a process kill). Listeners keep accepting.
    pub fn close_all_conns(&mut self) {
        let idxs: Vec<usize> = self.ids.values().copied().collect();
        for idx in idxs {
            self.teardown(idx);
        }
    }

    /// Tear everything down and mark the loop finished.
    pub fn shutdown_now(&mut self) {
        self.shared.live.store(false, Ordering::Release);
        // Controls still queued will never be applied. An AddConn carries
        // a handler that was promised an eventual `on_close`; deliver it
        // now so its in-flight work fails fast. (Flag-then-drain pairs
        // with the liveness check in `Shared::push` — see there.)
        let leftover: Vec<Control> = match self.shared.q.lock() {
            Ok(mut q) => q.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        for c in leftover {
            if let Control::AddConn { mut handler, .. } = c {
                handler.on_close();
            }
        }
        self.close_all_conns();
        for idx in 0..self.slots.len() {
            if let Some(Some(Slot::Listener { sock, .. })) = self.slots.get(idx) {
                let _ = self.poller.delete(sock.as_raw_fd());
            }
            if let Some(entry) = self.slots.get_mut(idx) {
                *entry = None;
            }
        }
        self.shutdown = true;
    }

    fn teardown(&mut self, idx: usize) {
        let Some(Some(Slot::Conn(_))) = self.slots.get(idx) else {
            return;
        };
        let Some(Some(Slot::Conn(mut c))) = self.slots.get_mut(idx).map(Option::take) else {
            return;
        };
        let _ = self.poller.delete(c.sock.as_raw_fd());
        self.ids.remove(&c.id);
        self.pending_free.push(idx);
        if let Some(mut h) = c.handler.take() {
            h.on_close();
        }
    }

    /// Apply a handler's recorded output steps to its connection.
    fn apply_outbox(&mut self, idx: usize, out: Outbox) {
        if let Some(Some(Slot::Conn(c))) = self.slots.get_mut(idx) {
            for step in out.steps {
                c.outq.push_back(match step {
                    Step::Bytes(buf) => QStep::Bytes { buf, off: 0 },
                    Step::Delay(dur) => QStep::Delay { dur, until: None },
                    Step::Close => QStep::Close,
                });
            }
        }
        self.flush_conn(idx);
    }

    /// Drive a connection's write pipeline as far as it will go.
    fn flush_conn(&mut self, idx: usize) {
        let mut park: Option<(Instant, ConnId)> = None;
        let mut dead = false;
        let mut want_out = false;
        if let Some(Some(Slot::Conn(c))) = self.slots.get_mut(idx) {
            loop {
                match c.outq.front_mut() {
                    None => break,
                    Some(QStep::Delay { dur, until }) => {
                        let now = Instant::now();
                        match until {
                            None => {
                                let t = now + *dur;
                                *until = Some(t);
                                if !c.parked {
                                    c.parked = true;
                                    park = Some((t, c.id));
                                }
                                break;
                            }
                            Some(t) if *t <= now => {
                                c.parked = false;
                                c.outq.pop_front();
                            }
                            Some(_) => break,
                        }
                    }
                    Some(QStep::Bytes { buf, off }) => {
                        let mut done = false;
                        loop {
                            let chunk = buf.get(*off..).unwrap_or_default();
                            if chunk.is_empty() {
                                done = true;
                                break;
                            }
                            match c.sock.write(chunk) {
                                Ok(0) => {
                                    dead = true;
                                    break;
                                }
                                Ok(n) => *off = off.saturating_add(n),
                                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                                    want_out = true;
                                    break;
                                }
                                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                                Err(_) => {
                                    dead = true;
                                    break;
                                }
                            }
                        }
                        if dead || want_out {
                            break;
                        }
                        if done {
                            c.outq.pop_front();
                        }
                    }
                    Some(QStep::Close) => {
                        dead = true;
                        break;
                    }
                }
            }
        } else {
            return;
        }
        if let Some((when, id)) = park {
            self.arm_timer(when, TimerKind::Unpark(id));
        }
        if dead {
            self.teardown(idx);
        } else {
            self.update_interest(idx, want_out);
        }
    }

    fn update_interest(&mut self, idx: usize, want_out: bool) {
        if let Some(Some(Slot::Conn(c))) = self.slots.get_mut(idx) {
            let want = (!c.eof, want_out);
            if want != c.registered {
                c.registered = want;
                let _ = self
                    .poller
                    .modify(c.sock.as_raw_fd(), idx as u64, want.0, want.1);
            }
        }
    }

    /// Read everything available, then run the handler over new bytes and
    /// (once) over EOF.
    fn do_read(&mut self, idx: usize) {
        let mut got = false;
        let mut hit_eof = false;
        if let Some(Some(Slot::Conn(c))) = self.slots.get_mut(idx) {
            if c.eof {
                return;
            }
            loop {
                match c.sock.read(&mut self.scratch) {
                    Ok(0) => {
                        hit_eof = true;
                        break;
                    }
                    Ok(n) => {
                        c.inbuf
                            .extend_from_slice(self.scratch.get(..n).unwrap_or_default());
                        got = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        // Read errors (reset by peer, ...) end the read
                        // side; the handler decides what to flush back.
                        hit_eof = true;
                        break;
                    }
                }
            }
            if hit_eof {
                c.eof = true;
            }
        } else {
            return;
        }
        if got {
            self.run_handler(idx, false);
        }
        if hit_eof {
            self.run_handler(idx, true);
            self.update_interest(idx, false);
        }
    }

    /// Invoke the handler (data or EOF callback) with the connection's
    /// input buffer, then apply its outbox.
    fn run_handler(&mut self, idx: usize, eof: bool) {
        let taken = match self.slots.get_mut(idx) {
            Some(Some(Slot::Conn(c))) => {
                c.handler.take().map(|h| (h, std::mem::take(&mut c.inbuf)))
            }
            _ => None,
        };
        let Some((mut handler, mut inbuf)) = taken else {
            return;
        };
        let mut out = Outbox::default();
        if eof {
            handler.on_eof(&mut inbuf, &mut out);
        } else {
            handler.on_data(&mut inbuf, &mut out);
        }
        if let Some(Some(Slot::Conn(c))) = self.slots.get_mut(idx) {
            c.inbuf = inbuf;
            c.handler = Some(handler);
        }
        self.apply_outbox(idx, out);
    }

    fn do_accept(&mut self, idx: usize) {
        // Take the listener slot out so accepting can't alias the slot
        // vector while new connections are installed.
        let Some(slot @ Some(Slot::Listener { .. })) = self.slots.get_mut(idx).map(Option::take)
        else {
            return;
        };
        let Some(Slot::Listener { sock, mut acceptor }) = slot else {
            return;
        };
        loop {
            match sock.accept() {
                Ok((stream, peer)) => match acceptor.accept(peer) {
                    Some(handler) => {
                        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
                        let _ = self.install_conn(id, stream, handler);
                    }
                    None => drop(stream),
                },
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        if let Some(entry) = self.slots.get_mut(idx) {
            *entry = Some(Slot::Listener { sock, acceptor });
        }
    }

    fn drain_controls(&mut self) -> bool {
        let drained: Vec<Control> = match self.shared.q.lock() {
            Ok(mut q) => q.drain(..).collect(),
            Err(_) => Vec::new(),
        };
        let any = !drained.is_empty();
        for c in drained {
            match c {
                Control::AddConn {
                    id,
                    stream,
                    handler,
                } => {
                    let _ = self.install_conn(id, stream, handler);
                }
                Control::Send { id, bytes } => self.send(id, bytes),
                Control::CloseConn { id } => self.close(id),
                Control::CloseAll => self.close_all_conns(),
                Control::After { delay, cb } => {
                    self.arm_timer(Instant::now() + delay, TimerKind::Call(cb))
                }
                Control::Shutdown => self.shutdown_now(),
            }
            if self.shutdown {
                return true;
            }
        }
        any
    }

    fn fire_timers(&mut self) -> bool {
        let mut fired = false;
        loop {
            let due = match self.timers.peek() {
                Some(t) => t.when <= Instant::now(),
                None => false,
            };
            if !due {
                break;
            }
            let Some(entry) = self.timers.pop() else {
                break;
            };
            fired = true;
            match entry.kind {
                TimerKind::Unpark(id) => {
                    if let Some(&idx) = self.ids.get(&id) {
                        self.flush_conn(idx);
                    }
                }
                TimerKind::Call(cb) => cb(self),
            }
            if self.shutdown {
                break;
            }
        }
        fired
    }

    /// Run one iteration: drain controls, wait for events up to `timeout`
    /// (bounded further by the nearest timer), dispatch, fire due timers.
    /// Returns whether anything happened (events, timers, or controls).
    pub fn turn(&mut self, timeout: Option<Duration>) -> io::Result<bool> {
        if self.shutdown {
            return Ok(false);
        }
        self.free.append(&mut self.pending_free);
        let mut progress = self.drain_controls();
        if self.shutdown {
            return Ok(progress);
        }

        let now = Instant::now();
        let timer_gap = self.timers.peek().map(|t| {
            if t.when <= now {
                Duration::ZERO
            } else {
                t.when - now
            }
        });
        let eff = match (timeout, timer_gap) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        };

        self.events.clear();
        let mut events = std::mem::take(&mut self.events);
        self.poller.wait(eff, |ev| events.push(ev))?;
        for ev in &events {
            progress = true;
            if ev.token == WAKER_TOKEN {
                let mut sink = [0u8; 64];
                while let Ok(n) = self.wake_rx.read(&mut sink) {
                    if n < sink.len() {
                        break;
                    }
                }
                continue;
            }
            let idx = match usize::try_from(ev.token) {
                Ok(i) => i,
                Err(_) => continue,
            };
            match self.slots.get(idx) {
                Some(Some(Slot::Listener { .. })) => self.do_accept(idx),
                Some(Some(Slot::Conn(_))) => {
                    if ev.readable {
                        self.do_read(idx);
                    }
                    if ev.writable {
                        self.flush_conn(idx);
                    }
                }
                _ => {}
            }
            if self.shutdown {
                break;
            }
        }
        events.clear();
        self.events = events;
        if self.shutdown {
            return Ok(progress);
        }

        // Controls queued by handlers or arriving during the wait.
        progress |= self.drain_controls();
        if !self.shutdown {
            progress |= self.fire_timers();
        }
        Ok(progress)
    }

    /// Move the loop onto a dedicated thread. Use [`ReactorThread::handle`]
    /// to talk to it and [`ReactorThread::shutdown`] (or drop) to stop it.
    pub fn spawn(mut self) -> ReactorThread {
        let handle = self.handle();
        let join = std::thread::Builder::new()
            .name("reactor".into())
            .spawn(move || {
                while !self.shutdown {
                    if self.turn(None).is_err() {
                        self.shutdown_now();
                    }
                }
            })
            .expect("spawn reactor thread");
        ReactorThread {
            handle,
            join: Some(join),
        }
    }
}

/// A reactor running on its own thread.
pub struct ReactorThread {
    handle: Handle,
    join: Option<std::thread::JoinHandle<()>>,
}

impl ReactorThread {
    /// Cross-thread handle to the loop.
    pub fn handle(&self) -> Handle {
        self.handle.clone()
    }

    /// Stop the loop and join its thread (idempotent).
    pub fn shutdown(&mut self) {
        self.handle.shutdown();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for ReactorThread {
    fn drop(&mut self) {
        self.shutdown();
    }
}
