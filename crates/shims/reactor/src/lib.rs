//! In-tree epoll event loop for the event-driven servers and the
//! multiplexed client transport.
//!
//! No registry dependencies: the epoll/rlimit syscalls are bound directly
//! against glibc in [`sys`], the same discipline as the other shims. The
//! public surface is:
//!
//! * [`Reactor`] — the loop itself: listeners, per-connection read/write
//!   state machines, a timer heap, and a self-pipe waker. Drive it
//!   deterministically with [`Reactor::turn`] in tests, or move it to a
//!   background thread with [`Reactor::spawn`].
//! * [`ConnHandler`] / [`Acceptor`] — protocol callbacks. Handlers consume
//!   complete frames from the input buffer and queue replies on an
//!   [`Outbox`]; they must never block (see the `blocking-in-reactor`
//!   xlint rule).
//! * [`Handle`] — cloneable cross-thread access: add connections, send,
//!   close, schedule timers, shut down.
//! * [`sys::raise_nofile`] — lift the fd ceiling for C10K-scale tests.

mod event_loop;
mod poll;
pub mod sys;

pub use event_loop::{
    Acceptor, ConnHandler, ConnId, Handle, Outbox, Reactor, ReactorThread, DEFAULT_ACCEPT_BACKLOG,
};
pub use poll::{Event, Poller};
