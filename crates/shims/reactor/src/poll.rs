//! Safe wrapper around one epoll instance.

use crate::sys;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

/// One readiness event delivered by [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable (or a pending error/hangup, which also wakes readers).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup condition on the fd.
    pub hangup: bool,
}

/// An epoll instance plus the event buffer it fills.
pub struct Poller {
    epfd: RawFd,
    buf: Vec<sys::EpollEvent>,
}

impl Poller {
    /// Create an epoll instance sized for `capacity` events per wait.
    pub fn new(capacity: usize) -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::create()?,
            buf: vec![sys::EpollEvent { events: 0, data: 0 }; capacity.clamp(16, 4096)],
        })
    }

    fn mask(readable: bool, writable: bool) -> u32 {
        let mut m = sys::EPOLLRDHUP;
        if readable {
            m |= sys::EPOLLIN;
        }
        if writable {
            m |= sys::EPOLLOUT;
        }
        m
    }

    /// Register `fd` with interest flags and a caller token.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        sys::ctl(
            self.epfd,
            sys::EPOLL_CTL_ADD,
            fd,
            Self::mask(readable, writable),
            token,
        )
    }

    /// Change `fd`'s interest flags.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        sys::ctl(
            self.epfd,
            sys::EPOLL_CTL_MOD,
            fd,
            Self::mask(readable, writable),
            token,
        )
    }

    /// Deregister `fd`.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Block for readiness up to `timeout` (`None` = indefinitely) and
    /// invoke `sink` for each event.
    pub fn wait(
        &mut self,
        timeout: Option<Duration>,
        mut sink: impl FnMut(Event),
    ) -> io::Result<usize> {
        // Nanosecond-precision wait: timer deadlines (delayed sends carry
        // injected sub-millisecond WAN latency) must not be quantized up
        // to epoll's millisecond tick. See sys::wait_ns.
        let n = sys::wait_ns(self.epfd, &mut self.buf, timeout)?;
        for ev in self.buf.iter().take(n) {
            let bits = ev.events;
            sink(Event {
                token: ev.data,
                readable: bits & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP | sys::EPOLLRDHUP)
                    != 0,
                writable: bits & sys::EPOLLOUT != 0,
                hangup: bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn readiness_round_trip() {
        let mut poller = Poller::new(64).expect("poller");
        let (mut a, b) = UnixStream::pair().expect("pair");
        b.set_nonblocking(true).expect("nonblocking");
        poller.add(b.as_raw_fd(), 7, true, false).expect("add");

        // Nothing pending: zero events at a short timeout.
        let n = poller
            .wait(Some(Duration::from_millis(10)), |_| {})
            .expect("wait");
        assert_eq!(n, 0);

        a.write_all(b"x").expect("write");
        let mut seen = Vec::new();
        poller
            .wait(Some(Duration::from_millis(1000)), |ev| seen.push(ev))
            .expect("wait");
        assert_eq!(seen.len(), 1);
        assert_eq!(seen.first().map(|e| e.token), Some(7));
        assert!(seen.first().is_some_and(|e| e.readable));

        poller.delete(b.as_raw_fd()).expect("del");
    }
}
