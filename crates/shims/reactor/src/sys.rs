//! Raw Linux syscall bindings for the reactor.
//!
//! The build environment has no registry access, so there is no `libc`
//! crate to lean on; these are direct `extern "C"` declarations against
//! glibc (which std already links). Everything `unsafe` in the reactor
//! lives behind the safe wrappers in this module.

use std::io;

/// `epoll_create1` flag: close-on-exec.
pub const EPOLL_CLOEXEC: i32 = 0o2000000;

/// `epoll_ctl` op: register a new fd.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: deregister an fd.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: change an fd's event mask.
pub const EPOLL_CTL_MOD: i32 = 3;

/// Readable.
pub const EPOLLIN: u32 = 0x001;
/// Writable.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, need not be requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, need not be requested).
pub const EPOLLHUP: u32 = 0x010;
/// Peer shut down its write side.
pub const EPOLLRDHUP: u32 = 0x2000;

/// `setrlimit`/`getrlimit` resource id for the open-fd ceiling.
const RLIMIT_NOFILE: i32 = 7;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs this
/// to 12 bytes (no padding between `events` and `data`), which is what
/// `repr(C, packed)` produces on every architecture — matching the
/// layout glibc's header forces with `__attribute__((packed))`.
#[repr(C, packed)]
#[derive(Clone, Copy)]
pub struct EpollEvent {
    /// Event mask (`EPOLLIN` | ...).
    pub events: u32,
    /// Caller-owned token echoed back on readiness.
    pub data: u64,
}

/// `struct rlimit` (64-bit fields on LP64 Linux).
#[repr(C)]
#[derive(Clone, Copy)]
struct RLimit {
    rlim_cur: u64,
    rlim_max: u64,
}

/// `struct __kernel_timespec` for [`epoll_pwait2`]: 64-bit fields on
/// every ABI.
#[repr(C)]
struct KernelTimespec {
    tv_sec: i64,
    tv_nsec: i64,
}

/// `epoll_pwait2` syscall number. Syscalls added after the asm-generic
/// unification share one number across x86-64, aarch64, and riscv64.
const SYS_EPOLL_PWAIT2: i64 = 441;

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
    fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
    fn listen(sockfd: i32, backlog: i32) -> i32;
    fn syscall(num: i64, ...) -> i64;
}

/// Create an epoll instance (close-on-exec).
pub fn create() -> io::Result<i32> {
    // SAFETY: epoll_create1 takes no pointers; a negative return is the
    // only failure mode and is converted to an io::Error below.
    let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
    if fd < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(fd)
}

/// Register/modify/deregister `fd` on epoll instance `epfd`.
pub fn ctl(epfd: i32, op: i32, fd: i32, events: u32, token: u64) -> io::Result<()> {
    let mut ev = EpollEvent {
        events,
        data: token,
    };
    // SAFETY: `ev` outlives the call; the kernel copies it before
    // returning. `epfd` and `fd` are fds this process owns.
    let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Wait for readiness events. `timeout_ms < 0` blocks indefinitely.
/// Retries on EINTR. Returns the filled prefix of `buf`.
pub fn wait(epfd: i32, buf: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
    loop {
        let cap = i32::try_from(buf.len()).unwrap_or(i32::MAX).max(1);
        // SAFETY: `buf` is valid for `cap` entries for the duration of the
        // call; the kernel writes at most `cap` entries.
        let n = unsafe { epoll_wait(epfd, buf.as_mut_ptr(), cap, timeout_ms) };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        return Err(err);
    }
}

/// Whether `epoll_pwait2` is known-unavailable (pre-5.11 kernel). Checked
/// once, then [`wait_ns`] degrades to millisecond `epoll_wait` for good.
static PWAIT2_UNAVAILABLE: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Wait for readiness events with a nanosecond-precision timeout, via the
/// `epoll_pwait2` syscall. Millisecond `epoll_wait` can only round a
/// timeout *up* to the next tick, which makes every sub-millisecond timer
/// (injected WAN delays are hundreds of microseconds) fire ~1ms late —
/// visible as a wholesale latency shift versus the thread-per-connection
/// servers' `thread::sleep`. `None` blocks indefinitely. Retries on EINTR;
/// falls back to [`wait`] (rounding up) on kernels without the syscall.
pub fn wait_ns(
    epfd: i32,
    buf: &mut [EpollEvent],
    timeout: Option<std::time::Duration>,
) -> io::Result<usize> {
    use std::sync::atomic::Ordering;

    let to_ms = |d: std::time::Duration| {
        // Round up so a 100µs timer doesn't busy-spin at timeout 0.
        let ms = d
            .as_millis()
            .saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0));
        i32::try_from(ms).unwrap_or(i32::MAX)
    };
    if PWAIT2_UNAVAILABLE.load(Ordering::Relaxed) {
        return wait(epfd, buf, timeout.map_or(-1, to_ms));
    }
    let ts = timeout.map(|d| KernelTimespec {
        tv_sec: i64::try_from(d.as_secs()).unwrap_or(i64::MAX),
        tv_nsec: i64::from(d.subsec_nanos()),
    });
    let ts_ptr = ts
        .as_ref()
        .map_or(std::ptr::null(), |t| t as *const KernelTimespec);
    loop {
        let cap = i32::try_from(buf.len()).unwrap_or(i32::MAX).max(1);
        // SAFETY: `buf` is valid for `cap` entries; `ts` (when present)
        // outlives the call; the null sigmask means "don't touch the
        // signal mask", under which the trailing sigsetsize is ignored.
        let n = unsafe {
            syscall(
                SYS_EPOLL_PWAIT2,
                epfd,
                buf.as_mut_ptr(),
                cap,
                ts_ptr,
                std::ptr::null::<u8>(),
                0usize,
            )
        };
        if n >= 0 {
            return Ok(n as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            continue;
        }
        if err.raw_os_error() == Some(38) {
            // ENOSYS: kernel predates epoll_pwait2 (5.11). Remember and
            // degrade to millisecond granularity.
            PWAIT2_UNAVAILABLE.store(true, Ordering::Relaxed);
            return wait(epfd, buf, timeout.map_or(-1, to_ms));
        }
        return Err(err);
    }
}

/// Re-issue `listen(2)` on an already-listening socket to resize its
/// accept backlog. `std::net::TcpListener::bind` hardcodes a backlog of
/// 128; under a connection burst the kernel drops (or SYN-cookies) the
/// overflow, which shows up as client-side connect timeouts long before
/// the event loop is actually saturated. Linux applies the new backlog to
/// an established listener in place.
pub fn set_listen_backlog(fd: i32, backlog: i32) -> io::Result<()> {
    // SAFETY: `listen` takes no pointers; `fd` is a listening socket owned
    // by the caller, and a negative return is the only failure mode.
    let rc = unsafe { listen(fd, backlog.max(1)) };
    if rc < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(())
}

/// Close an fd obtained from [`create`].
pub fn close_fd(fd: i32) {
    // SAFETY: called exactly once per fd, from the Poller's Drop.
    let _ = unsafe { close(fd) };
}

/// Raise `RLIMIT_NOFILE`'s soft limit toward `want` (clamped to the hard
/// limit). Returns the resulting soft limit. Used by C10K-scale tests so
/// ten thousand sockets don't trip the default 1024-fd ceiling.
pub fn raise_nofile(want: u64) -> io::Result<u64> {
    let mut lim = RLimit {
        rlim_cur: 0,
        rlim_max: 0,
    };
    // SAFETY: `lim` is a valid, writable rlimit struct.
    if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } < 0 {
        return Err(io::Error::last_os_error());
    }
    if lim.rlim_cur >= want {
        return Ok(lim.rlim_cur);
    }
    if want > lim.rlim_max {
        // With CAP_SYS_RESOURCE (CI containers run as root) the hard limit
        // itself can move; without the capability this fails and we fall
        // back to clamping against the existing hard limit.
        let bumped = RLimit {
            rlim_cur: want,
            rlim_max: want,
        };
        // SAFETY: `bumped` is a valid rlimit struct.
        if unsafe { setrlimit(RLIMIT_NOFILE, &bumped) } == 0 {
            return Ok(want);
        }
    }
    let target = want.min(lim.rlim_max);
    let new = RLimit {
        rlim_cur: target,
        rlim_max: lim.rlim_max,
    };
    // SAFETY: `new` is a valid rlimit struct; raising the soft limit up to
    // the hard limit needs no privilege.
    if unsafe { setrlimit(RLIMIT_NOFILE, &new) } < 0 {
        return Err(io::Error::last_os_error());
    }
    Ok(target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoll_event_layout_matches_kernel_abi() {
        assert_eq!(std::mem::size_of::<EpollEvent>(), 12);
        assert_eq!(std::mem::align_of::<EpollEvent>(), 1);
    }

    #[test]
    fn create_and_close() {
        let fd = create().expect("epoll_create1");
        assert!(fd >= 0);
        close_fd(fd);
    }

    #[test]
    fn raise_nofile_is_monotone() {
        let cur = raise_nofile(0).expect("getrlimit");
        let after = raise_nofile(cur).expect("no-op raise");
        assert!(after >= cur);
    }
}
