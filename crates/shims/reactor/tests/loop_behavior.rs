//! Behavior tests for the reactor: echo round trips, ordered delayed
//! writes, refusal, severing, deterministic stepping, and timers.

use reactor::{ConnHandler, Outbox, Reactor};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Newline-delimited echo: replies `ok:<line>\n` per line, closes on "quit".
struct Echo {
    closed: Arc<AtomicUsize>,
}

impl ConnHandler for Echo {
    fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut Outbox) {
        while let Some(pos) = inbuf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = inbuf.drain(..=pos).collect();
            let text = String::from_utf8_lossy(&line);
            let text = text.trim_end();
            if text == "quit" {
                out.close();
                return;
            }
            out.send(format!("ok:{text}\n"));
        }
    }

    fn on_close(&mut self) {
        self.closed.fetch_add(1, Ordering::SeqCst);
    }
}

fn step_until(r: &mut Reactor, deadline: Duration, mut done: impl FnMut() -> bool) {
    let t0 = Instant::now();
    while !done() {
        assert!(t0.elapsed() < deadline, "deterministic loop timed out");
        r.turn(Some(Duration::from_millis(10))).expect("turn");
    }
}

#[test]
fn deterministic_echo_round_trip() {
    let closed = Arc::new(AtomicUsize::new(0));
    let mut r = Reactor::new().expect("reactor");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let c2 = closed.clone();
    r.listen(listener, move |_peer| {
        Some(Box::new(Echo { closed: c2.clone() }) as Box<dyn ConnHandler>)
    })
    .expect("listen");

    let mut client = TcpStream::connect(addr).expect("connect");
    client.set_nonblocking(true).expect("nonblocking");
    client.write_all(b"hello\nworld\n").expect("write");

    let mut got = Vec::new();
    step_until(&mut r, Duration::from_secs(5), || {
        let mut buf = [0u8; 256];
        match client.read(&mut buf) {
            Ok(n) => got.extend_from_slice(&buf[..n]),
            Err(_) => {}
        }
        got == b"ok:hello\nok:world\n"
    });

    client.write_all(b"quit\n").expect("write quit");
    let t0 = Instant::now();
    while r.conn_count() > 0 {
        assert!(t0.elapsed() < Duration::from_secs(5), "conn never closed");
        r.turn(Some(Duration::from_millis(10))).expect("turn");
    }
    assert_eq!(closed.load(Ordering::SeqCst), 1);
}

#[test]
fn background_mode_echo() {
    let closed = Arc::new(AtomicUsize::new(0));
    let mut r = Reactor::new().expect("reactor");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let c2 = closed.clone();
    r.listen(listener, move |_peer| {
        Some(Box::new(Echo { closed: c2.clone() }) as Box<dyn ConnHandler>)
    })
    .expect("listen");
    let mut rt = r.spawn();

    let mut client = TcpStream::connect(addr).expect("connect");
    client.write_all(b"ping\n").expect("write");
    let mut buf = [0u8; 8];
    client.read_exact(&mut buf).expect("read");
    assert_eq!(&buf, b"ok:ping\n");

    rt.shutdown();
    // After shutdown the severed socket reads EOF.
    let mut rest = Vec::new();
    let _ = client.read_to_end(&mut rest);
    assert!(rest.is_empty());
}

/// Delay steps hold back everything queued after them, in order.
struct DelayedReply;

impl ConnHandler for DelayedReply {
    fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut Outbox) {
        if inbuf.iter().any(|&b| b == b'\n') {
            inbuf.clear();
            out.send("first|");
            out.delay(Duration::from_millis(80));
            out.send("second|");
            out.delay(Duration::from_millis(80));
            out.send("third");
            out.close();
        }
    }
}

#[test]
fn write_pipeline_orders_delays_and_bytes() {
    let mut r = Reactor::new().expect("reactor");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    r.listen(listener, move |_peer| {
        Some(Box::new(DelayedReply) as Box<dyn ConnHandler>)
    })
    .expect("listen");
    let mut rt = r.spawn();

    let t0 = Instant::now();
    let mut client = TcpStream::connect(addr).expect("connect");
    client.write_all(b"go\n").expect("write");
    let mut all = Vec::new();
    client.read_to_end(&mut all).expect("read to close");
    let elapsed = t0.elapsed();
    assert_eq!(all, b"first|second|third");
    assert!(
        elapsed >= Duration::from_millis(150),
        "delays should gate later chunks: {elapsed:?}"
    );
    rt.shutdown();
}

#[test]
fn acceptor_refusal_severs_before_io() {
    let mut r = Reactor::new().expect("reactor");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    r.listen(listener, move |_peer| None::<Box<dyn ConnHandler>>)
        .expect("listen");
    let mut rt = r.spawn();

    let mut client = TcpStream::connect(addr).expect("connect");
    let mut buf = Vec::new();
    // Refused connections read EOF (or reset) without any bytes.
    let _ = client.read_to_end(&mut buf);
    assert!(buf.is_empty());
    rt.shutdown();
}

#[test]
fn close_all_conns_severs_in_flight() {
    let closed = Arc::new(AtomicUsize::new(0));
    let mut r = Reactor::new().expect("reactor");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let c2 = closed.clone();
    r.listen(listener, move |_peer| {
        Some(Box::new(Echo { closed: c2.clone() }) as Box<dyn ConnHandler>)
    })
    .expect("listen");
    let mut rt = r.spawn();
    let handle = rt.handle();

    let mut a = TcpStream::connect(addr).expect("connect a");
    let mut b = TcpStream::connect(addr).expect("connect b");
    a.write_all(b"one\n").expect("write");
    let mut buf = [0u8; 7];
    a.read_exact(&mut buf).expect("reply");

    handle.close_all_conns();
    let mut rest = Vec::new();
    let _ = a.read_to_end(&mut rest);
    assert!(rest.is_empty());
    let mut rest_b = Vec::new();
    let _ = b.read_to_end(&mut rest_b);
    assert!(rest_b.is_empty());
    assert_eq!(closed.load(Ordering::SeqCst), 2);

    // Listener still accepts after the purge.
    let mut c = TcpStream::connect(addr).expect("reconnect");
    c.write_all(b"again\n").expect("write");
    let mut buf = [0u8; 9];
    c.read_exact(&mut buf).expect("reply after purge");
    assert_eq!(&buf, b"ok:again\n");
    rt.shutdown();
}

#[test]
fn timers_fire_in_deadline_order() {
    let mut r = Reactor::new().expect("reactor");
    let fired = Arc::new(std::sync::Mutex::new(Vec::new()));
    let (f1, f2, f3) = (fired.clone(), fired.clone(), fired.clone());
    r.after(Duration::from_millis(60), move |_| {
        if let Ok(mut v) = f1.lock() {
            v.push(3);
        }
    });
    r.after(Duration::from_millis(20), move |_| {
        if let Ok(mut v) = f2.lock() {
            v.push(1);
        }
    });
    r.after(Duration::from_millis(40), move |_| {
        if let Ok(mut v) = f3.lock() {
            v.push(2);
        }
    });
    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_millis(500) {
        r.turn(Some(Duration::from_millis(10))).expect("turn");
        if fired.lock().map(|v| v.len() == 3).unwrap_or(false) {
            break;
        }
    }
    assert_eq!(*fired.lock().expect("lock"), vec![1, 2, 3]);
}

#[test]
fn handle_after_runs_on_loop_thread() {
    let r = Reactor::new().expect("reactor");
    let mut rt = r.spawn();
    let handle = rt.handle();
    let hit = Arc::new(AtomicUsize::new(0));
    let h2 = hit.clone();
    handle.after(Duration::from_millis(10), move |_| {
        h2.fetch_add(1, Ordering::SeqCst);
    });
    let t0 = Instant::now();
    while hit.load(Ordering::SeqCst) == 0 && t0.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(hit.load(Ordering::SeqCst), 1);
    rt.shutdown();
    assert!(!handle.is_live());
}

/// Partial-frame bytes surface to `on_eof` so protocol code can produce
/// the same truncation errors as its blocking reader.
struct EofCapture {
    leftover: Arc<std::sync::Mutex<Vec<u8>>>,
}

impl ConnHandler for EofCapture {
    fn on_data(&mut self, _inbuf: &mut Vec<u8>, _out: &mut Outbox) {}

    fn on_eof(&mut self, inbuf: &mut Vec<u8>, out: &mut Outbox) {
        if let Ok(mut g) = self.leftover.lock() {
            g.extend_from_slice(inbuf);
        }
        out.close();
    }
}

#[test]
fn eof_delivers_partial_frame_bytes() {
    let leftover = Arc::new(std::sync::Mutex::new(Vec::new()));
    let mut r = Reactor::new().expect("reactor");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let l2 = leftover.clone();
    r.listen(listener, move |_peer| {
        Some(Box::new(EofCapture {
            leftover: l2.clone(),
        }) as Box<dyn ConnHandler>)
    })
    .expect("listen");

    let mut client = TcpStream::connect(addr).expect("connect");
    client.write_all(b"trunc").expect("write");
    drop(client);

    let t0 = Instant::now();
    while t0.elapsed() < Duration::from_secs(5) {
        r.turn(Some(Duration::from_millis(10))).expect("turn");
        if leftover.lock().map(|g| !g.is_empty()).unwrap_or(false) && r.conn_count() == 0 {
            break;
        }
    }
    assert_eq!(&*leftover.lock().expect("lock"), b"trunc");
}

#[test]
fn burst_of_connects_is_drained_per_readiness_event() {
    // A single readiness event on the listener must accept every pending
    // connection (the accept loop drains to WouldBlock), and the resized
    // backlog must hold a burst well past std's 128 default without
    // refusing anyone. All sockets connect before the reactor takes a
    // single turn, so the kernel queue alone absorbs the burst.
    const BURST: usize = 200;
    let closed = Arc::new(AtomicUsize::new(0));
    let mut r = Reactor::new().expect("reactor");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let c2 = closed.clone();
    r.listen_with_backlog(
        listener,
        move |_peer| Some(Box::new(Echo { closed: c2.clone() }) as Box<dyn ConnHandler>),
        512,
    )
    .expect("listen");

    let mut clients = Vec::with_capacity(BURST);
    for _ in 0..BURST {
        clients.push(TcpStream::connect(addr).expect("connect burst"));
    }

    let t0 = Instant::now();
    while r.conn_count() < BURST {
        assert!(
            t0.elapsed() < Duration::from_secs(10),
            "accept burst stalled"
        );
        r.turn(Some(Duration::from_millis(10))).expect("turn");
    }

    // Every one of them is really served, not just parked in a slot.
    for client in &mut clients {
        client.write_all(b"ping\n").expect("write");
    }
    let mut answered = 0usize;
    let t0 = Instant::now();
    let mut buf = [0u8; 16];
    for client in &mut clients {
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        loop {
            r.turn(Some(Duration::from_millis(1))).expect("turn");
            match client.read(&mut buf) {
                Ok(n) if n > 0 => {
                    answered += 1;
                    break;
                }
                Ok(_) => panic!("peer closed"),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    assert!(t0.elapsed() < Duration::from_secs(20), "echo burst stalled");
                }
                Err(e) => panic!("read: {e}"),
            }
        }
    }
    assert_eq!(answered, BURST);
}
