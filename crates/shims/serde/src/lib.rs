//! Offline shim for `serde`.
//!
//! The registry is unreachable in this build environment, so the workspace
//! carries a small self-contained serialization framework with serde's
//! surface: `Serialize`/`Deserialize` traits, a derive macro, and (in the
//! sibling `serde_json` shim) JSON text encoding that follows serde_json's
//! conventions — structs as objects, tuples as arrays, unit enum variants
//! as strings, newtype variants as single-key objects, `Vec<u8>` as number
//! arrays — so data persisted by earlier builds keeps parsing.
//!
//! Instead of serde's visitor architecture, both traits go through an
//! intermediate [`Value`] tree. That costs an allocation per node, which is
//! irrelevant at the rates this workspace serializes (monitor reports, SQL
//! wire frames, WAL records).

use std::fmt;

pub use serde_derive_shim::{Deserialize, Serialize};

/// A dynamically typed serialization tree (JSON data model plus an i64/u64
/// split so 64-bit etags round-trip exactly).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (any JSON integer that fits i64).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object slice.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Borrow as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Borrow as a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Short description for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl fmt::Display for Value {
    /// Compact JSON rendering (serde_json's conventions: integers without a
    /// fractional part, integral floats with ".0", non-finite floats as
    /// `null`, control characters escaped).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
            f.write_str("\"")?;
            for c in s.chars() {
                match c {
                    '"' => f.write_str("\\\"")?,
                    '\\' => f.write_str("\\\\")?,
                    '\n' => f.write_str("\\n")?,
                    '\r' => f.write_str("\\r")?,
                    '\t' => f.write_str("\\t")?,
                    c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
                    c => write!(f, "{c}")?,
                }
            }
            f.write_str("\"")
        }
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(true) => f.write_str("true"),
            Value::Bool(false) => f.write_str("false"),
            Value::Int(n) => write!(f, "{n}"),
            Value::UInt(n) => write!(f, "{n}"),
            Value::Float(x) => {
                if !x.is_finite() {
                    f.write_str("null")
                } else if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::String(s) => write_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_string(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// Build an error from anything displayable.
    pub fn msg(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types convertible to a [`Value`] tree.
pub trait Serialize {
    /// Convert to the serialization tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct from the serialization tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitive impls ----

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Value, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::msg(format!("expected bool, found {}", other.kind()))),
        }
    }
}

macro_rules! impl_serde_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n: i64 = match v {
                    Value::Int(n) => *n,
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| Error::msg("integer out of range"))?,
                    other => {
                        return Err(Error::msg(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_serde_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(n) => Value::Int(n),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, Error> {
                let n: u64 = match v {
                    Value::Int(n) => u64::try_from(*n)
                        .map_err(|_| Error::msg("negative integer for unsigned field"))?,
                    Value::UInt(n) => *n,
                    other => {
                        return Err(Error::msg(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
impl_serde_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(n) => Ok(*n as f64),
            Value::UInt(n) => Ok(*n as f64),
            other => Err(Error::msg(format!(
                "expected number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::msg(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(inner) => inner.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::msg(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Box<T>, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+ );)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v
                    .as_array()
                    .ok_or_else(|| Error::msg(format!("expected tuple array, found {}", v.kind())))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::msg(format!(
                        "expected {expected}-tuple, found array of {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

/// Look up a field in an object's pairs (derive-macro helper).
pub fn field<'a>(pairs: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    pairs.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

/// "missing field" error (derive-macro helper).
pub fn missing_field(ty: &str, name: &str) -> Error {
    Error::msg(format!("missing field `{name}` while deserializing {ty}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_round_trips_above_i64_max() {
        let big: u64 = u64::MAX - 3;
        let v = big.to_value();
        assert_eq!(v, Value::UInt(big));
        assert_eq!(u64::from_value(&v).unwrap(), big);
        assert!(i64::from_value(&v).is_err());
    }

    #[test]
    fn tuples_are_arrays() {
        let v = (1u8, "x".to_string()).to_value();
        assert_eq!(
            v,
            Value::Array(vec![Value::Int(1), Value::String("x".into())])
        );
        let back: (u8, String) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, (1, "x".to_string()));
    }

    #[test]
    fn option_null_round_trip() {
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Some(5u32).to_value(), Value::Int(5));
    }

    #[test]
    fn wrong_kind_errors_are_descriptive() {
        let err = bool::from_value(&Value::Int(1)).unwrap_err();
        assert!(err.to_string().contains("expected bool"));
    }
}
