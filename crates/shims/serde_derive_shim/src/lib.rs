//! `derive(Serialize, Deserialize)` for the offline serde shim.
//!
//! Implemented directly on `proc_macro::TokenTree` (no syn/quote — the
//! build environment has no registry access). Supports exactly the type
//! shapes this workspace derives:
//!
//! * structs with named fields (honouring `#[serde(default)]`),
//! * tuple/newtype structs,
//! * enums of unit, newtype and tuple variants (honouring
//!   `#[serde(rename = "...")]`).
//!
//! Generics and struct-variant enums are rejected with a compile error
//! rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive the shim's `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derive the shim's `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = if serialize {
        gen_serialize(&item)
    } else {
        gen_deserialize(&item)
    };
    code.parse().expect("derive shim generated invalid Rust")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal error")
}

// ---- a tiny item model ----

struct Field {
    name: String,
    default: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
}

struct Variant {
    name: String,
    rename: Option<String>,
    kind: VariantKind,
}

impl Variant {
    fn tag(&self) -> &str {
        self.rename.as_deref().unwrap_or(&self.name)
    }
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---- parsing ----

/// Attributes seen while scanning: the serde ones we honour.
#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    rename: Option<String>,
}

/// Consume leading `#[...]` attributes from `tokens[*pos]`, collecting
/// `#[serde(...)]` contents.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> Result<SerdeAttrs, String> {
    let mut attrs = SerdeAttrs::default();
    while let Some(TokenTree::Punct(p)) = tokens.get(*pos) {
        if p.as_char() != '#' {
            break;
        }
        let Some(TokenTree::Group(group)) = tokens.get(*pos + 1) else {
            return Err("malformed attribute".into());
        };
        parse_serde_attr(&group.stream(), &mut attrs)?;
        *pos += 2;
    }
    Ok(attrs)
}

/// Parse the inside of one `[...]` attribute; records serde(default) and
/// serde(rename = "...").
fn parse_serde_attr(stream: &TokenStream, attrs: &mut SerdeAttrs) -> Result<(), String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(ident)) if ident.to_string() == "serde" => {}
        _ => return Ok(()), // doc comments, derives on the item, etc.
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return Err("expected serde(...)".into());
    };
    let args: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut i = 0;
    while i < args.len() {
        match &args[i] {
            TokenTree::Ident(ident) if ident.to_string() == "default" => {
                attrs.default = true;
                i += 1;
            }
            TokenTree::Ident(ident) if ident.to_string() == "rename" => {
                let Some(TokenTree::Literal(lit)) = args.get(i + 2) else {
                    return Err("expected rename = \"...\"".into());
                };
                let text = lit.to_string();
                attrs.rename = Some(text.trim_matches('"').to_string());
                i += 3;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => {
                return Err(format!(
                    "unsupported serde attribute `{other}` (shim supports default, rename)"
                ))
            }
        }
    }
    Ok(())
}

/// Skip `pub` / `pub(...)` visibility.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if let Some(TokenTree::Ident(ident)) = tokens.get(*pos) {
        if ident.to_string() == "pub" {
            *pos += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *pos += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    take_attrs(&tokens, &mut pos)?;
    skip_visibility(&tokens, &mut pos);

    let keyword = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    pos += 1;
    let name = match tokens.get(pos) {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    pos += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(&g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("unsupported struct body {other:?}")),
        },
        "enum" => match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(&g.stream())?)
            }
            other => return Err(format!("unsupported enum body {other:?}")),
        },
        other => return Err(format!("cannot derive serde for `{other}` items")),
    };
    Ok(Item { name, shape })
}

/// Parse `name: Type, ...` named fields, honouring `#[serde(default)]`.
fn parse_named_fields(stream: &TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos)?;
        skip_visibility(&tokens, &mut pos);
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        pos += 1;
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => {
                return Err(format!(
                    "expected `:` after field `{name}`, found {other:?}"
                ))
            }
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field {
            name,
            default: attrs.default,
        });
    }
    Ok(fields)
}

/// Skip one type expression: consume until a top-level (angle-depth 0) `,`.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(token) = tokens.get(*pos) {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    *pos += 1;
                    return;
                }
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Count tuple-struct / tuple-variant fields (top-level comma count).
fn count_tuple_fields(stream: &TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for token in &tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

fn parse_variants(stream: &TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos)?;
        let name = match tokens.get(pos) {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                return Err(format!(
                    "serde shim derive does not support struct variant `{name}`"
                ));
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(pos) {
            if p.as_char() == ',' {
                pos += 1;
            }
        }
        variants.push(Variant {
            name,
            rename: attrs.rename,
            kind,
        });
    }
    Ok(variants)
}

// ---- code generation ----

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{0}\".to_string(), ::serde::Serialize::to_value(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let tag = v.tag();
                    match v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{0} => ::serde::Value::String(\"{tag}\".to_string()),",
                            v.name
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{0}(x0) => ::serde::Value::Object(vec![(\"{tag}\".to_string(), ::serde::Serialize::to_value(x0))]),",
                            v.name
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "{name}::{0}({1}) => ::serde::Value::Object(vec![(\"{tag}\".to_string(), ::serde::Value::Array(vec![{2}]))]),",
                                v.name,
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let fallback = if f.default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return Err(::serde::missing_field(\"{name}\", \"{0}\"))",
                            f.name
                        )
                    };
                    format!(
                        "{0}: match ::serde::field(pairs, \"{0}\") {{\n\
                             Some(fv) => ::serde::Deserialize::from_value(fv)?,\n\
                             None => {fallback},\n\
                         }},",
                        f.name
                    )
                })
                .collect();
            format!(
                "let pairs = v.as_object().ok_or_else(|| ::serde::Error::msg(\
                     format!(\"expected object for {name}, found {{}}\", v.kind())))?;\n\
                 Ok({name} {{ {} }})",
                inits.join("\n")
            )
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::Error::msg(\
                     format!(\"expected array for {name}, found {{}}\", v.kind())))?;\n\
                 if items.len() != {n} {{\n\
                     return Err(::serde::Error::msg(format!(\
                         \"expected {n} elements for {name}, found {{}}\", items.len())));\n\
                 }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::UnitStruct => format!("let _ = v; Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{}\" => Ok({name}::{}),", v.tag(), v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(1) => Some(format!(
                        "\"{0}\" => Ok({name}::{1}(::serde::Deserialize::from_value(inner)?)),",
                        v.tag(),
                        v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..n)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        Some(format!(
                            "\"{0}\" => {{\n\
                                 let items = inner.as_array().ok_or_else(|| \
                                     ::serde::Error::msg(\"expected array for variant {0}\"))?;\n\
                                 if items.len() != {n} {{\n\
                                     return Err(::serde::Error::msg(\
                                         \"wrong arity for variant {0}\"));\n\
                                 }}\n\
                                 Ok({name}::{1}({2}))\n\
                             }}",
                            v.tag(),
                            v.name,
                            items.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {}\n\
                         other => Err(::serde::Error::msg(format!(\
                             \"unknown {name} variant {{other:?}}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::Error::msg(format!(\
                                 \"unknown {name} variant {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::Error::msg(format!(\
                         \"expected {name} variant, found {{}}\", other.kind()))),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
