//! Offline shim for `serde_json`: JSON text encoding/decoding over the
//! serde shim's [`Value`] model.
//!
//! Follows serde_json's wire conventions so JSON persisted by earlier
//! builds keeps parsing: integers print without a fractional part, floats
//! use Rust's shortest-round-trip formatting, non-finite floats become
//! `null`, strings escape control characters with `\u00XX`.

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// JSON encode/decode error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error(e.0)
    }
}

/// Serialize to a JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Serialize to a JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_string())
}

/// Deserialize from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid utf-8: {e}")))?;
    from_str(text)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Build a [`Value`] from JSON-ish literal syntax. Supports the subset this
/// workspace writes: object literals with string-literal keys and arbitrary
/// serializable expression values, nested arrays/objects, and `null`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::json!($val)) ),*
        ])
    };
    ($other:expr) => { $crate::value_of(&$other) };
}

/// `json!` helper: convert any serializable expression to a [`Value`].
pub fn value_of<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Compact JSON rendering of a shim `Value` — same output as the `Display`
/// impl on [`Value`] (which is what `json!(...).to_string()` goes through).
pub fn value_to_string(v: &Value) -> String {
    v.to_string()
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_keyword("null", Value::Null),
            Some(b't') => self.eat_keyword("true", Value::Bool(true)),
            Some(b'f') => self.eat_keyword("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.hex4()?;
                            // Surrogate pair handling for completeness.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let low = self.hex4()?;
                                    let combined = 0x10000
                                        + ((code - 0xd800) << 10)
                                        + (low.wrapping_sub(0xdc00) & 0x3ff);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                            continue; // hex4 already advanced pos
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    // SAFETY: `bytes` came from a `&str` (validated UTF-8)
                    // and `pos` only ever advances by whole scalar widths,
                    // so every suffix is valid UTF-8.
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let v = Value::Object(vec![
            ("txid".to_string(), Value::Int(99)),
            ("key".to_string(), Value::String("doc".into())),
            (
                "value".to_string(),
                Value::Array(vec![Value::Int(110), Value::Int(101), Value::Int(119)]),
            ),
            ("pi".to_string(), Value::Float(3.25)),
            ("none".to_string(), Value::Null),
        ]);
        let text = value_to_string(&v);
        let back: Value = parse_value(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integral_floats_keep_fraction() {
        assert_eq!(value_to_string(&Value::Float(2.0)), "2.0");
        let back = parse_value("2.0").unwrap();
        assert_eq!(back, Value::Float(2.0));
    }

    #[test]
    fn big_u64_round_trips() {
        let big = u64::MAX - 1;
        let text = to_string(&big).unwrap();
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\"quoted\"\tand \\ back \u{0001}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn json_macro_objects() {
        let v = json!({
            "txid": 99, "key": "doc", "value": b"new".to_vec(), "at_ms": 0
        });
        let text = value_to_string(&v);
        assert!(text.starts_with("{\"txid\":99"));
        assert!(text.contains("\"value\":[110,101,119]"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{\"a\": }").is_err());
        assert!(parse_value("[1, 2").is_err());
        assert!(parse_value("12 34").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let v = parse_value(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }
}
