//! `xprof` — an in-tree checkpoint-based sampling profiler.
//!
//! The build environment has no registry access, so instead of `pprof` or
//! perf integration the workspace carries this hand-rolled sampler. It is
//! *checkpoint-based*: instrumented code brackets interesting regions with
//! [`enter`] (returning an RAII [`Scope`]), which publishes the current
//! stage stack into a per-thread slot of lock-free atomics. While a
//! profiling session is active, a background sampler thread wakes on a
//! fixed interval and reads every registered thread's stack, attributing
//! one sample per thread per tick to the collapsed stack it observed.
//!
//! Design properties:
//!
//! * **Zero overhead when disabled.** [`enter`] checks one relaxed atomic
//!   and returns a no-op guard; no thread-local is touched, no thread is
//!   registered, and no sampler thread or timer exists outside an active
//!   session ([`start`]/[`stop`]).
//! * **Stage vocabulary, not symbols.** Samples attribute to the labels the
//!   tracing layer already uses (`cache_lookup`, `compress`, `encrypt`,
//!   `net_rtt`, `store_get`, ...), so a profile reads like a trace
//!   waterfall aggregated over thousands of operations.
//! * **Honest limits.** This is not a preemptive profiler: code that never
//!   passes a checkpoint is invisible (it shows up as `idle` samples), and
//!   resolution is bounded by the sampling interval and by the scheduler's
//!   willingness to wake the sampler on time. Attribution races with stack
//!   pushes/pops can misplace a sample by one frame; with thousands of
//!   samples that error is statistical noise.
//!
//! The collapsed-stack text rendering (`stage;substage count`) is the
//! flamegraph interchange format, and [`Profile::top_table`] prints the
//! per-stage self/total summary `udsm-cli profile` shows.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Deepest stage stack a thread slot can publish; deeper frames are
/// counted for balance but not sampled.
pub const MAX_DEPTH: usize = 16;

/// Sentinel label id meaning "no frame written yet".
const NO_LABEL: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// Label interning
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Interner {
    by_name: BTreeMap<String, u32>,
    names: Vec<String>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERN: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERN.get_or_init(|| Mutex::new(Interner::default()))
}

fn intern(label: &str) -> u32 {
    let mut g = interner().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(&id) = g.by_name.get(label) {
        return id;
    }
    let id = g.names.len() as u32;
    g.names.push(label.to_string());
    g.by_name.insert(label.to_string(), id);
    id
}

fn resolve(id: u32) -> String {
    let g = interner().lock().unwrap_or_else(|e| e.into_inner());
    g.names
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| format!("?{id}"))
}

// ---------------------------------------------------------------------------
// Per-thread stage slots
// ---------------------------------------------------------------------------

/// One thread's published stage stack: `frames[0..depth]` are interned
/// label ids, written before `depth` is raised (release) so the sampler
/// (acquire) never reads an unwritten frame.
struct ThreadSlot {
    depth: AtomicUsize,
    frames: [AtomicU32; MAX_DEPTH],
    alive: AtomicBool,
}

impl ThreadSlot {
    fn new() -> ThreadSlot {
        ThreadSlot {
            depth: AtomicUsize::new(0),
            frames: std::array::from_fn(|_| AtomicU32::new(NO_LABEL)),
            alive: AtomicBool::new(true),
        }
    }
}

fn thread_registry() -> &'static Mutex<Vec<Arc<ThreadSlot>>> {
    static THREADS: OnceLock<Mutex<Vec<Arc<ThreadSlot>>>> = OnceLock::new();
    THREADS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Marks the slot dead when its thread exits, so the sampler stops
/// attributing samples to it and the registry can prune it.
struct SlotHandle(Arc<ThreadSlot>);

impl Drop for SlotHandle {
    fn drop(&mut self) {
        self.0.alive.store(false, Ordering::Release);
    }
}

thread_local! {
    static SLOT: SlotHandle = {
        let slot = Arc::new(ThreadSlot::new());
        thread_registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&slot));
        SlotHandle(slot)
    };
}

// ---------------------------------------------------------------------------
// Enabling and the public scope API
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// True while a profiling session is running.
pub fn is_active() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Number of thread slots currently registered (live or dead). Stays zero
/// until some thread calls [`enter`] during an active session — the
/// "no overhead when disabled" observable.
pub fn registered_threads() -> usize {
    thread_registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .len()
}

/// RAII guard for one profiled stage; pops the frame on drop. No-op (and
/// allocation-free) when no profiling session is active.
pub struct Scope(Option<Arc<ThreadSlot>>);

impl Drop for Scope {
    fn drop(&mut self) {
        if let Some(slot) = &self.0 {
            let d = slot.depth.load(Ordering::Relaxed);
            slot.depth.store(d.saturating_sub(1), Ordering::Release);
        }
    }
}

/// Push `label` onto this thread's stage stack until the returned guard
/// drops. When no session is active this is one atomic load and returns a
/// no-op guard.
pub fn enter(label: &str) -> Scope {
    if !ENABLED.load(Ordering::Relaxed) {
        return Scope(None);
    }
    let id = intern(label);
    let slot = SLOT.with(|h| Arc::clone(&h.0));
    let d = slot.depth.load(Ordering::Relaxed);
    if d < MAX_DEPTH {
        slot.frames[d].store(id, Ordering::Relaxed);
    }
    slot.depth.store(d + 1, Ordering::Release);
    Scope(Some(slot))
}

// ---------------------------------------------------------------------------
// Collector and sampler
// ---------------------------------------------------------------------------

/// Accumulates samples keyed by collapsed stack (interned label ids).
#[derive(Default)]
struct Collector {
    counts: Mutex<BTreeMap<Vec<u32>, u64>>,
    total: AtomicU64,
    idle: AtomicU64,
}

impl Collector {
    /// Take one sample of every live registered thread.
    fn sample_all(&self) {
        let threads: Vec<Arc<ThreadSlot>> = thread_registry()
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .filter(|t| t.alive.load(Ordering::Acquire))
            .cloned()
            .collect();
        for slot in threads {
            let depth = slot.depth.load(Ordering::Acquire).min(MAX_DEPTH);
            self.total.fetch_add(1, Ordering::Relaxed);
            if depth == 0 {
                self.idle.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let mut stack = Vec::with_capacity(depth);
            for frame in slot.frames.iter().take(depth) {
                let id = frame.load(Ordering::Relaxed);
                if id == NO_LABEL {
                    break;
                }
                stack.push(id);
            }
            if stack.is_empty() {
                self.idle.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
            *counts.entry(stack).or_insert(0) += 1;
        }
    }

    fn record_ids(&self, stack: Vec<u32>) {
        self.total.fetch_add(1, Ordering::Relaxed);
        if stack.is_empty() {
            self.idle.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let mut counts = self.counts.lock().unwrap_or_else(|e| e.into_inner());
        *counts.entry(stack).or_insert(0) += 1;
    }

    fn into_profile(self) -> Profile {
        let counts = self.counts.into_inner().unwrap_or_else(|e| e.into_inner());
        let stacks = counts
            .into_iter()
            .map(|(ids, n)| (ids.iter().map(|&id| resolve(id)).collect(), n))
            .collect();
        Profile {
            stacks,
            total_samples: self.total.load(Ordering::Relaxed),
            idle_samples: self.idle.load(Ordering::Relaxed),
        }
    }
}

struct Session {
    stop: Arc<AtomicBool>,
    collector: Arc<Collector>,
    join: std::thread::JoinHandle<()>,
}

fn session_slot() -> &'static Mutex<Option<Session>> {
    static SESSION: OnceLock<Mutex<Option<Session>>> = OnceLock::new();
    SESSION.get_or_init(|| Mutex::new(None))
}

/// Start a profiling session sampling every `interval`. Fails if a session
/// is already active (the profiler is process-global).
pub fn start(interval: Duration) -> Result<(), &'static str> {
    let mut session = session_slot().lock().unwrap_or_else(|e| e.into_inner());
    if session.is_some() {
        return Err("a profiling session is already active");
    }
    // Prune slots of threads that exited during previous sessions.
    thread_registry()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .retain(|t| t.alive.load(Ordering::Acquire));
    let stop = Arc::new(AtomicBool::new(false));
    let collector = Arc::new(Collector::default());
    let join = {
        let stop = Arc::clone(&stop);
        let collector = Arc::clone(&collector);
        std::thread::Builder::new()
            .name("xprof-sampler".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(interval);
                    collector.sample_all();
                }
            })
            .map_err(|_| "failed to spawn sampler thread")?
    };
    ENABLED.store(true, Ordering::Relaxed);
    *session = Some(Session {
        stop,
        collector,
        join,
    });
    Ok(())
}

/// Stop the active session and return its [`Profile`]. Returns `None` when
/// no session is active.
pub fn stop() -> Option<Profile> {
    let session = session_slot()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()?;
    ENABLED.store(false, Ordering::Relaxed);
    session.stop.store(true, Ordering::Relaxed);
    let _ = session.join.join();
    let collector = Arc::try_unwrap(session.collector).unwrap_or_else(|arc| Collector {
        counts: Mutex::new(arc.counts.lock().unwrap_or_else(|e| e.into_inner()).clone()),
        total: AtomicU64::new(arc.total.load(Ordering::Relaxed)),
        idle: AtomicU64::new(arc.idle.load(Ordering::Relaxed)),
    });
    Some(collector.into_profile())
}

// ---------------------------------------------------------------------------
// Profile: the session result
// ---------------------------------------------------------------------------

/// Per-stage aggregate: samples where the stage was the innermost frame
/// (`self_samples`) and samples where it appeared anywhere on the stack
/// (`total_samples`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StageSummary {
    /// Stage label.
    pub stage: String,
    /// Samples with this stage as the leaf frame.
    pub self_samples: u64,
    /// Samples with this stage anywhere on the stack.
    pub total_samples: u64,
}

/// The result of a profiling session: collapsed stacks with sample counts.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Profile {
    /// `(stack frames outermost-first, sample count)`, sorted by stack.
    pub stacks: Vec<(Vec<String>, u64)>,
    /// Samples taken, including idle ones.
    pub total_samples: u64,
    /// Samples that found an empty stage stack.
    pub idle_samples: u64,
}

impl Profile {
    /// Build a profile from an explicit sample sequence (each sample is a
    /// stack, outermost frame first; an empty stack is an idle sample).
    /// This is the deterministic path the unit tests and any offline
    /// re-aggregation use — it shares the accumulation code with the live
    /// sampler.
    pub fn from_samples<'a, I, S>(samples: I) -> Profile
    where
        I: IntoIterator<Item = S>,
        S: AsRef<[&'a str]>,
    {
        let collector = Collector::default();
        for sample in samples {
            let ids: Vec<u32> = sample.as_ref().iter().map(|s| intern(s)).collect();
            collector.record_ids(ids);
        }
        collector.into_profile()
    }

    /// Samples attributed to at least one stage.
    pub fn attributed_samples(&self) -> u64 {
        self.stacks.iter().map(|&(_, n)| n).sum()
    }

    /// Collapsed-stack text: one `frame;frame;... count` line per distinct
    /// stack, sorted lexically — the flamegraph interchange format.
    pub fn collapsed(&self) -> String {
        let mut lines: Vec<(String, u64)> = self
            .stacks
            .iter()
            .map(|(stack, n)| (stack.join(";"), *n))
            .collect();
        // Sort by the joined label path, not intern order, so the same
        // sample multiset always renders identically.
        lines.sort();
        let mut out = String::new();
        for (line, n) in lines {
            out.push_str(&line);
            out.push(' ');
            out.push_str(&n.to_string());
            out.push('\n');
        }
        out
    }

    /// Per-stage self/total summaries, sorted by self samples descending
    /// (ties broken by label so output is deterministic).
    pub fn stage_summaries(&self) -> Vec<StageSummary> {
        let mut self_counts: BTreeMap<&str, u64> = BTreeMap::new();
        let mut total_counts: BTreeMap<&str, u64> = BTreeMap::new();
        for (stack, n) in &self.stacks {
            if let Some(leaf) = stack.last() {
                *self_counts.entry(leaf).or_insert(0) += n;
            }
            // A stage nested under itself must not double-count the sample.
            let mut seen: Vec<&str> = Vec::with_capacity(stack.len());
            for frame in stack {
                if !seen.contains(&frame.as_str()) {
                    seen.push(frame);
                    *total_counts.entry(frame).or_insert(0) += n;
                }
            }
        }
        let mut out: Vec<StageSummary> = total_counts
            .iter()
            .map(|(&stage, &total)| StageSummary {
                stage: stage.to_string(),
                self_samples: self_counts.get(stage).copied().unwrap_or(0),
                total_samples: total,
            })
            .collect();
        out.sort_by(|a, b| {
            b.self_samples
                .cmp(&a.self_samples)
                .then_with(|| a.stage.cmp(&b.stage))
        });
        out
    }

    /// The stage with the most self samples, if any sample was attributed.
    pub fn top_stage(&self) -> Option<String> {
        self.stage_summaries().into_iter().next().map(|s| s.stage)
    }

    /// A fixed-width top-`n` table of stages by self samples, with
    /// percentages of all attributed samples.
    pub fn top_table(&self, n: usize) -> String {
        let attributed = self.attributed_samples().max(1);
        let mut out = format!(
            "{:<24} {:>10} {:>7} {:>10} {:>7}\n",
            "stage", "self", "self%", "total", "total%"
        );
        for s in self.stage_summaries().into_iter().take(n) {
            out.push_str(&format!(
                "{:<24} {:>10} {:>6.1}% {:>10} {:>6.1}%\n",
                s.stage,
                s.self_samples,
                s.self_samples as f64 * 100.0 / attributed as f64,
                s.total_samples,
                s.total_samples as f64 * 100.0 / attributed as f64,
            ));
        }
        out.push_str(&format!(
            "samples: {} attributed, {} idle, {} total\n",
            self.attributed_samples(),
            self.idle_samples,
            self.total_samples
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests that drive the process-global session.
    fn session_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn attribution_sums_to_total() {
        let profile = Profile::from_samples([
            vec!["get"],
            vec!["get", "encrypt"],
            vec!["get", "encrypt"],
            vec![],
            vec!["put"],
        ]);
        assert_eq!(profile.total_samples, 5);
        assert_eq!(profile.idle_samples, 1);
        assert_eq!(profile.attributed_samples(), 4);
        assert_eq!(
            profile.attributed_samples() + profile.idle_samples,
            profile.total_samples
        );
        let summaries = profile.stage_summaries();
        let self_sum: u64 = summaries.iter().map(|s| s.self_samples).sum();
        assert_eq!(self_sum, profile.attributed_samples());
        let get = summaries.iter().find(|s| s.stage == "get").unwrap();
        assert_eq!(get.self_samples, 1);
        assert_eq!(get.total_samples, 3);
    }

    #[test]
    fn collapsed_output_is_stable_for_a_fixed_sample_sequence() {
        let samples = [
            vec!["op", "cache_lookup"],
            vec!["op", "encrypt"],
            vec!["op", "encrypt"],
            vec!["op"],
            vec!["flush"],
        ];
        let a = Profile::from_samples(samples.clone());
        let b = Profile::from_samples(samples);
        assert_eq!(a.collapsed(), b.collapsed());
        assert_eq!(
            a.collapsed(),
            "flush 1\nop 1\nop;cache_lookup 1\nop;encrypt 2\n"
        );
        assert_eq!(a.top_stage().as_deref(), Some("encrypt"));
        let table = a.top_table(10);
        assert!(table.contains("encrypt"), "{table}");
        assert!(table.contains("samples: 5 attributed, 0 idle"), "{table}");
    }

    #[test]
    fn nested_repeated_stage_counts_sample_once_in_total() {
        let profile = Profile::from_samples([vec!["a", "b", "a"]]);
        let a = profile
            .stage_summaries()
            .into_iter()
            .find(|s| s.stage == "a")
            .unwrap();
        assert_eq!(a.total_samples, 1);
        assert_eq!(a.self_samples, 1);
    }

    #[test]
    fn disabled_profiler_is_inert() {
        let _guard = session_lock();
        assert!(!is_active());
        let before = registered_threads();
        {
            let _scope = enter("should-not-register");
        }
        assert_eq!(
            registered_threads(),
            before,
            "enter() must not touch thread slots while disabled"
        );
        assert!(stop().is_none(), "no session to stop");
    }

    #[test]
    fn live_session_samples_an_instrumented_thread() {
        let _guard = session_lock();
        start(Duration::from_micros(200)).unwrap();
        assert!(is_active());
        assert!(
            start(Duration::from_micros(200)).is_err(),
            "second session must be refused"
        );
        let t0 = std::time::Instant::now();
        while t0.elapsed() < Duration::from_millis(60) {
            let _outer = enter("outer");
            let _inner = enter("inner");
            std::hint::black_box(fibonacci(12));
        }
        let profile = stop().expect("active session");
        assert!(!is_active());
        assert!(profile.total_samples > 0, "sampler took no samples");
        assert!(
            profile.attributed_samples() > 0,
            "no samples attributed: {profile:?}"
        );
        let collapsed = profile.collapsed();
        assert!(collapsed.contains("outer;inner"), "{collapsed}");
    }

    #[test]
    fn scopes_beyond_max_depth_stay_balanced() {
        let _guard = session_lock();
        start(Duration::from_millis(50)).unwrap();
        {
            let mut scopes = Vec::new();
            for i in 0..MAX_DEPTH + 4 {
                scopes.push(enter(&format!("deep{i}")));
            }
        }
        // All scopes dropped: the slot must be back to depth 0, so a fresh
        // stack starts at the bottom again.
        let _scope = enter("after");
        let slot = SLOT.with(|h| Arc::clone(&h.0));
        assert_eq!(slot.depth.load(Ordering::Relaxed), 1);
        drop(_scope);
        stop().unwrap();
    }

    fn fibonacci(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fibonacci(n - 1) + fibonacci(n - 2)
        }
    }
}
