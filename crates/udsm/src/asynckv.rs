//! Asynchronous interface over any key-value store.
//!
//! §II-A: "A key advantage to our UDSM is that it provides an asynchronous
//! interface to all data stores it supports, even if a data store does not
//! provide a client with asynchronous operations" — here, any
//! [`KeyValue`] implementation gets async operations by construction: the
//! blocking call runs on a pool worker and the caller holds a
//! [`ListenableFuture`].
//!
//! # Composition with the multiplexed transport
//!
//! This wrapper is transport-agnostic, which is exactly what unifies it
//! with the `RpcSender` split: wrap a protocol client built on the
//! multiplexed transport (e.g. `CloudClient::connect_with(addr, policy,
//! Transport::Multiplexed)`) and every in-flight future becomes one
//! correlated request on the client's single shared connection — N
//! concurrent futures, one socket — instead of checking N sockets out of
//! a blocking pool. Nothing here changes per transport: the pool worker
//! parks on a completion rather than a socket, and [`with_resilience`]
//! semantics (read retries, at-most-once writes, breaker shedding) are
//! identical over both.
//!
//! [`with_resilience`]: AsyncKeyValue::with_resilience

use crate::future::ListenableFuture;
use crate::pool::ThreadPool;
use bytes::Bytes;
use kvapi::{KeyValue, Result};
use resilience::{Resilience, ResiliencePolicy};
use std::sync::Arc;

/// Non-blocking handle to a store.
#[derive(Clone)]
pub struct AsyncKeyValue {
    store: Arc<dyn KeyValue>,
    pool: Arc<ThreadPool>,
    /// Optional wrapper-level failure budget: breaker + retry for reads,
    /// breaker-gated at-most-once for writes. The native clients carry
    /// their own [`Resilience`] internally; this layer covers stores that
    /// don't (in-process maps, third-party adapters).
    resilience: Option<Arc<Resilience>>,
}

impl AsyncKeyValue {
    /// Wrap `store`, executing its operations on `pool`.
    pub fn new(store: Arc<dyn KeyValue>, pool: Arc<ThreadPool>) -> AsyncKeyValue {
        AsyncKeyValue {
            store,
            pool,
            resilience: None,
        }
    }

    /// Wrap `store` and run every submitted operation under `policy`:
    /// reads are retried on transient failure, writes execute at most
    /// once, and a tripped breaker sheds both without touching the store.
    pub fn with_resilience(
        store: Arc<dyn KeyValue>,
        pool: Arc<ThreadPool>,
        policy: ResiliencePolicy,
    ) -> AsyncKeyValue {
        AsyncKeyValue {
            store,
            pool,
            resilience: Some(Arc::new(Resilience::new(policy))),
        }
    }

    /// The wrapped store.
    pub fn store(&self) -> &Arc<dyn KeyValue> {
        &self.store
    }

    /// The wrapper-level resilience state, when configured.
    pub fn resilience(&self) -> Option<&Arc<Resilience>> {
        self.resilience.as_ref()
    }

    /// Submit an idempotent (read-side) operation: retried under the
    /// wrapper policy when one is configured.
    fn submit_read<T: Send + Sync + 'static>(
        &self,
        f: impl Fn() -> Result<T> + Send + 'static,
    ) -> ListenableFuture<Result<T>> {
        let resilience = self.resilience.clone();
        self.pool.submit(move || match &resilience {
            Some(r) => r.run_idempotent(|_deadline, _attempt| f()),
            None => f(),
        })
    }

    /// Submit a write-side operation: breaker-gated but never replayed —
    /// the wrapper cannot know whether a failed write reached the store.
    fn submit_write<T: Send + Sync + 'static>(
        &self,
        f: impl FnOnce() -> Result<T> + Send + 'static,
    ) -> ListenableFuture<Result<T>> {
        let resilience = self.resilience.clone();
        self.pool.submit(move || match &resilience {
            Some(r) => r.run_once(|_deadline| f()),
            None => f(),
        })
    }

    /// Asynchronous get.
    pub fn get(&self, key: &str) -> ListenableFuture<Result<Option<Bytes>>> {
        let store = self.store.clone();
        let key = key.to_string();
        self.submit_read(move || store.get(&key))
    }

    /// Asynchronous put. The application "can make a request to a data
    /// store and not wait for the request to return a response before
    /// continuing execution".
    pub fn put(&self, key: &str, value: impl Into<Vec<u8>>) -> ListenableFuture<Result<()>> {
        let store = self.store.clone();
        let key = key.to_string();
        let value = value.into();
        self.submit_write(move || store.put(&key, &value))
    }

    /// Asynchronous delete.
    pub fn delete(&self, key: &str) -> ListenableFuture<Result<bool>> {
        let store = self.store.clone();
        let key = key.to_string();
        self.submit_write(move || store.delete(&key))
    }

    /// Asynchronous contains.
    pub fn contains(&self, key: &str) -> ListenableFuture<Result<bool>> {
        let store = self.store.clone();
        let key = key.to_string();
        self.submit_read(move || store.contains(&key))
    }

    /// Asynchronous key listing.
    pub fn keys(&self) -> ListenableFuture<Result<Vec<String>>> {
        let store = self.store.clone();
        self.submit_read(move || store.keys())
    }

    /// Asynchronous batch get: one pool job invokes the store's native
    /// [`KeyValue::get_many`], so a pipelining store pays one round trip
    /// for the whole batch instead of one per key. Results are positional.
    pub fn get_many(&self, keys: &[&str]) -> ListenableFuture<Result<Vec<Option<Bytes>>>> {
        let store = self.store.clone();
        let keys: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
        self.submit_read(move || {
            let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            store.get_many(&refs)
        })
    }

    /// Asynchronous batch put through the store's native
    /// [`KeyValue::put_many`] — a single future for the whole batch, not
    /// one per key, so the caller can overlap its own work with one
    /// pipelined write.
    pub fn put_many(&self, entries: Vec<(String, Vec<u8>)>) -> ListenableFuture<Result<()>> {
        let store = self.store.clone();
        self.submit_write(move || {
            let refs: Vec<(&str, &[u8])> = entries
                .iter()
                .map(|(k, v)| (k.as_str(), v.as_slice()))
                .collect();
            store.put_many(&refs)
        })
    }

    /// Asynchronous batch delete through the store's native
    /// [`KeyValue::delete_many`]; the result reports, positionally,
    /// whether each key existed.
    pub fn delete_many(&self, keys: &[&str]) -> ListenableFuture<Result<Vec<bool>>> {
        let store = self.store.clone();
        let keys: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
        self.submit_write(move || {
            let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            store.delete_many(&refs)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvapi::mem::MemKv;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    fn handle() -> AsyncKeyValue {
        AsyncKeyValue::new(Arc::new(MemKv::new("mem")), Arc::new(ThreadPool::new(4)))
    }

    #[test]
    fn async_round_trip() {
        let kv = handle();
        kv.put("k", &b"v"[..]).get().as_ref().as_ref().unwrap();
        let got = kv.get("k").get();
        assert_eq!(got.as_ref().as_ref().unwrap().as_deref(), Some(&b"v"[..]));
        assert!(*kv.contains("k").get().as_ref().as_ref().unwrap());
        assert!(kv.delete("k").get().as_ref().as_ref().unwrap());
        assert_eq!(kv.keys().get().as_ref().as_ref().unwrap().len(), 0);
    }

    /// A deliberately slow store to show the caller overlaps its own work
    /// with the store operation — the paper's motivation for async.
    struct SlowStore(MemKv);
    impl KeyValue for SlowStore {
        fn name(&self) -> &str {
            "slow"
        }
        fn put(&self, k: &str, v: &[u8]) -> Result<()> {
            std::thread::sleep(Duration::from_millis(80));
            self.0.put(k, v)
        }
        fn get(&self, k: &str) -> Result<Option<Bytes>> {
            std::thread::sleep(Duration::from_millis(80));
            self.0.get(k)
        }
        fn delete(&self, k: &str) -> Result<bool> {
            self.0.delete(k)
        }
        fn keys(&self) -> Result<Vec<String>> {
            self.0.keys()
        }
        fn clear(&self) -> Result<()> {
            self.0.clear()
        }
    }

    #[test]
    fn caller_overlaps_with_store_latency() {
        let kv = AsyncKeyValue::new(
            Arc::new(SlowStore(MemKv::new("s"))),
            Arc::new(ThreadPool::new(4)),
        );
        let t0 = Instant::now();
        let futures: Vec<_> = (0..4)
            .map(|i| kv.put(&format!("k{i}"), vec![0u8; 8]))
            .collect();
        let submit_time = t0.elapsed();
        assert!(
            submit_time < Duration::from_millis(40),
            "submission must not block: {submit_time:?}"
        );
        for f in futures {
            f.get().as_ref().as_ref().unwrap();
        }
        let total = t0.elapsed();
        assert!(
            total < Duration::from_millis(250),
            "4 × 80 ms puts on 4 workers took {total:?}"
        );
    }

    #[test]
    fn callbacks_on_completion() {
        let kv = handle();
        kv.put("k", &b"v"[..]).get();
        let hit = Arc::new(AtomicBool::new(false));
        let h = hit.clone();
        let f = kv.get("k");
        f.add_listener(move |res| {
            let v = res.as_ref().unwrap().as_ref().unwrap();
            assert_eq!(&v[..], b"v");
            h.store(true, Ordering::SeqCst);
        });
        f.get();
        // `get` may wake before the worker thread runs the listener.
        let deadline = Instant::now() + Duration::from_secs(2);
        while !hit.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "listener never fired");
            std::thread::yield_now();
        }
    }

    /// With a wrapper policy, a dead store trips the breaker and later
    /// async calls are shed without touching the store; once the store
    /// heals and the cooldown passes, the half-open probe closes it again.
    #[test]
    fn async_breaker_sheds_and_recovers() {
        use kvapi::StoreError;

        struct FlakyStore {
            inner: MemKv,
            down: AtomicBool,
            calls: std::sync::atomic::AtomicU64,
        }
        impl KeyValue for FlakyStore {
            fn name(&self) -> &str {
                "flaky"
            }
            fn put(&self, k: &str, v: &[u8]) -> Result<()> {
                self.inner.put(k, v)
            }
            fn get(&self, k: &str) -> Result<Option<Bytes>> {
                self.calls.fetch_add(1, Ordering::SeqCst);
                if self.down.load(Ordering::SeqCst) {
                    return Err(StoreError::Closed);
                }
                self.inner.get(k)
            }
            fn delete(&self, k: &str) -> Result<bool> {
                self.inner.delete(k)
            }
            fn keys(&self) -> Result<Vec<String>> {
                self.inner.keys()
            }
            fn clear(&self) -> Result<()> {
                self.inner.clear()
            }
        }

        let store = Arc::new(FlakyStore {
            inner: MemKv::new("m"),
            down: AtomicBool::new(false),
            calls: std::sync::atomic::AtomicU64::new(0),
        });
        let kv = AsyncKeyValue::with_resilience(
            store.clone(),
            Arc::new(ThreadPool::new(2)),
            resilience::ResiliencePolicy::test_profile(),
        );
        kv.put("k", &b"v"[..]).get().as_ref().as_ref().unwrap();

        store.down.store(true, Ordering::SeqCst);
        // Three transient attempts inside one idempotent read trip the
        // test-profile breaker (threshold 3).
        assert!(kv.get("k").get().as_ref().is_err());
        assert_eq!(
            kv.resilience().unwrap().breaker().state(),
            resilience::BreakerState::Open
        );
        let calls_when_open = store.calls.load(Ordering::SeqCst);
        let shed = kv.get("k").get();
        assert!(
            matches!(shed.as_ref(), Err(StoreError::Unavailable(_))),
            "open breaker sheds async reads"
        );
        assert_eq!(
            store.calls.load(Ordering::SeqCst),
            calls_when_open,
            "shed call never reached the store"
        );

        store.down.store(false, Ordering::SeqCst);
        std::thread::sleep(Duration::from_millis(120));
        let healed = kv.get("k").get();
        assert_eq!(
            healed.as_ref().as_ref().unwrap().as_deref(),
            Some(&b"v"[..])
        );
        assert_eq!(
            kv.resilience().unwrap().breaker().state(),
            resilience::BreakerState::Closed
        );
    }

    #[test]
    fn timed_get_on_async_op() {
        let kv = AsyncKeyValue::new(
            Arc::new(SlowStore(MemKv::new("s"))),
            Arc::new(ThreadPool::new(1)),
        );
        let f = kv.get("missing");
        assert!(
            f.get_timeout(Duration::from_millis(10)).is_none(),
            "still running"
        );
        let v = f
            .get_timeout(Duration::from_millis(500))
            .expect("finishes within timeout");
        assert!(v.as_ref().as_ref().unwrap().is_none());
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use kvapi::mem::MemKv;
    use std::sync::Arc;

    #[test]
    fn get_many_preserves_order() {
        let kv = AsyncKeyValue::new(Arc::new(MemKv::new("m")), Arc::new(ThreadPool::new(4)));
        kv.put("a", &b"1"[..]).get();
        kv.put("c", &b"3"[..]).get();
        let results = kv.get_many(&["a", "b", "c"]).get();
        let results = results.as_ref().as_ref().unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_deref(), Some(&b"1"[..]));
        assert_eq!(results[1], None);
        assert_eq!(results[2].as_deref(), Some(&b"3"[..]));
    }

    #[test]
    fn put_many_writes_everything() {
        let store = Arc::new(MemKv::new("m"));
        let kv = AsyncKeyValue::new(store.clone(), Arc::new(ThreadPool::new(4)));
        let entries: Vec<(String, Vec<u8>)> = (0..20)
            .map(|i| (format!("k{i}"), vec![i as u8; 10]))
            .collect();
        kv.put_many(entries).get().as_ref().as_ref().unwrap();
        assert_eq!(store.stats().unwrap().keys, 20);
    }

    #[test]
    fn delete_many_reports_presence() {
        let kv = AsyncKeyValue::new(Arc::new(MemKv::new("m")), Arc::new(ThreadPool::new(2)));
        kv.put("a", &b"1"[..]).get();
        kv.put("b", &b"2"[..]).get();
        let deleted = kv.delete_many(&["a", "missing", "b"]).get();
        assert_eq!(deleted.as_ref().as_ref().unwrap(), &vec![true, false, true]);
        assert!(!kv.contains("a").get().as_ref().as_ref().unwrap());
    }

    /// The async batch must reach the store as ONE `get_many` call — that
    /// is what lets pipelining stores amortize the round trip.
    #[test]
    fn batch_rides_the_native_path() {
        use std::sync::atomic::{AtomicU64, Ordering};

        struct CountingBatches {
            inner: MemKv,
            batch_gets: AtomicU64,
            single_gets: AtomicU64,
        }
        impl KeyValue for CountingBatches {
            fn name(&self) -> &str {
                "counting"
            }
            fn put(&self, k: &str, v: &[u8]) -> Result<()> {
                self.inner.put(k, v)
            }
            fn get(&self, k: &str) -> Result<Option<Bytes>> {
                self.single_gets.fetch_add(1, Ordering::SeqCst);
                self.inner.get(k)
            }
            fn delete(&self, k: &str) -> Result<bool> {
                self.inner.delete(k)
            }
            fn keys(&self) -> Result<Vec<String>> {
                self.inner.keys()
            }
            fn clear(&self) -> Result<()> {
                self.inner.clear()
            }
            fn get_many(&self, keys: &[&str]) -> Result<Vec<Option<Bytes>>> {
                self.batch_gets.fetch_add(1, Ordering::SeqCst);
                self.inner.get_many(keys)
            }
        }

        let store = Arc::new(CountingBatches {
            inner: MemKv::new("m"),
            batch_gets: AtomicU64::new(0),
            single_gets: AtomicU64::new(0),
        });
        let kv = AsyncKeyValue::new(store.clone(), Arc::new(ThreadPool::new(2)));
        kv.put("a", &b"1"[..]).get();
        let got = kv.get_many(&["a", "b", "c", "d"]).get();
        assert_eq!(got.as_ref().as_ref().unwrap().len(), 4);
        assert_eq!(store.batch_gets.load(Ordering::SeqCst), 1);
        assert_eq!(store.single_gets.load(Ordering::SeqCst), 0);
    }
}
