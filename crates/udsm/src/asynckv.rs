//! Asynchronous interface over any key-value store.
//!
//! §II-A: "A key advantage to our UDSM is that it provides an asynchronous
//! interface to all data stores it supports, even if a data store does not
//! provide a client with asynchronous operations" — here, any
//! [`KeyValue`] implementation gets async operations by construction: the
//! blocking call runs on a pool worker and the caller holds a
//! [`ListenableFuture`].

use crate::future::ListenableFuture;
use crate::pool::ThreadPool;
use bytes::Bytes;
use kvapi::{KeyValue, Result};
use std::sync::Arc;

/// Non-blocking handle to a store.
#[derive(Clone)]
pub struct AsyncKeyValue {
    store: Arc<dyn KeyValue>,
    pool: Arc<ThreadPool>,
}

impl AsyncKeyValue {
    /// Wrap `store`, executing its operations on `pool`.
    pub fn new(store: Arc<dyn KeyValue>, pool: Arc<ThreadPool>) -> AsyncKeyValue {
        AsyncKeyValue { store, pool }
    }

    /// The wrapped store.
    pub fn store(&self) -> &Arc<dyn KeyValue> {
        &self.store
    }

    /// Asynchronous get.
    pub fn get(&self, key: &str) -> ListenableFuture<Result<Option<Bytes>>> {
        let store = self.store.clone();
        let key = key.to_string();
        self.pool.submit(move || store.get(&key))
    }

    /// Asynchronous put. The application "can make a request to a data
    /// store and not wait for the request to return a response before
    /// continuing execution".
    pub fn put(&self, key: &str, value: impl Into<Vec<u8>>) -> ListenableFuture<Result<()>> {
        let store = self.store.clone();
        let key = key.to_string();
        let value = value.into();
        self.pool.submit(move || store.put(&key, &value))
    }

    /// Asynchronous delete.
    pub fn delete(&self, key: &str) -> ListenableFuture<Result<bool>> {
        let store = self.store.clone();
        let key = key.to_string();
        self.pool.submit(move || store.delete(&key))
    }

    /// Asynchronous contains.
    pub fn contains(&self, key: &str) -> ListenableFuture<Result<bool>> {
        let store = self.store.clone();
        let key = key.to_string();
        self.pool.submit(move || store.contains(&key))
    }

    /// Asynchronous key listing.
    pub fn keys(&self) -> ListenableFuture<Result<Vec<String>>> {
        let store = self.store.clone();
        self.pool.submit(move || store.keys())
    }

    /// Fan out many gets across the pool; the returned future completes
    /// when all replies are in, preserving request order.
    ///
    /// The combining step runs on a pool worker *after* the per-key jobs
    /// (FIFO queue), so this is deadlock-free even on a 1-worker pool —
    /// but do not block on the returned future from *inside* another job
    /// on the same single-worker pool.
    pub fn get_many(&self, keys: &[&str]) -> ListenableFuture<Vec<Result<Option<Bytes>>>> {
        let futures: Vec<_> = keys.iter().map(|k| self.get(k)).collect();
        self.pool.submit(move || {
            futures
                .into_iter()
                .map(|f| match Arc::try_unwrap(f.get()) {
                    Ok(v) => v,
                    Err(arc) => clone_result(&arc),
                })
                .collect()
        })
    }

    /// Fan out many puts; completes when every write has finished,
    /// reporting per-key results in request order.
    pub fn put_many(
        &self,
        entries: Vec<(String, Vec<u8>)>,
    ) -> ListenableFuture<Vec<Result<()>>> {
        let futures: Vec<_> =
            entries.into_iter().map(|(k, v)| self.put(&k, v)).collect();
        self.pool.submit(move || {
            futures
                .into_iter()
                .map(|f| match Arc::try_unwrap(f.get()) {
                    Ok(v) => v,
                    Err(arc) => match arc.as_ref() {
                        Ok(()) => Ok(()),
                        Err(e) => Err(kvapi::StoreError::Other(e.to_string())),
                    },
                })
                .collect()
        })
    }
}

/// Clone a shared get-result (errors are not `Clone`; stringify them).
fn clone_result(r: &Result<Option<Bytes>>) -> Result<Option<Bytes>> {
    match r {
        Ok(v) => Ok(v.clone()),
        Err(e) => Err(kvapi::StoreError::Other(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvapi::mem::MemKv;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::{Duration, Instant};

    fn handle() -> AsyncKeyValue {
        AsyncKeyValue::new(Arc::new(MemKv::new("mem")), Arc::new(ThreadPool::new(4)))
    }

    #[test]
    fn async_round_trip() {
        let kv = handle();
        kv.put("k", &b"v"[..]).get().as_ref().as_ref().unwrap();
        let got = kv.get("k").get();
        assert_eq!(got.as_ref().as_ref().unwrap().as_deref(), Some(&b"v"[..]));
        assert!(*kv.contains("k").get().as_ref().as_ref().unwrap());
        assert!(kv.delete("k").get().as_ref().as_ref().unwrap());
        assert_eq!(kv.keys().get().as_ref().as_ref().unwrap().len(), 0);
    }

    /// A deliberately slow store to show the caller overlaps its own work
    /// with the store operation — the paper's motivation for async.
    struct SlowStore(MemKv);
    impl KeyValue for SlowStore {
        fn name(&self) -> &str {
            "slow"
        }
        fn put(&self, k: &str, v: &[u8]) -> Result<()> {
            std::thread::sleep(Duration::from_millis(80));
            self.0.put(k, v)
        }
        fn get(&self, k: &str) -> Result<Option<Bytes>> {
            std::thread::sleep(Duration::from_millis(80));
            self.0.get(k)
        }
        fn delete(&self, k: &str) -> Result<bool> {
            self.0.delete(k)
        }
        fn keys(&self) -> Result<Vec<String>> {
            self.0.keys()
        }
        fn clear(&self) -> Result<()> {
            self.0.clear()
        }
    }

    #[test]
    fn caller_overlaps_with_store_latency() {
        let kv = AsyncKeyValue::new(Arc::new(SlowStore(MemKv::new("s"))), Arc::new(ThreadPool::new(4)));
        let t0 = Instant::now();
        let futures: Vec<_> = (0..4).map(|i| kv.put(&format!("k{i}"), vec![0u8; 8])).collect();
        let submit_time = t0.elapsed();
        assert!(submit_time < Duration::from_millis(40), "submission must not block: {submit_time:?}");
        for f in futures {
            f.get().as_ref().as_ref().unwrap();
        }
        let total = t0.elapsed();
        assert!(
            total < Duration::from_millis(250),
            "4 × 80 ms puts on 4 workers took {total:?}"
        );
    }

    #[test]
    fn callbacks_on_completion() {
        let kv = handle();
        kv.put("k", &b"v"[..]).get();
        let hit = Arc::new(AtomicBool::new(false));
        let h = hit.clone();
        let f = kv.get("k");
        f.add_listener(move |res| {
            let v = res.as_ref().unwrap().as_ref().unwrap();
            assert_eq!(&v[..], b"v");
            h.store(true, Ordering::SeqCst);
        });
        f.get();
        // `get` may wake before the worker thread runs the listener.
        let deadline = Instant::now() + Duration::from_secs(2);
        while !hit.load(Ordering::SeqCst) {
            assert!(Instant::now() < deadline, "listener never fired");
            std::thread::yield_now();
        }
    }

    #[test]
    fn timed_get_on_async_op() {
        let kv = AsyncKeyValue::new(
            Arc::new(SlowStore(MemKv::new("s"))),
            Arc::new(ThreadPool::new(1)),
        );
        let f = kv.get("missing");
        assert!(f.get_timeout(Duration::from_millis(10)).is_none(), "still running");
        let v = f.get_timeout(Duration::from_millis(500)).expect("finishes within timeout");
        assert!(v.as_ref().as_ref().unwrap().is_none());
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use kvapi::mem::MemKv;
    use std::sync::Arc;

    #[test]
    fn get_many_preserves_order() {
        let kv = AsyncKeyValue::new(Arc::new(MemKv::new("m")), Arc::new(ThreadPool::new(4)));
        kv.put("a", &b"1"[..]).get();
        kv.put("c", &b"3"[..]).get();
        let results = kv.get_many(&["a", "b", "c"]).get();
        let results = results.as_ref();
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().as_deref(), Some(&b"1"[..]));
        assert_eq!(results[1].as_ref().unwrap(), &None);
        assert_eq!(results[2].as_ref().unwrap().as_deref(), Some(&b"3"[..]));
    }

    #[test]
    fn put_many_writes_everything() {
        let store = Arc::new(MemKv::new("m"));
        let kv = AsyncKeyValue::new(store.clone(), Arc::new(ThreadPool::new(4)));
        let entries: Vec<(String, Vec<u8>)> =
            (0..20).map(|i| (format!("k{i}"), vec![i as u8; 10])).collect();
        let results = kv.put_many(entries).get();
        assert!(results.as_ref().iter().all(|r| r.is_ok()));
        assert_eq!(store.stats().unwrap().keys, 20);
    }
}
