//! Coordinated updates across multiple stores — the paper's §VII future
//! work ("more coordinated features across multiple data stores such as
//! atomic updates and two-phase commits"), implemented as an extension.
//!
//! Without server-side transaction support (which the paper's client-only
//! stance rules out), true atomicity is impossible; this module provides
//! the strongest client-side approximation: a **prepare/commit protocol
//! with durable intent records**. A crashed coordinator leaves intent
//! records from which [`recover`] can finish or abandon the write, and a
//! failed prepare rolls back cleanly. Readers that only use plain `get`
//! never observe half-written *values* — only possibly stale ones — because
//! the real key is written last.

use kvapi::value::now_millis;
use kvapi::{KeyValue, Result, StoreError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

const INTENT_PREFIX: &str = "__udsm_intent__/";

#[derive(Serialize, Deserialize, Debug, Clone)]
struct Intent {
    txid: u64,
    key: String,
    value: Vec<u8>,
    at_ms: u64,
}

/// Outcome of [`recover`] for one intent record.
#[derive(Debug, PartialEq, Eq)]
pub enum Recovery {
    /// The intent was re-applied (value written to its real key).
    Committed(String),
    /// The intent was dropped (target already newer or value matched).
    Discarded(String),
}

/// Write `value` under `key` on every store, with intent records so a
/// failure midway is recoverable.
///
/// Protocol: (1) write an intent record on every store; (2) write the real
/// key on every store; (3) delete the intents. A failure in phase 1 rolls
/// back written intents and reports the error — no store has seen the real
/// key. A failure later leaves intents behind for [`recover`].
pub fn coordinated_put(stores: &[Arc<dyn KeyValue>], key: &str, value: &[u8]) -> Result<()> {
    if stores.is_empty() {
        return Err(StoreError::Rejected("no stores to coordinate".into()));
    }
    let txid = now_millis() ^ (stores.len() as u64) << 48 ^ fastrand_like(key);
    let intent = Intent {
        txid,
        key: key.to_string(),
        value: value.to_vec(),
        at_ms: now_millis(),
    };
    let blob = serde_json::to_vec(&intent).expect("intent serializes");
    let intent_key = format!("{INTENT_PREFIX}{key}");

    // Phase 1: prepare.
    let mut prepared = 0usize;
    for (i, store) in stores.iter().enumerate() {
        if let Err(e) = store.put(&intent_key, &blob) {
            // Roll back the intents already written.
            for s in &stores[..prepared] {
                let _ = s.delete(&intent_key);
            }
            return Err(StoreError::Other(format!(
                "prepare failed on store {i} ({}): {e}",
                store.name()
            )));
        }
        prepared = i + 1;
    }
    // Phase 2: commit.
    for store in stores {
        store.put(key, value)?;
    }
    // Phase 3: cleanup (best effort — leftover intents are idempotent).
    for store in stores {
        let _ = store.delete(&intent_key);
    }
    Ok(())
}

/// Finish (or discard) any intent records left on `store` by a crashed
/// coordinator: if the real key's value differs from the intent's, the
/// intent is re-applied; otherwise it is discarded. Returns one entry per
/// intent found.
pub fn recover(store: &dyn KeyValue) -> Result<Vec<Recovery>> {
    let mut out = Vec::new();
    for k in store.keys()? {
        let Some(orig_key) = k.strip_prefix(INTENT_PREFIX) else {
            continue;
        };
        let Some(blob) = store.get(&k)? else { continue };
        let intent: Intent = serde_json::from_slice(&blob)
            .map_err(|e| StoreError::corrupt(format!("bad intent record: {e}")))?;
        let current = store.get(orig_key)?;
        if current.as_deref() == Some(intent.value.as_slice()) {
            out.push(Recovery::Discarded(orig_key.to_string()));
        } else {
            store.put(orig_key, &intent.value)?;
            out.push(Recovery::Committed(orig_key.to_string()));
        }
        store.delete(&k)?;
    }
    Ok(out)
}

/// Cheap deterministic hash for txid mixing (not security-relevant).
fn fastrand_like(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvapi::mem::MemKv;
    use kvapi::Bytes;

    fn stores(n: usize) -> Vec<Arc<dyn KeyValue>> {
        (0..n)
            .map(|i| Arc::new(MemKv::new(format!("s{i}"))) as Arc<dyn KeyValue>)
            .collect()
    }

    #[test]
    fn happy_path_writes_everywhere_and_cleans_up() {
        let ss = stores(3);
        coordinated_put(&ss, "shared", b"value").unwrap();
        for s in &ss {
            assert_eq!(s.get("shared").unwrap().unwrap(), &b"value"[..]);
            assert_eq!(s.keys().unwrap(), vec!["shared"], "no intent residue");
        }
    }

    /// Store that fails all writes.
    struct DeadStore;
    impl KeyValue for DeadStore {
        fn name(&self) -> &str {
            "dead"
        }
        fn put(&self, _: &str, _: &[u8]) -> Result<()> {
            Err(StoreError::Timeout)
        }
        fn get(&self, _: &str) -> Result<Option<Bytes>> {
            Ok(None)
        }
        fn delete(&self, _: &str) -> Result<bool> {
            Ok(false)
        }
        fn keys(&self) -> Result<Vec<String>> {
            Ok(vec![])
        }
        fn clear(&self) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn prepare_failure_rolls_back_and_no_real_writes() {
        let good = Arc::new(MemKv::new("good"));
        let ss: Vec<Arc<dyn KeyValue>> = vec![good.clone(), Arc::new(DeadStore)];
        let err = coordinated_put(&ss, "k", b"v").unwrap_err();
        assert!(err.to_string().contains("prepare failed"), "{err}");
        assert!(
            good.keys().unwrap().is_empty(),
            "rollback must remove the intent"
        );
        assert_eq!(
            good.get("k").unwrap(),
            None,
            "real key must never be written"
        );
    }

    #[test]
    fn recover_finishes_interrupted_commit() {
        let s = MemKv::new("m");
        // Simulate a coordinator that crashed after phase 1 on this store.
        let intent = Intent {
            txid: 1,
            key: "doc".into(),
            value: b"v2".to_vec(),
            at_ms: 0,
        };
        s.put("doc", b"v1").unwrap();
        s.put(
            &format!("{INTENT_PREFIX}doc"),
            &serde_json::to_vec(&intent).unwrap(),
        )
        .unwrap();
        let actions = recover(&s).unwrap();
        assert_eq!(actions, vec![Recovery::Committed("doc".into())]);
        assert_eq!(s.get("doc").unwrap().unwrap(), &b"v2"[..]);
        assert_eq!(s.keys().unwrap(), vec!["doc"]);
    }

    #[test]
    fn recover_discards_already_committed_intents() {
        let s = MemKv::new("m");
        // Crash after phase 2 (value already written) but before cleanup.
        let intent = Intent {
            txid: 1,
            key: "doc".into(),
            value: b"v2".to_vec(),
            at_ms: 0,
        };
        s.put("doc", b"v2").unwrap();
        s.put(
            &format!("{INTENT_PREFIX}doc"),
            &serde_json::to_vec(&intent).unwrap(),
        )
        .unwrap();
        let actions = recover(&s).unwrap();
        assert_eq!(actions, vec![Recovery::Discarded("doc".into())]);
        assert_eq!(s.get("doc").unwrap().unwrap(), &b"v2"[..]);
    }

    #[test]
    fn recover_on_clean_store_is_noop() {
        let s = MemKv::new("m");
        s.put("normal", b"v").unwrap();
        assert!(recover(&s).unwrap().is_empty());
    }

    #[test]
    fn empty_store_list_rejected() {
        assert!(coordinated_put(&[], "k", b"v").is_err());
    }
}
