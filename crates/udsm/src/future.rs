//! [`ListenableFuture`] — the result of an asynchronous data store
//! operation.
//!
//! Mirrors the Java design the paper builds on: `Future` gives
//! `is_done` / blocking `get` / timed `get`; *Listenable* adds
//! `add_listener`, "the ability to register callbacks which are code to be
//! executed after the future completes execution. This feature is the key
//! reason that we use ListenableFutures instead of only Futures."
//!
//! Listeners registered before completion run (on the completing thread)
//! when the value arrives; listeners registered after completion run
//! immediately on the registering thread — same semantics as Guava.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

type Listener<T> = Box<dyn FnOnce(&T) + Send>;

struct State<T> {
    value: Option<Arc<T>>,
    listeners: Vec<Listener<T>>,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    cond: Condvar,
}

/// Write side of a future; owned by whoever performs the work.
pub struct Completer<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Completer<T> {
    /// Complete the future, waking waiters and firing listeners.
    ///
    /// Completing twice is a programming error and panics.
    pub fn complete(self, value: T) {
        let value = Arc::new(value);
        let listeners = {
            let mut g = self.shared.state.lock();
            assert!(g.value.is_none(), "future completed twice");
            g.value = Some(value.clone());
            std::mem::take(&mut g.listeners)
        };
        self.shared.cond.notify_all();
        for l in listeners {
            l(&value);
        }
    }
}

/// Read side: poll, block, or register callbacks.
pub struct ListenableFuture<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for ListenableFuture<T> {
    fn clone(&self) -> Self {
        ListenableFuture {
            shared: self.shared.clone(),
        }
    }
}

impl<T> ListenableFuture<T> {
    /// Create an incomplete future and its completer.
    pub fn pending() -> (ListenableFuture<T>, Completer<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                value: None,
                listeners: Vec::new(),
            }),
            cond: Condvar::new(),
        });
        (
            ListenableFuture {
                shared: shared.clone(),
            },
            Completer { shared },
        )
    }

    /// An already-completed future.
    pub fn ready(value: T) -> ListenableFuture<T> {
        let (f, c) = ListenableFuture::pending();
        c.complete(value);
        f
    }

    /// Has the computation finished?
    pub fn is_done(&self) -> bool {
        self.shared.state.lock().value.is_some()
    }

    /// Block until the value is available and return a shared handle to it.
    pub fn get(&self) -> Arc<T> {
        let mut g = self.shared.state.lock();
        while g.value.is_none() {
            self.shared.cond.wait(&mut g);
        }
        g.value.clone().expect("loop exits only when set")
    }

    /// Block up to `timeout`; `None` on timeout.
    pub fn get_timeout(&self, timeout: Duration) -> Option<Arc<T>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut g = self.shared.state.lock();
        while g.value.is_none() {
            if self.shared.cond.wait_until(&mut g, deadline).timed_out() {
                return g.value.clone();
            }
        }
        g.value.clone()
    }

    /// Register a callback to run when the value is available. If it
    /// already is, the callback runs immediately on this thread.
    pub fn add_listener(&self, listener: impl FnOnce(&T) + Send + 'static) {
        let mut listener: Option<Listener<T>> = Some(Box::new(listener));
        let immediate = {
            let mut g = self.shared.state.lock();
            match &g.value {
                Some(v) => Some(v.clone()),
                None => {
                    g.listeners.push(listener.take().expect("listener present"));
                    None
                }
            }
        };
        if let Some(v) = immediate {
            // Run outside the lock so a listener may touch the future.
            (listener.take().expect("not enqueued"))(&v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn blocking_get_across_threads() {
        let (f, c) = ListenableFuture::<u32>::pending();
        assert!(!f.is_done());
        let waiter = {
            let f = f.clone();
            std::thread::spawn(move || *f.get())
        };
        std::thread::sleep(Duration::from_millis(20));
        c.complete(42);
        assert_eq!(waiter.join().unwrap(), 42);
        assert!(f.is_done());
        assert_eq!(*f.get(), 42, "get after completion is immediate");
    }

    #[test]
    fn timed_get() {
        let (f, c) = ListenableFuture::<u32>::pending();
        assert!(f.get_timeout(Duration::from_millis(30)).is_none());
        c.complete(7);
        assert_eq!(*f.get_timeout(Duration::from_millis(30)).unwrap(), 7);
    }

    #[test]
    fn listeners_fire_on_completion() {
        let (f, c) = ListenableFuture::<String>::pending();
        let count = Arc::new(AtomicU32::new(0));
        for _ in 0..3 {
            let count = count.clone();
            f.add_listener(move |v| {
                assert_eq!(v, "done");
                count.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(count.load(Ordering::SeqCst), 0);
        c.complete("done".to_string());
        assert_eq!(count.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn listener_after_completion_runs_immediately() {
        let f = ListenableFuture::ready(5u32);
        let hit = Arc::new(AtomicU32::new(0));
        let h = hit.clone();
        f.add_listener(move |v| {
            h.store(*v, Ordering::SeqCst);
        });
        assert_eq!(hit.load(Ordering::SeqCst), 5);
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_complete_panics() {
        let (_f, c) = ListenableFuture::<u32>::pending();
        let shared = Completer {
            shared: c.shared.clone(),
        };
        c.complete(1);
        shared.complete(2);
    }
}
