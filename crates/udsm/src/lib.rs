//! # udsm — the Universal Data Store Manager
//!
//! The paper's second contribution (§II-A): one component through which an
//! application reaches *many* heterogeneous data stores, all behind the
//! common key-value interface, with enhanced features applied uniformly:
//!
//! * [`registry`] — register any number of [`kvapi::KeyValue`] stores under
//!   names; swap implementations without touching application code ("it is
//!   easy to substitute different key-value store implementations within an
//!   application as needed without changing the source code");
//! * [`future`] / [`pool`] — the **asynchronous interface**: a fixed-size
//!   thread pool (started once, "which avoids the costly creation of new
//!   threads") and a `ListenableFuture` with blocking get, timed get,
//!   `is_done`, and **callback registration** — the exact reason the paper
//!   picks Guava's ListenableFuture over plain Futures;
//! * [`asynckv`] — async get/put/delete over *any* registered store: "once
//!   a data store implements the key-value interface, no additional work is
//!   required to automatically get an asynchronous interface";
//! * [`monitor`] — performance monitoring: summary statistics forever,
//!   detailed samples for recent requests only, persistable "using any of
//!   the data stores supported by the UDSM";
//! * [`workload`] — the workload generator behind every figure in §V:
//!   size sweeps, synthetic or user-supplied values, cache hit-rate
//!   extrapolation, codec overhead measurement, gnuplot-ready output;
//! * [`coord`] — the paper's §VII future work, implemented as an extension:
//!   best-effort coordinated updates across multiple stores.

#![forbid(unsafe_code)]

pub mod asynckv;
pub mod coord;
pub mod future;
pub mod monitor;
pub mod pool;
pub mod registry;
pub mod workload;

pub use asynckv::AsyncKeyValue;
pub use future::ListenableFuture;
pub use monitor::{MonitorReport, MonitoredStore, OpKind};
pub use pool::ThreadPool;
pub use registry::UniversalDataStoreManager;
pub use workload::{Series, ValueSource, WorkloadSpec};
