//! Performance monitoring.
//!
//! §II-A: "The UDSM collects both summary performance statistics such as
//! average latency as well as detailed performance statistics such as past
//! latency measurements taken over a period of time. … there is thus the
//! capability to collect detailed data for recent requests while only
//! retaining summary statistics for older data. Performance data can be
//! stored persistently using any of the data stores supported by the UDSM."
//!
//! [`MonitoredStore`] wraps any store and records per-operation latencies:
//! running summaries (count/mean/min/max/stddev via Welford) kept forever,
//! plus a bounded ring of recent samples. [`MonitorReport`] serializes to
//! JSON and persists through the key-value interface itself.

use bytes::Bytes;
use kvapi::value::now_millis;
use kvapi::{CondGet, Etag, KeyValue, Result, StoreError, StoreStats, Versioned};
use obs::{HistogramSnapshot, LatencyHistogram};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::time::Instant;

/// Operation kinds tracked separately.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// `get` / `get_versioned`.
    Get,
    /// `put` / `put_versioned`.
    Put,
    /// `delete`.
    Delete,
    /// `contains`.
    Contains,
    /// `get_if_none_match`.
    CondGet,
    /// `keys` / `clear` / `stats` (bookkeeping ops).
    Other,
}

const KINDS: [OpKind; 6] = [
    OpKind::Get,
    OpKind::Put,
    OpKind::Delete,
    OpKind::Contains,
    OpKind::CondGet,
    OpKind::Other,
];

/// Running summary of one operation kind (Welford's online algorithm).
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Mean latency, ms.
    pub mean_ms: f64,
    /// Minimum, ms.
    pub min_ms: f64,
    /// Maximum, ms.
    pub max_ms: f64,
    /// Welford M2 accumulator (exposed for merging).
    pub m2: f64,
}

impl Summary {
    fn record(&mut self, ms: f64) {
        self.count += 1;
        if self.count == 1 {
            self.min_ms = ms;
            self.max_ms = ms;
        } else {
            self.min_ms = self.min_ms.min(ms);
            self.max_ms = self.max_ms.max(ms);
        }
        let delta = ms - self.mean_ms;
        self.mean_ms += delta / self.count as f64;
        self.m2 += delta * (ms - self.mean_ms);
    }

    /// Sample standard deviation, ms.
    pub fn stddev_ms(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count - 1) as f64).sqrt()
        }
    }
}

/// One retained recent sample.
#[derive(Clone, Copy, Debug, Serialize, Deserialize, PartialEq)]
pub struct Sample {
    /// Wall-clock timestamp, ms since epoch.
    pub at_ms: u64,
    /// Operation kind.
    pub op: OpKind,
    /// Measured latency, ms.
    pub latency_ms: f64,
}

/// Serializable monitoring state.
#[derive(Clone, Debug, Serialize, Deserialize, PartialEq)]
pub struct MonitorReport {
    /// Display name of the monitored store.
    pub store: String,
    /// Per-kind summaries, ordered as [`OpKind`]'s declaration.
    pub summaries: Vec<(OpKind, Summary)>,
    /// Recent samples, oldest first.
    pub recent: Vec<Sample>,
    /// Per-kind latency histograms (nanoseconds), for percentile queries.
    /// Defaults to empty when loading reports persisted before histograms
    /// existed — `summary()` and `recent` still work on those.
    #[serde(default)]
    pub hists: Vec<(OpKind, HistogramSnapshot)>,
}

impl MonitorReport {
    /// Summary for one kind.
    pub fn summary(&self, op: OpKind) -> Summary {
        self.summaries
            .iter()
            .find(|(k, _)| *k == op)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Latency histogram for one kind (empty when absent).
    pub fn histogram(&self, op: OpKind) -> HistogramSnapshot {
        self.hists
            .iter()
            .find(|(k, _)| *k == op)
            .map(|(_, h)| h.clone())
            .unwrap_or_default()
    }

    /// Median latency in milliseconds for one kind (0 without samples).
    pub fn p50_ms(&self, op: OpKind) -> f64 {
        self.histogram(op).p50() as f64 / 1e6
    }

    /// 99th-percentile latency in milliseconds for one kind.
    pub fn p99_ms(&self, op: OpKind) -> f64 {
        self.histogram(op).p99() as f64 / 1e6
    }

    /// Persist through any key-value store (the paper stores performance
    /// data in UDSM-managed stores).
    pub fn persist(&self, store: &dyn KeyValue, key: &str) -> Result<()> {
        let blob = serde_json::to_vec(self)
            .map_err(|e| StoreError::Other(format!("serialize report: {e}")))?;
        store.put(key, &blob)
    }

    /// Load a previously persisted report.
    pub fn load(store: &dyn KeyValue, key: &str) -> Result<Option<MonitorReport>> {
        match store.get(key)? {
            None => Ok(None),
            Some(blob) => serde_json::from_slice(&blob)
                .map(Some)
                .map_err(|e| StoreError::corrupt(format!("bad report: {e}"))),
        }
    }
}

struct MonitorState {
    summaries: [Summary; 6],
    hists: [LatencyHistogram; 6],
    recent: VecDeque<Sample>,
    recent_cap: usize,
}

/// A [`KeyValue`] wrapper that measures every operation.
pub struct MonitoredStore<S> {
    inner: S,
    name: String,
    state: Mutex<MonitorState>,
}

impl<S: KeyValue> MonitoredStore<S> {
    /// Wrap `inner`, retaining up to `recent_cap` detailed samples.
    pub fn new(inner: S, recent_cap: usize) -> MonitoredStore<S> {
        let name = format!("monitored({})", inner.name());
        MonitoredStore {
            inner,
            name,
            state: Mutex::new(MonitorState {
                summaries: [Summary::default(); 6],
                hists: std::array::from_fn(|_| LatencyHistogram::new()),
                recent: VecDeque::with_capacity(recent_cap.min(4096)),
                recent_cap,
            }),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    fn timed<T>(&self, op: OpKind, f: impl FnOnce(&S) -> T) -> T {
        let t0 = Instant::now();
        let out = f(&self.inner);
        let elapsed = t0.elapsed();
        let ms = elapsed.as_secs_f64() * 1000.0;
        let mut g = self.state.lock();
        let idx = KINDS.iter().position(|k| *k == op).expect("known kind");
        g.summaries[idx].record(ms);
        g.hists[idx].record_duration(elapsed);
        if g.recent_cap > 0 {
            if g.recent.len() == g.recent_cap {
                g.recent.pop_front();
            }
            g.recent.push_back(Sample {
                at_ms: now_millis(),
                op,
                latency_ms: ms,
            });
        }
        out
    }

    /// Snapshot the collected statistics.
    pub fn report(&self) -> MonitorReport {
        let g = self.state.lock();
        MonitorReport {
            store: self.inner.name().to_string(),
            summaries: KINDS.iter().copied().zip(g.summaries).collect(),
            recent: g.recent.iter().copied().collect(),
            hists: KINDS
                .iter()
                .copied()
                .zip(g.hists.iter().map(|h| h.snapshot()))
                .collect(),
        }
    }

    /// Clear all statistics.
    pub fn reset(&self) {
        let mut g = self.state.lock();
        g.summaries = [Summary::default(); 6];
        g.hists = std::array::from_fn(|_| LatencyHistogram::new());
        g.recent.clear();
    }
}

impl<S: KeyValue> KeyValue for MonitoredStore<S> {
    fn name(&self) -> &str {
        &self.name
    }
    fn put(&self, key: &str, value: &[u8]) -> Result<()> {
        self.timed(OpKind::Put, |s| s.put(key, value))
    }
    fn put_versioned(&self, key: &str, value: &[u8]) -> Result<Etag> {
        self.timed(OpKind::Put, |s| s.put_versioned(key, value))
    }
    fn get(&self, key: &str) -> Result<Option<Bytes>> {
        self.timed(OpKind::Get, |s| s.get(key))
    }
    fn get_versioned(&self, key: &str) -> Result<Option<Versioned>> {
        self.timed(OpKind::Get, |s| s.get_versioned(key))
    }
    fn get_if_none_match(&self, key: &str, etag: Etag) -> Result<CondGet> {
        self.timed(OpKind::CondGet, |s| s.get_if_none_match(key, etag))
    }
    fn delete(&self, key: &str) -> Result<bool> {
        self.timed(OpKind::Delete, |s| s.delete(key))
    }
    fn contains(&self, key: &str) -> Result<bool> {
        self.timed(OpKind::Contains, |s| s.contains(key))
    }
    fn keys(&self) -> Result<Vec<String>> {
        self.timed(OpKind::Other, |s| s.keys())
    }
    fn clear(&self) -> Result<()> {
        self.timed(OpKind::Other, |s| s.clear())
    }
    fn stats(&self) -> Result<StoreStats> {
        self.inner.stats()
    }
    fn sync(&self) -> Result<()> {
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvapi::mem::MemKv;

    #[test]
    fn contract_still_holds_when_monitored() {
        kvapi::contract::run_all(&MonitoredStore::new(MemKv::new("m"), 100));
    }

    #[test]
    fn summaries_accumulate() {
        let m = MonitoredStore::new(MemKv::new("m"), 100);
        for i in 0..10 {
            m.put(&format!("k{i}"), b"v").unwrap();
        }
        for i in 0..20 {
            let _ = m.get(&format!("k{}", i % 10)).unwrap();
        }
        let r = m.report();
        assert_eq!(r.summary(OpKind::Put).count, 10);
        assert_eq!(r.summary(OpKind::Get).count, 20);
        assert_eq!(r.summary(OpKind::Delete).count, 0);
        let g = r.summary(OpKind::Get);
        assert!(g.mean_ms >= 0.0 && g.min_ms <= g.max_ms);
        assert!(g.stddev_ms() >= 0.0);
    }

    #[test]
    fn welford_matches_naive() {
        let mut s = Summary::default();
        let values = [1.0f64, 2.0, 4.0, 8.0, 16.0];
        for v in values {
            s.record(v);
        }
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        let var: f64 =
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
        assert!((s.mean_ms - mean).abs() < 1e-12);
        assert!((s.stddev_ms() - var.sqrt()).abs() < 1e-12);
        assert_eq!(s.min_ms, 1.0);
        assert_eq!(s.max_ms, 16.0);
    }

    #[test]
    fn recent_ring_is_bounded_and_fresh() {
        let m = MonitoredStore::new(MemKv::new("m"), 5);
        for i in 0..25 {
            m.put(&format!("k{i}"), b"v").unwrap();
        }
        let r = m.report();
        assert_eq!(r.recent.len(), 5, "only the most recent N are detailed");
        assert_eq!(
            r.summary(OpKind::Put).count,
            25,
            "summary keeps the full history"
        );
        assert!(r.recent.iter().all(|s| s.op == OpKind::Put));
        // Oldest-first ordering.
        for w in r.recent.windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms);
        }
    }

    #[test]
    fn percentiles_come_from_histograms() {
        let m = MonitoredStore::new(MemKv::new("m"), 10);
        for i in 0..200 {
            m.put(&format!("k{i}"), b"v").unwrap();
            let _ = m.get(&format!("k{i}")).unwrap();
        }
        let r = m.report();
        let h = r.histogram(OpKind::Get);
        assert_eq!(h.count, 200);
        let p50 = r.p50_ms(OpKind::Get);
        let p99 = r.p99_ms(OpKind::Get);
        assert!(p50 > 0.0 && p50 <= p99, "p50={p50} p99={p99}");
        // Histogram aggregates agree with the Welford summary.
        let s = r.summary(OpKind::Get);
        assert_eq!(h.count, s.count);
        assert!((h.mean() / 1e6 - s.mean_ms).abs() <= s.mean_ms * 0.01 + 1e-3);
        // Untouched kinds stay empty.
        assert_eq!(r.histogram(OpKind::Delete).count, 0);
        assert_eq!(r.p99_ms(OpKind::Delete), 0.0);
    }

    #[test]
    fn pre_histogram_reports_still_load() {
        // A report persisted before the hists field existed: the JSON has
        // no "hists" key, and `#[serde(default)]` fills in an empty vec.
        let m = MonitoredStore::new(MemKv::new("m"), 4);
        m.put("a", b"1").unwrap();
        let report = m.report();
        let json = serde_json::to_string(&report).unwrap();
        let legacy = {
            let idx = json.find(",\"hists\":").expect("hists serialized");
            // Strip the hists field (it is serialized last).
            format!("{}}}", &json[..idx])
        };
        let loaded: MonitorReport = serde_json::from_str(&legacy).unwrap();
        assert_eq!(loaded.summary(OpKind::Put).count, 1);
        assert!(loaded.hists.is_empty());
        assert_eq!(loaded.p50_ms(OpKind::Put), 0.0, "no histogram data → 0");
    }

    #[test]
    fn report_persists_through_any_store() {
        let m = MonitoredStore::new(MemKv::new("m"), 10);
        m.put("a", b"1").unwrap();
        let _ = m.get("a").unwrap();
        let report = m.report();
        let archive = MemKv::new("archive");
        report.persist(&archive, "perf/mem").unwrap();
        let loaded = MonitorReport::load(&archive, "perf/mem").unwrap().unwrap();
        assert_eq!(loaded, report);
        assert_eq!(MonitorReport::load(&archive, "perf/none").unwrap(), None);
    }

    #[test]
    fn reset_clears() {
        let m = MonitoredStore::new(MemKv::new("m"), 10);
        m.put("a", b"1").unwrap();
        m.reset();
        let r = m.report();
        assert_eq!(r.summary(OpKind::Put).count, 0);
        assert!(r.recent.is_empty());
    }

    #[test]
    fn conditional_gets_tracked_separately() {
        let m = MonitoredStore::new(MemKv::new("m"), 10);
        m.put("k", b"v").unwrap();
        let v = m.get_versioned("k").unwrap().unwrap();
        let _ = m.get_if_none_match("k", v.etag).unwrap();
        let r = m.report();
        assert_eq!(r.summary(OpKind::CondGet).count, 1);
        assert_eq!(r.summary(OpKind::Get).count, 1);
    }
}
