//! Fixed-size worker thread pool.
//!
//! §II-A: "Since creating a new thread is expensive, the UDSM uses thread
//! pools in which a given number of threads are started up when the UDSM is
//! initiated and maintained throughout the lifetime of the UDSM … Users can
//! specify the thread pool size via a configuration parameter."

use crate::future::ListenableFuture;
use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send>;

/// A pool of worker threads executing submitted closures.
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    size: usize,
}

impl ThreadPool {
    /// Start `size` workers (minimum 1).
    pub fn new(size: usize) -> ThreadPool {
        let size = size.max(1);
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..size)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("udsm-worker-{i}"))
                    .spawn(move || {
                        // Channel closed = pool dropped = clean exit.
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();
        ThreadPool {
            tx: Some(tx),
            workers,
            size,
        }
    }

    /// Number of workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Run `f` on a pool worker; the returned future completes with its
    /// result.
    pub fn submit<T: Send + Sync + 'static>(
        &self,
        f: impl FnOnce() -> T + Send + 'static,
    ) -> ListenableFuture<T> {
        let (future, completer) = ListenableFuture::pending();
        let job: Job = Box::new(move || completer.complete(f()));
        self.tx
            .as_ref()
            .expect("pool alive while not dropped")
            .send(job)
            .expect("workers hold the receiver while pool is alive");
        future
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Close the channel; workers drain remaining jobs and exit.
        self.tx.take();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn submits_run_and_return_values() {
        let pool = ThreadPool::new(4);
        assert_eq!(pool.size(), 4);
        let futures: Vec<_> = (0..20).map(|i| pool.submit(move || i * i)).collect();
        for (i, f) in futures.iter().enumerate() {
            assert_eq!(*f.get(), i * i);
        }
    }

    #[test]
    fn work_is_parallel() {
        let pool = ThreadPool::new(4);
        let t0 = std::time::Instant::now();
        let futures: Vec<_> = (0..4)
            .map(|_| pool.submit(|| std::thread::sleep(Duration::from_millis(80))))
            .collect();
        for f in &futures {
            f.get();
        }
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(300),
            "4 × 80 ms jobs on 4 workers took {elapsed:?} (serial would be ≥320 ms)"
        );
    }

    #[test]
    fn queued_jobs_all_run_with_one_worker() {
        let pool = ThreadPool::new(1);
        let counter = Arc::new(AtomicU32::new(0));
        let futures: Vec<_> = (0..50)
            .map(|_| {
                let c = counter.clone();
                pool.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                })
            })
            .collect();
        for f in futures {
            f.get();
        }
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn drop_drains_pending_work() {
        let counter = Arc::new(AtomicU32::new(0));
        {
            let pool = ThreadPool::new(2);
            for _ in 0..10 {
                let c = counter.clone();
                pool.submit(move || {
                    std::thread::sleep(Duration::from_millis(5));
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
            // Drop joins workers after the queue drains.
        }
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn listener_fires_from_worker_thread() {
        let pool = ThreadPool::new(2);
        let hit = Arc::new(AtomicU32::new(0));
        let h = hit.clone();
        let f = pool.submit(|| 99u32);
        f.add_listener(move |v| {
            h.store(*v, Ordering::SeqCst);
        });
        f.get();
        // The listener runs on the worker thread (or immediately if the
        // job already finished); `get` can wake before the worker reaches
        // the listener, so wait briefly rather than assert instantly.
        let deadline = std::time::Instant::now() + Duration::from_secs(2);
        while hit.load(Ordering::SeqCst) != 99 {
            assert!(std::time::Instant::now() < deadline, "listener never fired");
            std::thread::yield_now();
        }
    }
}
