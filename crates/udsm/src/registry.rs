//! The store registry — the "manager" in Universal Data Store Manager.

use crate::asynckv::AsyncKeyValue;
use crate::pool::ThreadPool;
use kvapi::{KeyValue, Result, StoreError};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Registry of named stores plus the shared thread pool that powers the
/// asynchronous interface.
///
/// "The UDSM is designed to allow new clients for the same data store to
/// replace older ones as the clients evolve over time" — registering under
/// an existing name replaces the previous client; handles already obtained
/// keep using the old one until dropped (`Arc` semantics).
pub struct UniversalDataStoreManager {
    stores: RwLock<HashMap<String, Arc<dyn KeyValue>>>,
    pool: Arc<ThreadPool>,
}

impl UniversalDataStoreManager {
    /// Create a manager with `pool_size` async worker threads (the paper's
    /// configurable thread pool size).
    pub fn new(pool_size: usize) -> UniversalDataStoreManager {
        UniversalDataStoreManager {
            stores: RwLock::new(HashMap::new()),
            pool: Arc::new(ThreadPool::new(pool_size)),
        }
    }

    /// Register (or replace) a store under `name`.
    pub fn register(&self, name: impl Into<String>, store: Arc<dyn KeyValue>) {
        self.stores.write().insert(name.into(), store);
    }

    /// Remove a store; returns whether it existed.
    pub fn deregister(&self, name: &str) -> bool {
        self.stores.write().remove(name).is_some()
    }

    /// Look up a store by name.
    pub fn store(&self, name: &str) -> Result<Arc<dyn KeyValue>> {
        self.stores
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| StoreError::Rejected(format!("no store registered as {name:?}")))
    }

    /// Names of all registered stores (sorted for stable output).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.stores.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Asynchronous handle to a registered store — every store gets the
    /// async interface for free.
    pub fn async_store(&self, name: &str) -> Result<AsyncKeyValue> {
        Ok(AsyncKeyValue::new(self.store(name)?, self.pool.clone()))
    }

    /// The shared thread pool (for callers composing their own async work).
    pub fn pool(&self) -> &Arc<ThreadPool> {
        &self.pool
    }

    /// Build a [`cluster::ClusterClient`] over `endpoints` through
    /// `connector` and register it under `name` — a sharded, replicated,
    /// hedging cluster is just another [`KeyValue`], so it automatically
    /// gets the async interface, monitoring, and workload generation like
    /// every other store. The client handle is returned so callers can
    /// drive ring changes and publish cluster metrics.
    pub fn register_cluster(
        &self,
        name: impl Into<String>,
        endpoints: &[String],
        connector: &dyn kvapi::Connector,
        policy: cluster::ClusterPolicy,
    ) -> Result<Arc<cluster::ClusterClient>> {
        let name = name.into();
        let client = Arc::new(cluster::ClusterClient::connect(
            name.clone(),
            endpoints,
            connector,
            policy,
        )?);
        self.register(name, client.clone() as Arc<dyn KeyValue>);
        Ok(client)
    }

    /// Copy every key from store `from` to store `to` — the common-interface
    /// payoff: any store can seed, back up, or replace any other.
    pub fn copy_all(&self, from: &str, to: &str) -> Result<u64> {
        let src = self.store(from)?;
        let dst = self.store(to)?;
        let mut copied = 0;
        for key in src.keys()? {
            if let Some(v) = src.get(&key)? {
                dst.put(&key, &v)?;
                copied += 1;
            }
        }
        Ok(copied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kvapi::mem::MemKv;

    #[test]
    fn register_lookup_replace() {
        let udsm = UniversalDataStoreManager::new(2);
        udsm.register("a", Arc::new(MemKv::new("a1")));
        udsm.register("b", Arc::new(MemKv::new("b1")));
        assert_eq!(udsm.names(), vec!["a", "b"]);
        assert_eq!(udsm.store("a").unwrap().name(), "a1");
        // Replacement: a newer client for the same logical store.
        udsm.register("a", Arc::new(MemKv::new("a2")));
        assert_eq!(udsm.store("a").unwrap().name(), "a2");
        assert!(udsm.store("missing").is_err());
        assert!(udsm.deregister("b"));
        assert!(!udsm.deregister("b"));
    }

    #[test]
    fn same_code_runs_on_any_store() {
        // The paper's central claim for the common interface: application
        // logic written once against KeyValue works on every registered
        // store.
        let udsm = UniversalDataStoreManager::new(2);
        udsm.register("first", Arc::new(MemKv::new("x")));
        udsm.register("second", Arc::new(MemKv::new("y")));
        for name in udsm.names() {
            let store = udsm.store(&name).unwrap();
            store.put("shared-key", name.as_bytes()).unwrap();
            assert_eq!(store.get("shared-key").unwrap().unwrap(), name.as_bytes());
        }
    }

    #[test]
    fn async_interface_for_every_store() {
        let udsm = UniversalDataStoreManager::new(2);
        udsm.register("mem", Arc::new(MemKv::new("mem")));
        let akv = udsm.async_store("mem").unwrap();
        akv.put("k", &b"async"[..]).get().as_ref().as_ref().unwrap();
        let v = akv.get("k").get();
        assert_eq!(v.as_ref().as_ref().unwrap().as_deref(), Some(&b"async"[..]));
    }

    #[test]
    fn register_cluster_is_just_another_store() {
        let udsm = UniversalDataStoreManager::new(2);
        let connector = |ep: &str| -> Result<Arc<dyn KeyValue>> {
            Ok(Arc::new(MemKv::new(ep)) as Arc<dyn KeyValue>)
        };
        let endpoints: Vec<String> = (0..3).map(|i| format!("node-{i}")).collect();
        let client = udsm
            .register_cluster(
                "shard",
                &endpoints,
                &connector,
                cluster::ClusterPolicy::test_profile(),
            )
            .unwrap();
        assert_eq!(client.node_ids(), endpoints);
        // The cluster is reachable through the ordinary registry path…
        let store = udsm.store("shard").unwrap();
        store.put("k", b"v").unwrap();
        assert_eq!(store.get("k").unwrap().as_deref(), Some(&b"v"[..]));
        // …and through the free async interface like any other store.
        let akv = udsm.async_store("shard").unwrap();
        let v = akv.get("k").get();
        assert_eq!(v.as_ref().as_ref().unwrap().as_deref(), Some(&b"v"[..]));
        // Seeding another store from the cluster works via the common
        // interface too.
        udsm.register("backup", Arc::new(MemKv::new("backup")));
        assert_eq!(udsm.copy_all("shard", "backup").unwrap(), 1);
    }

    #[test]
    fn copy_between_stores() {
        let udsm = UniversalDataStoreManager::new(2);
        udsm.register("src", Arc::new(MemKv::new("src")));
        udsm.register("dst", Arc::new(MemKv::new("dst")));
        let src = udsm.store("src").unwrap();
        for i in 0..10 {
            src.put(&format!("k{i}"), format!("v{i}").as_bytes())
                .unwrap();
        }
        assert_eq!(udsm.copy_all("src", "dst").unwrap(), 10);
        let dst = udsm.store("dst").unwrap();
        assert_eq!(dst.get("k7").unwrap().unwrap(), &b"v7"[..]);
    }
}
