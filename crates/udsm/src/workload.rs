//! The workload generator (paper §II-A, the engine behind every figure in
//! §V).
//!
//! "The workload generator automatically generates requests over a range of
//! different request sizes specified by the user … can synthetically
//! generate data objects … alternatively, users can provide their own data
//! objects … by placing the data in input files or writing a user-defined
//! method. The workload generator also determines read latencies when
//! caching is being used for different hit rates specified by the user.
//! Additionally, it measures the overhead of encryption and compression.
//! … Data from performance testing is stored in text files which can be
//! easily imported into graph plotting tools such as gnuplot."
//!
//! Hit-rate handling follows the paper exactly: measure the no-cache
//! latency and the 100 %-hit latency, then extrapolate
//! `L(h) = h·L_hit + (1−h)·L_miss` for the requested rates.

use bytes::Bytes;
use dscl_cache::Cache;
use kvapi::codec::Codec;
use kvapi::{KeyValue, Result, StoreError};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Where test values come from.
#[derive(Clone)]
pub enum ValueSource {
    /// Deterministic synthetic bytes. `compressibility` ∈ \[0,1\]: 0 = pure
    /// noise (incompressible), 1 = a single repeated phrase (maximally
    /// compressible); intermediate values mix the two.
    Synthetic {
        /// RNG seed (fixed = reproducible values).
        seed: u64,
        /// Fraction of structured (compressible) content.
        compressibility: f64,
    },
    /// Bytes drawn from user-provided files, cycled/truncated to size
    /// (the paper's "placing the data in input files").
    Files(Vec<PathBuf>),
    /// A user-defined generator (the paper's "user-defined method"):
    /// `f(size) -> bytes`.
    Custom(Arc<dyn Fn(usize) -> Vec<u8> + Send + Sync>),
}

impl ValueSource {
    /// Default: moderately compressible synthetic data.
    pub fn synthetic() -> ValueSource {
        ValueSource::Synthetic {
            seed: 42,
            compressibility: 0.5,
        }
    }

    /// Produce a value of exactly `size` bytes; `index` varies content
    /// between operations.
    pub fn generate(&self, size: usize, index: u64) -> Result<Vec<u8>> {
        match self {
            ValueSource::Synthetic {
                seed,
                compressibility,
            } => {
                let mut rng = SmallRng::seed_from_u64(seed ^ index.wrapping_mul(0x9e37_79b9));
                let phrase = b"the universal data store manager stores and retrieves objects. ";
                let mut out = Vec::with_capacity(size);
                while out.len() < size {
                    if rng.gen_bool(compressibility.clamp(0.0, 1.0)) {
                        let take = phrase.len().min(size - out.len());
                        out.extend_from_slice(&phrase[..take]);
                    } else {
                        let take = 16.min(size - out.len());
                        for _ in 0..take {
                            out.push(rng.gen());
                        }
                    }
                }
                Ok(out)
            }
            ValueSource::Files(paths) => {
                if paths.is_empty() {
                    return Err(StoreError::Rejected("no input files".into()));
                }
                let path = &paths[(index as usize) % paths.len()];
                let data = std::fs::read(path)?;
                if data.is_empty() {
                    return Err(StoreError::Rejected(format!("empty input file {path:?}")));
                }
                Ok(data.iter().copied().cycle().take(size).collect())
            }
            ValueSource::Custom(f) => {
                let v = f(size);
                if v.len() != size {
                    return Err(StoreError::Rejected(format!(
                        "custom generator returned {} bytes, wanted {size}",
                        v.len()
                    )));
                }
                Ok(v)
            }
        }
    }
}

/// One measured curve: label + (object size, latency ms) points.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Series {
    /// Curve label ("fskv", "redis 75% hit rate", ...).
    pub label: String,
    /// (size bytes, mean latency ms), ascending sizes.
    pub points: Vec<(f64, f64)>,
    /// Per-size `(p50 ms, p99 ms)` tail latencies, parallel to `points`.
    /// Empty for derived series (e.g. hit-rate extrapolations), which have
    /// no per-operation samples to take percentiles over.
    pub tails: Vec<(f64, f64)>,
    /// Per-size `(trace id, latency ms)` of the slowest traced operation,
    /// parallel to `points`. Read/write sweeps run every operation under a
    /// root [`obs::TraceContext`], so the id can be resolved against the
    /// flight recorder (`udsm-cli trace --id`). Empty for sweeps that do
    /// not trace per-operation (derived, codec, batch curves).
    pub slowest: Vec<(u128, f64)>,
}

/// Workload parameters.
#[derive(Clone)]
pub struct WorkloadSpec {
    /// Object sizes to sweep (paper figures use log-spaced sizes).
    pub sizes: Vec<usize>,
    /// Operations timed per (size, run).
    pub ops_per_point: usize,
    /// Independent runs averaged per point ("each data point is averaged
    /// over 4 runs" in the paper).
    pub runs: usize,
    /// Value source.
    pub source: ValueSource,
    /// Cache hit rates for the caching sweeps.
    pub hit_rates: Vec<f64>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            sizes: log_sizes(100, 1_000_000, 2),
            ops_per_point: 10,
            runs: 4,
            source: ValueSource::synthetic(),
            hit_rates: vec![0.0, 0.25, 0.5, 0.75, 1.0],
        }
    }
}

/// Log-spaced sizes from `min` to `max` with `per_decade` points per decade
/// (always includes `max`).
pub fn log_sizes(min: usize, max: usize, per_decade: usize) -> Vec<usize> {
    assert!(min >= 1 && max >= min && per_decade >= 1);
    let step = 10f64.powf(1.0 / per_decade as f64);
    let mut out = Vec::new();
    let mut x = min as f64;
    while x < max as f64 * 0.999 {
        out.push(x.round() as usize);
        x *= step;
    }
    out.push(max);
    out.dedup();
    out
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// `(p50 ms, p99 ms)` from a histogram of per-op nanosecond samples.
fn tail_ms(hist: &obs::LatencyHistogram) -> (f64, f64) {
    let snap = hist.snapshot();
    (snap.p50() as f64 / 1e6, snap.p99() as f64 / 1e6)
}

/// Run one workload operation under a fresh root trace: activates the
/// context so enhanced clients and store clients join it (their spans and
/// events land in this trace), times `f` as one stage, and offers the
/// completed trace to the global flight recorder under origin `workload`.
/// Returns the result, the measured duration, and the trace id.
fn traced_op<R>(
    op: &'static str,
    stage: &'static str,
    f: impl FnOnce() -> Result<R>,
) -> (Result<R>, Duration, u128) {
    let ctx = obs::TraceContext::new_root();
    let scope = obs::ctx::activate(ctx);
    let mut trace = obs::Trace::begin(op).with_ctx(ctx);
    let t0 = Instant::now();
    let out = f();
    let elapsed = t0.elapsed();
    trace.add(stage, elapsed);
    trace.absorb_scope(scope.finish());
    if let Err(e) = &out {
        trace.set_error(e.to_string());
    }
    trace.complete("workload");
    (out, elapsed, ctx.trace_id)
}

impl WorkloadSpec {
    /// Mean read latency vs object size (Fig. 9 per store).
    pub fn read_sweep(&self, store: &dyn KeyValue, label: &str) -> Result<Series> {
        let mut points = Vec::with_capacity(self.sizes.len());
        let mut tails = Vec::with_capacity(self.sizes.len());
        let mut slowest = Vec::with_capacity(self.sizes.len());
        for &size in &self.sizes {
            let key = format!("wl-read-{size}");
            let value = self.source.generate(size, size as u64)?;
            store.put(&key, &value)?;
            let mut run_means = Vec::with_capacity(self.runs);
            let hist = obs::LatencyHistogram::new();
            let mut slow = (0u128, Duration::ZERO);
            for _ in 0..self.runs {
                let t0 = Instant::now();
                for _ in 0..self.ops_per_point {
                    let (got, elapsed, trace_id) =
                        traced_op("read", "store_get", || store.get(&key));
                    let got =
                        got?.ok_or_else(|| StoreError::Other("workload value vanished".into()))?;
                    hist.record_duration(elapsed);
                    debug_assert_eq!(got.len(), size);
                    if elapsed > slow.1 {
                        slow = (trace_id, elapsed);
                    }
                }
                run_means.push(t0.elapsed().as_secs_f64() * 1000.0 / self.ops_per_point as f64);
            }
            points.push((size as f64, mean(&run_means)));
            tails.push(tail_ms(&hist));
            slowest.push((slow.0, slow.1.as_secs_f64() * 1000.0));
            store.delete(&key)?;
        }
        Ok(Series {
            label: label.to_string(),
            points,
            tails,
            slowest,
        })
    }

    /// Mean write latency vs object size (Fig. 10 per store).
    pub fn write_sweep(&self, store: &dyn KeyValue, label: &str) -> Result<Series> {
        let mut points = Vec::with_capacity(self.sizes.len());
        let mut tails = Vec::with_capacity(self.sizes.len());
        let mut slowest = Vec::with_capacity(self.sizes.len());
        for &size in &self.sizes {
            let mut run_means = Vec::with_capacity(self.runs);
            let hist = obs::LatencyHistogram::new();
            let mut slow = (0u128, Duration::ZERO);
            for run in 0..self.runs {
                // Distinct values per op so stores cannot dedupe.
                let values: Vec<Vec<u8>> = (0..self.ops_per_point)
                    .map(|i| self.source.generate(size, (run * 1000 + i) as u64))
                    .collect::<Result<_>>()?;
                let t0 = Instant::now();
                for (i, v) in values.iter().enumerate() {
                    let (out, elapsed, trace_id) = traced_op("write", "store_put", || {
                        store.put(&format!("wl-write-{size}-{i}"), v)
                    });
                    out?;
                    hist.record_duration(elapsed);
                    if elapsed > slow.1 {
                        slow = (trace_id, elapsed);
                    }
                }
                run_means.push(t0.elapsed().as_secs_f64() * 1000.0 / self.ops_per_point as f64);
            }
            for i in 0..self.ops_per_point {
                store.delete(&format!("wl-write-{size}-{i}"))?;
            }
            points.push((size as f64, mean(&run_means)));
            tails.push(tail_ms(&hist));
            slowest.push((slow.0, slow.1.as_secs_f64() * 1000.0));
        }
        Ok(Series {
            label: label.to_string(),
            points,
            tails,
            slowest,
        })
    }

    /// Read latency vs size for each configured hit rate, against a given
    /// cache (Figs. 11–19: one call per store × cache type).
    ///
    /// Measures the miss path (store read) and the hit path (cache read)
    /// per size, then extrapolates each requested rate — the paper's
    /// methodology verbatim.
    pub fn cached_read_sweep(
        &self,
        store: &dyn KeyValue,
        cache: &dyn Cache,
        label_prefix: &str,
    ) -> Result<Vec<Series>> {
        let mut hit_curve = Vec::with_capacity(self.sizes.len());
        let mut miss_curve = Vec::with_capacity(self.sizes.len());
        for &size in &self.sizes {
            let key = format!("wl-cached-{size}");
            let value = self.source.generate(size, size as u64)?;
            store.put(&key, &value)?;

            // Miss path: read from the store (what a 0% hit rate costs).
            let mut miss_runs = Vec::with_capacity(self.runs);
            for _ in 0..self.runs {
                let t0 = Instant::now();
                for _ in 0..self.ops_per_point {
                    let _ = store.get(&key)?;
                }
                miss_runs.push(t0.elapsed().as_secs_f64() * 1000.0 / self.ops_per_point as f64);
            }

            // Hit path: prime the cache, then read from it.
            cache.put(&key, Bytes::from(value));
            let mut hit_runs = Vec::with_capacity(self.runs);
            for _ in 0..self.runs {
                let t0 = Instant::now();
                for _ in 0..self.ops_per_point {
                    let got = cache.get(&key);
                    debug_assert!(got.is_some());
                }
                hit_runs.push(t0.elapsed().as_secs_f64() * 1000.0 / self.ops_per_point as f64);
            }
            cache.remove(&key);
            store.delete(&key)?;
            miss_curve.push((size as f64, mean(&miss_runs)));
            hit_curve.push((size as f64, mean(&hit_runs)));
        }

        // Extrapolate L(h) = h·hit + (1−h)·miss.
        Ok(self
            .hit_rates
            .iter()
            .map(|&h| Series {
                label: if h == 0.0 {
                    format!("{label_prefix} no caching")
                } else {
                    format!("{label_prefix} {:.0}% hit rate", h * 100.0)
                },
                points: miss_curve
                    .iter()
                    .zip(&hit_curve)
                    .map(|(&(size, miss), &(_, hit))| (size, h * hit + (1.0 - h) * miss))
                    .collect(),
                // Extrapolated curves have no per-op samples to rank.
                tails: Vec::new(),
                slowest: Vec::new(),
            })
            .collect())
    }

    /// Batch latency vs batch size for `get_many`/`put_many` — the RTT
    /// amortization curve the batch API exists to produce. X values are
    /// batch sizes (keys per call), Y values are mean milliseconds *per
    /// batch*; a store that pipelines shows a near-flat curve while the
    /// looping default grows linearly. Object size is the smallest size in
    /// the spec (batching amortizes round trips, not bandwidth, so small
    /// objects show the effect most clearly).
    pub fn batch_sweep(
        &self,
        store: &dyn KeyValue,
        label: &str,
        batch_sizes: &[usize],
    ) -> Result<(Series, Series)> {
        let value_size = self.sizes.first().copied().unwrap_or(100);
        let mut get_points = Vec::with_capacity(batch_sizes.len());
        let mut put_points = Vec::with_capacity(batch_sizes.len());
        let mut get_tails = Vec::with_capacity(batch_sizes.len());
        let mut put_tails = Vec::with_capacity(batch_sizes.len());
        for &n in batch_sizes {
            let keys: Vec<String> = (0..n).map(|i| format!("wl-batch-{n}-{i}")).collect();
            let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            let values: Vec<Vec<u8>> = (0..n)
                .map(|i| self.source.generate(value_size, (n * 1000 + i) as u64))
                .collect::<Result<_>>()?;
            let entries: Vec<(&str, &[u8])> = key_refs
                .iter()
                .zip(&values)
                .map(|(&k, v)| (k, v.as_slice()))
                .collect();

            let put_hist = obs::LatencyHistogram::new();
            let mut put_runs = Vec::with_capacity(self.runs);
            for _ in 0..self.runs {
                let t0 = Instant::now();
                for _ in 0..self.ops_per_point {
                    let op0 = Instant::now();
                    store.put_many(&entries)?;
                    put_hist.record_duration(op0.elapsed());
                }
                put_runs.push(t0.elapsed().as_secs_f64() * 1000.0 / self.ops_per_point as f64);
            }

            let get_hist = obs::LatencyHistogram::new();
            let mut get_runs = Vec::with_capacity(self.runs);
            for _ in 0..self.runs {
                let t0 = Instant::now();
                for _ in 0..self.ops_per_point {
                    let op0 = Instant::now();
                    let got = store.get_many(&key_refs)?;
                    get_hist.record_duration(op0.elapsed());
                    debug_assert!(got.iter().all(Option::is_some));
                }
                get_runs.push(t0.elapsed().as_secs_f64() * 1000.0 / self.ops_per_point as f64);
            }

            store.delete_many(&key_refs)?;
            get_points.push((n as f64, mean(&get_runs)));
            put_points.push((n as f64, mean(&put_runs)));
            get_tails.push(tail_ms(&get_hist));
            put_tails.push(tail_ms(&put_hist));
        }
        Ok((
            Series {
                label: format!("{label} get_many"),
                points: get_points,
                tails: get_tails,
                slowest: Vec::new(),
            },
            Series {
                label: format!("{label} put_many"),
                points: put_points,
                tails: put_tails,
                slowest: Vec::new(),
            },
        ))
    }

    /// Encode/decode latency vs size for a codec (Figs. 20/21: AES and
    /// gzip overheads).
    pub fn codec_sweep(&self, codec: &dyn Codec) -> Result<(Series, Series)> {
        let mut enc_points = Vec::with_capacity(self.sizes.len());
        let mut dec_points = Vec::with_capacity(self.sizes.len());
        let mut enc_tails = Vec::with_capacity(self.sizes.len());
        let mut dec_tails = Vec::with_capacity(self.sizes.len());
        for &size in &self.sizes {
            let value = self.source.generate(size, size as u64)?;
            let encoded = codec.encode(&value)?;
            let mut enc_runs = Vec::with_capacity(self.runs);
            let mut dec_runs = Vec::with_capacity(self.runs);
            let enc_hist = obs::LatencyHistogram::new();
            let dec_hist = obs::LatencyHistogram::new();
            for _ in 0..self.runs {
                let t0 = Instant::now();
                for _ in 0..self.ops_per_point {
                    let op0 = Instant::now();
                    let out = codec.encode(&value)?;
                    enc_hist.record_duration(op0.elapsed());
                    std::hint::black_box(&out);
                }
                enc_runs.push(t0.elapsed().as_secs_f64() * 1000.0 / self.ops_per_point as f64);
                let t0 = Instant::now();
                for _ in 0..self.ops_per_point {
                    let op0 = Instant::now();
                    let out = codec.decode(&encoded)?;
                    dec_hist.record_duration(op0.elapsed());
                    std::hint::black_box(&out);
                }
                dec_runs.push(t0.elapsed().as_secs_f64() * 1000.0 / self.ops_per_point as f64);
            }
            enc_points.push((size as f64, mean(&enc_runs)));
            dec_points.push((size as f64, mean(&dec_runs)));
            enc_tails.push(tail_ms(&enc_hist));
            dec_tails.push(tail_ms(&dec_hist));
        }
        Ok((
            Series {
                label: format!("{} encode", codec.name()),
                points: enc_points,
                tails: enc_tails,
                slowest: Vec::new(),
            },
            Series {
                label: format!("{} decode", codec.name()),
                points: dec_points,
                tails: dec_tails,
                slowest: Vec::new(),
            },
        ))
    }
}

/// Write series as a gnuplot/Excel-friendly text file: a header comment, a
/// label row, then `size y1 y2 …` columns. All series must share x values.
/// A series carrying tail data additionally contributes `label p50` and
/// `label p99` columns right after its mean column.
pub fn write_gnuplot(path: impl AsRef<Path>, series: &[Series]) -> Result<()> {
    let mut f = std::fs::File::create(path.as_ref())?;
    writeln!(f, "# generated by udsm workload generator")?;
    write!(f, "# size_bytes")?;
    for s in series {
        let label = s.label.replace(['\t', '\n'], " ");
        write!(f, "\t{label}")?;
        if !s.tails.is_empty() {
            write!(f, "\t{label} p50\t{label} p99")?;
        }
    }
    writeln!(f)?;
    let n = series.first().map(|s| s.points.len()).unwrap_or(0);
    for i in 0..n {
        write!(f, "{}", series[0].points[i].0)?;
        for s in series {
            let (x, y) = s.points[i];
            debug_assert_eq!(x, series[0].points[i].0, "series must share x values");
            write!(f, "\t{y:.6}")?;
            if !s.tails.is_empty() {
                let (p50, p99) = s.tails[i];
                write!(f, "\t{p50:.6}\t{p99:.6}")?;
            }
        }
        writeln!(f)?;
    }
    Ok(())
}

/// One line per sweep point naming the slowest traced operation, ready to
/// paste into `udsm-cli trace --id <trace>`. Series without per-op traces
/// (derived or batch curves) contribute nothing.
pub fn slowest_report(series: &[Series]) -> String {
    let mut out = String::new();
    for s in series {
        for (&(size, _), &(trace_id, ms)) in s.points.iter().zip(&s.slowest) {
            if trace_id != 0 {
                out.push_str(&format!(
                    "{}  size={size}  slowest={ms:.3}ms  trace={trace_id:032x}\n",
                    s.label
                ));
            }
        }
    }
    out
}

/// Render series as a Markdown table (size column + one column per series).
pub fn to_markdown(series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str("| size (bytes) |");
    for s in series {
        out.push_str(&format!(" {} |", s.label));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in series {
        out.push_str("---|");
    }
    out.push('\n');
    let n = series.first().map(|s| s.points.len()).unwrap_or(0);
    for i in 0..n {
        out.push_str(&format!("| {} |", series[0].points[i].0));
        for s in series {
            out.push_str(&format!(" {:.3} |", s.points[i].1));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dscl_cache::InProcessLru;
    use kvapi::mem::MemKv;

    fn quick_spec() -> WorkloadSpec {
        WorkloadSpec {
            sizes: vec![100, 1000],
            ops_per_point: 3,
            runs: 2,
            source: ValueSource::synthetic(),
            hit_rates: vec![0.0, 0.5, 1.0],
        }
    }

    #[test]
    fn log_sizes_shape() {
        let s = log_sizes(100, 100_000, 1);
        assert_eq!(s, vec![100, 1000, 10_000, 100_000]);
        let s2 = log_sizes(100, 1_000_000, 2);
        assert_eq!(s2.first(), Some(&100));
        assert_eq!(s2.last(), Some(&1_000_000));
        assert!(s2.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(s2.len(), 9);
    }

    #[test]
    fn synthetic_values_deterministic_and_sized() {
        let src = ValueSource::Synthetic {
            seed: 7,
            compressibility: 0.5,
        };
        let a = src.generate(5000, 1).unwrap();
        let b = src.generate(5000, 1).unwrap();
        let c = src.generate(5000, 2).unwrap();
        assert_eq!(a.len(), 5000);
        assert_eq!(a, b, "same seed+index must be deterministic");
        assert_ne!(a, c, "different index should vary content");
    }

    #[test]
    fn compressibility_affects_entropy() {
        let loose = ValueSource::Synthetic {
            seed: 1,
            compressibility: 0.0,
        }
        .generate(20_000, 0)
        .unwrap();
        let tight = ValueSource::Synthetic {
            seed: 1,
            compressibility: 1.0,
        }
        .generate(20_000, 0)
        .unwrap();
        let distinct = |v: &[u8]| v.iter().collect::<std::collections::HashSet<_>>().len();
        assert!(distinct(&loose) > 200);
        assert!(
            distinct(&tight) < 40,
            "fully structured data uses a small alphabet"
        );
    }

    #[test]
    fn file_source_cycles() {
        let path = std::env::temp_dir().join(format!("wl-src-{}", std::process::id()));
        std::fs::write(&path, b"abc").unwrap();
        let src = ValueSource::Files(vec![path.clone()]);
        assert_eq!(src.generate(7, 0).unwrap(), b"abcabca");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn custom_source_validated() {
        let good = ValueSource::Custom(Arc::new(|n| vec![7u8; n]));
        assert_eq!(good.generate(5, 0).unwrap(), vec![7u8; 5]);
        let bad = ValueSource::Custom(Arc::new(|_| vec![1, 2, 3]));
        assert!(bad.generate(5, 0).is_err());
    }

    #[test]
    fn read_write_sweeps_produce_points_and_clean_up() {
        let spec = quick_spec();
        let store = MemKv::new("m");
        let r = spec.read_sweep(&store, "mem").unwrap();
        assert_eq!(r.points.len(), 2);
        assert!(r.points.iter().all(|&(_, ms)| ms >= 0.0));
        let w = spec.write_sweep(&store, "mem").unwrap();
        assert_eq!(w.points.len(), 2);
        assert!(store.keys().unwrap().is_empty(), "sweeps must clean up");
        // Percentile columns ride along, one (p50, p99) pair per size.
        assert_eq!(r.tails.len(), 2);
        assert_eq!(w.tails.len(), 2);
        assert!(r.tails.iter().all(|&(p50, p99)| 0.0 <= p50 && p50 <= p99));
    }

    #[test]
    fn sweeps_track_the_slowest_trace_per_point() {
        let spec = quick_spec();
        let store = MemKv::new("m");
        let r = spec.read_sweep(&store, "mem").unwrap();
        let w = spec.write_sweep(&store, "mem").unwrap();
        // One (trace id, ms) per size, ids minted by the per-op tracer.
        assert_eq!(r.slowest.len(), 2);
        assert_eq!(w.slowest.len(), 2);
        assert!(r.slowest.iter().all(|&(id, _)| id != 0));
        let report = slowest_report(&[r, w]);
        assert_eq!(report.lines().count(), 4, "{report}");
        assert!(report.contains("trace="), "{report}");
        assert!(report.contains("size=1000"), "{report}");
    }

    #[test]
    fn cached_sweep_interpolates_between_miss_and_hit() {
        let spec = quick_spec();
        let store = MemKv::new("m");
        let cache = InProcessLru::new(1 << 22);
        let series = spec.cached_read_sweep(&store, &cache, "mem").unwrap();
        assert_eq!(series.len(), 3);
        assert!(series[0].label.contains("no caching"));
        assert!(series[2].label.contains("100%"));
        for i in 0..series[0].points.len() {
            let l0 = series[0].points[i].1;
            let l50 = series[1].points[i].1;
            let l100 = series[2].points[i].1;
            let expect = 0.5 * l100 + 0.5 * l0;
            assert!(
                (l50 - expect).abs() < 1e-9,
                "midpoint must be exact interpolation"
            );
        }
    }

    #[test]
    fn codec_sweep_measures_both_directions() {
        let spec = quick_spec();
        let codec = dscl_compress::GzipCodec::default();
        let (enc, dec) = spec.codec_sweep(&codec).unwrap();
        assert_eq!(enc.points.len(), 2);
        assert_eq!(dec.points.len(), 2);
        assert!(enc.label.contains("encode"));
    }

    #[test]
    fn gnuplot_output_format() {
        let series = vec![
            Series {
                label: "a".into(),
                points: vec![(100.0, 1.5), (1000.0, 2.5)],
                tails: vec![],
                slowest: vec![],
            },
            Series {
                label: "b".into(),
                points: vec![(100.0, 3.0), (1000.0, 4.0)],
                tails: vec![],
                slowest: vec![],
            },
        ];
        let path = std::env::temp_dir().join(format!("wl-gp-{}", std::process::id()));
        write_gnuplot(&path, &series).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].starts_with('#'));
        assert!(lines[1].contains("a") && lines[1].contains("b"));
        assert!(lines[2].starts_with("100"));
        assert_eq!(lines[2].split('\t').count(), 3);
        std::fs::remove_file(&path).ok();

        let md = to_markdown(&series);
        assert!(md.contains("| size (bytes) | a | b |"));
        assert!(md.contains("| 100 | 1.500 | 3.000 |"));
    }

    #[test]
    fn batch_sweep_produces_per_batch_curves() {
        let spec = quick_spec();
        let store = MemKv::new("m");
        let (gets, puts) = spec.batch_sweep(&store, "mem", &[1, 4, 16]).unwrap();
        assert_eq!(gets.label, "mem get_many");
        assert_eq!(puts.label, "mem put_many");
        let sizes: Vec<f64> = gets.points.iter().map(|&(x, _)| x).collect();
        assert_eq!(sizes, vec![1.0, 4.0, 16.0]);
        assert_eq!(gets.tails.len(), 3, "p50/p99 pair per batch size");
        assert!(gets
            .tails
            .iter()
            .all(|&(p50, p99)| 0.0 <= p50 && p50 <= p99));
        assert!(store.keys().unwrap().is_empty(), "sweep must clean up");

        // The gnuplot file carries the percentile columns the figure needs.
        let path = std::env::temp_dir().join(format!("wl-batch-{}", std::process::id()));
        write_gnuplot(&path, &[gets, puts]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let header = text.lines().nth(1).unwrap();
        assert!(header.contains("mem get_many p50") && header.contains("mem put_many p99"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn gnuplot_emits_percentile_columns_for_tailed_series() {
        let series = vec![Series {
            label: "mem".into(),
            points: vec![(100.0, 1.5), (1000.0, 2.5)],
            tails: vec![(1.2, 4.8), (2.0, 9.9)],
            slowest: vec![],
        }];
        let path = std::env::temp_dir().join(format!("wl-gp-tails-{}", std::process::id()));
        write_gnuplot(&path, &series).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[1].contains("mem\tmem p50\tmem p99"), "{:?}", lines[1]);
        assert_eq!(lines[2].split('\t').count(), 4, "size + mean + p50 + p99");
        assert!(
            lines[2].contains("1.200000") && lines[2].contains("4.800000"),
            "{:?}",
            lines[2]
        );
        std::fs::remove_file(&path).ok();
    }
}

/// A side-by-side comparison of several stores (the paper's "easily
/// compare the performance of data stores ... to pick the best option").
#[derive(Clone, Debug)]
pub struct Comparison {
    /// One read-latency series per store.
    pub reads: Vec<Series>,
    /// One write-latency series per store.
    pub writes: Vec<Series>,
}

impl Comparison {
    /// The store with the lowest read latency at `size` (largest swept size
    /// ≤ `size`).
    pub fn best_reader_at(&self, size: usize) -> Option<&str> {
        best_at(&self.reads, size)
    }

    /// The store with the lowest write latency at `size`.
    pub fn best_writer_at(&self, size: usize) -> Option<&str> {
        best_at(&self.writes, size)
    }

    /// Render both tables plus per-size winners as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("### Read latency (ms)\n\n");
        out.push_str(&to_markdown(&self.reads));
        out.push_str("\n### Write latency (ms)\n\n");
        out.push_str(&to_markdown(&self.writes));
        out.push_str("\n### Winners\n\n| size | best reader | best writer |\n|---|---|---|\n");
        if let Some(first) = self.reads.first() {
            for &(size, _) in &first.points {
                out.push_str(&format!(
                    "| {size} | {} | {} |\n",
                    self.best_reader_at(size as usize).unwrap_or("?"),
                    self.best_writer_at(size as usize).unwrap_or("?"),
                ));
            }
        }
        out
    }
}

fn best_at(series: &[Series], size: usize) -> Option<&str> {
    series
        .iter()
        .filter_map(|s| {
            s.points
                .iter()
                .rfind(|(x, _)| *x <= size as f64)
                .or_else(|| s.points.first())
                .map(|&(_, y)| (s.label.as_str(), y))
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(label, _)| label)
}

impl WorkloadSpec {
    /// Sweep reads and writes across every store and assemble a
    /// [`Comparison`].
    pub fn compare_stores(
        &self,
        stores: &[(&str, std::sync::Arc<dyn KeyValue>)],
    ) -> Result<Comparison> {
        let mut reads = Vec::with_capacity(stores.len());
        let mut writes = Vec::with_capacity(stores.len());
        for (name, store) in stores {
            reads.push(self.read_sweep(store.as_ref(), name)?);
            writes.push(self.write_sweep(store.as_ref(), name)?);
        }
        Ok(Comparison { reads, writes })
    }
}

#[cfg(test)]
mod comparison_tests {
    use super::*;
    use kvapi::mem::MemKv;
    use kvapi::{KeyValue, Result};
    use std::sync::Arc;

    /// A store with fixed artificial latency, so winners are deterministic.
    struct Slowed(MemKv, std::time::Duration);
    impl KeyValue for Slowed {
        fn name(&self) -> &str {
            "slowed"
        }
        fn put(&self, k: &str, v: &[u8]) -> Result<()> {
            std::thread::sleep(self.1);
            self.0.put(k, v)
        }
        fn get(&self, k: &str) -> Result<Option<kvapi::Bytes>> {
            std::thread::sleep(self.1);
            self.0.get(k)
        }
        fn delete(&self, k: &str) -> Result<bool> {
            self.0.delete(k)
        }
        fn keys(&self) -> Result<Vec<String>> {
            self.0.keys()
        }
        fn clear(&self) -> Result<()> {
            self.0.clear()
        }
    }

    #[test]
    fn comparison_identifies_the_faster_store() {
        let spec = WorkloadSpec {
            sizes: vec![100, 1000],
            ops_per_point: 2,
            runs: 1,
            source: ValueSource::synthetic(),
            hit_rates: vec![],
        };
        let fast: Arc<dyn KeyValue> = Arc::new(MemKv::new("fast"));
        let slow: Arc<dyn KeyValue> =
            Arc::new(Slowed(MemKv::new("s"), std::time::Duration::from_millis(3)));
        let cmp = spec
            .compare_stores(&[("fast", fast), ("slow", slow)])
            .unwrap();
        assert_eq!(cmp.best_reader_at(100), Some("fast"));
        assert_eq!(cmp.best_writer_at(1000), Some("fast"));
        let md = cmp.to_markdown();
        assert!(md.contains("best reader"));
        assert!(md.contains("| 100 | fast | fast |"));
    }
}
