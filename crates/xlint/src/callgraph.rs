//! Phase-1½: the resolved intra-workspace call graph.
//!
//! Resolution is conservative *by precision*, not by fan-out: an edge is
//! only drawn when the target is nearly certain, because the passes that
//! consume the graph (lock-order transitive closure, deadline
//! reachability, taint propagation) amplify every false edge into false
//! findings. The ladder, in order:
//!
//! 1. `self.f()` inside `impl T` → methods named `f` with receiver `T`.
//! 2. `Qual::f()` → methods of `Qual` (`Self::f` uses the enclosing impl);
//!    falling back to free functions named `f` (module-qualified helpers
//!    like `persist::load`).
//! 3. `x.f()` with an untyped receiver → resolved only if the workspace
//!    has exactly one method named `f`; ambiguous names (`get`, `len`,
//!    `send`, ...) draw no edge. Documented limitation: shared method
//!    names on untyped receivers are invisible to the passes.
//! 4. `f(...)` free call → free functions named `f`, preferring the same
//!    file, then the same crate (the `lock(&m)` poison helper exists per
//!    crate; each resolves to its own).
//!
//! Trait-object and closure calls are never resolved (no type info), and
//! test functions are excluded as both callers and callees.

use crate::model::{Call, CallKind, FileData, Model};

/// For each function, the resolved callee fn indices of each call site
/// (parallel to `FnNode::calls`).
pub struct CallGraph {
    pub callees: Vec<Vec<Vec<usize>>>,
}

/// Resolve one call site from `caller` to candidate fn indices.
pub fn resolve(model: &Model, caller: usize, call: &Call) -> Vec<usize> {
    let Some(cands) = model.by_name.get(&call.name) else {
        return Vec::new();
    };
    let caller_fn = &model.fns[caller];
    let live: Vec<usize> = cands
        .iter()
        .copied()
        .filter(|&i| !model.fns[i].is_test && i != caller)
        .collect();
    if live.is_empty() {
        return Vec::new();
    }
    match &call.kind {
        CallKind::Method { on_self: true } => {
            if let Some(recv) = &caller_fn.recv {
                let typed: Vec<usize> = live
                    .iter()
                    .copied()
                    .filter(|&i| model.fns[i].recv.as_deref() == Some(recv))
                    .collect();
                if !typed.is_empty() {
                    return typed;
                }
            }
            unique_method(model, &live)
        }
        CallKind::Method { on_self: false } => unique_method(model, &live),
        CallKind::Path { qual } => {
            let want = if qual == "Self" {
                caller_fn.recv.clone()
            } else {
                Some(qual.clone())
            };
            let typed: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&i| model.fns[i].recv == want)
                .collect();
            if !typed.is_empty() {
                return typed;
            }
            // Module-qualified free helper (`persist::load(...)`).
            live.iter()
                .copied()
                .filter(|&i| model.fns[i].recv.is_none())
                .collect()
        }
        CallKind::Free => {
            let free: Vec<usize> = live
                .iter()
                .copied()
                .filter(|&i| model.fns[i].recv.is_none())
                .collect();
            if free.is_empty() {
                return Vec::new();
            }
            let same_file: Vec<usize> = free
                .iter()
                .copied()
                .filter(|&i| model.fns[i].file == caller_fn.file)
                .collect();
            if !same_file.is_empty() {
                return same_file;
            }
            let same_crate: Vec<usize> = free
                .iter()
                .copied()
                .filter(|&i| model.fns[i].krate == caller_fn.krate)
                .collect();
            if !same_crate.is_empty() {
                return same_crate;
            }
            free
        }
    }
}

/// Rung 3: untyped method receiver — only a workspace-unique method name
/// resolves.
fn unique_method(model: &Model, live: &[usize]) -> Vec<usize> {
    let methods: Vec<usize> = live
        .iter()
        .copied()
        .filter(|&i| model.fns[i].recv.is_some())
        .collect();
    if methods.len() == 1 {
        methods
    } else {
        Vec::new()
    }
}

/// Resolve every call site in the model.
pub fn build(model: &Model) -> CallGraph {
    let callees = model
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| {
            f.calls
                .iter()
                .map(|c| {
                    if f.is_test {
                        Vec::new()
                    } else {
                        resolve(model, i, c)
                    }
                })
                .collect()
        })
        .collect();
    CallGraph { callees }
}

/// Flattened callee set of one function.
pub fn callees_of(graph: &CallGraph, fn_idx: usize) -> impl Iterator<Item = usize> + '_ {
    graph.callees[fn_idx].iter().flatten().copied()
}

/// Render the call graph as a GraphViz digraph.
pub fn dot(files: &[FileData], model: &Model, graph: &CallGraph) -> String {
    let mut out = String::from("digraph calls {\n  rankdir=LR;\n  node [shape=box];\n");
    let mut edges = std::collections::BTreeSet::new();
    for (i, f) in model.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        for &j in graph.callees[i].iter().flatten() {
            edges.insert((label(files, model, i), label(files, model, j)));
        }
    }
    for (a, b) in edges {
        out.push_str(&format!("  \"{a}\" -> \"{b}\";\n"));
    }
    out.push_str("}\n");
    out
}

fn label(files: &[FileData], model: &Model, i: usize) -> String {
    let f = &model.fns[i];
    format!("{}\\n{}", f.qname(), files[f.file].path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{build as build_model, FileData};

    fn two_files() -> Vec<FileData> {
        vec![
            FileData::new(
                "crates/rpc/src/a.rs",
                r#"
impl MuxSender {
    fn send(&self) { self.lease(); scan_reply(); other.unique_helper(); other.get(0); }
    fn lease(&self) { lock(&self.pool); }
}
fn lock(m: &M) {}
fn scan_reply() {}
"#,
            ),
            FileData::new(
                "crates/cache/src/b.rs",
                r#"
impl Shard {
    fn unique_helper(&self) {}
    fn get(&self, k: usize) {}
}
impl Other { fn get(&self, k: usize) {} }
fn lock(m: &M) {}
"#,
            ),
        ]
    }

    #[test]
    fn resolution_ladder() {
        let files = two_files();
        let m = build_model(&files);
        let g = build(&m);
        let idx = |name: &str, krate: &str| {
            m.fns
                .iter()
                .position(|f| f.name == name && f.krate == krate)
                .unwrap()
        };
        let send = idx("send", "rpc");
        let resolved: Vec<Vec<usize>> = g.callees[send].clone();
        // self.lease() → typed match.
        assert_eq!(resolved[0], vec![idx("lease", "rpc")]);
        // scan_reply() free → same file.
        assert_eq!(resolved[1], vec![idx("scan_reply", "rpc")]);
        // other.unique_helper() → unique method in workspace.
        assert_eq!(resolved[2], vec![idx("unique_helper", "cache")]);
        // other.get(0) → ambiguous (two `get` methods): no edge.
        assert!(resolved[3].is_empty(), "{resolved:?}");
        // lease's `lock(&self.pool)` → the same-crate helper, not cache's.
        let lease = idx("lease", "rpc");
        assert_eq!(g.callees[lease][0], vec![idx("lock", "rpc")]);
    }
}
