//! Scope policy: which rules apply to which workspace files.
//!
//! Paths are matched by suffix against workspace-relative, `/`-separated
//! paths, so both `cargo run -p xlint` from the workspace root and the
//! fixture tests (which feed virtual paths) resolve identically.

/// Frame-parser files: rule `wire-arith` (unchecked arithmetic on
/// wire-derived lengths) applies here.
const PARSER_FILES: &[&str] = &[
    "crates/cloudstore/src/batch.rs",
    "crates/cloudstore/src/http.rs",
    "crates/miniredis/src/resp.rs",
    "crates/miniredis/src/server.rs",
    "crates/minisql/src/server.rs",
];

/// Server connection-handler and client request-path files: rule
/// `panic-path` (no unwrap/expect/indexing — a panic is a dropped
/// connection) applies here.
const REQUEST_PATH_FILES: &[&str] = &[
    "crates/cloudstore/src/server.rs",
    "crates/cloudstore/src/client.rs",
    "crates/cloudstore/src/http.rs",
    "crates/cloudstore/src/batch.rs",
    "crates/miniredis/src/server.rs",
    "crates/miniredis/src/client.rs",
    "crates/miniredis/src/resp.rs",
    "crates/minisql/src/server.rs",
    "crates/minisql/src/client.rs",
];

/// Crates allowed to contain `unsafe` (always with a `SAFETY:` comment).
const UNSAFE_ALLOWED: &[&str] = &["crates/fskv/", "crates/shims/"];

/// Client-side request-path code: the scope of `deadline-propagation`
/// reachability. Server handlers are deliberately outside it — their time
/// discipline is the reactor's (`blocking-in-reactor`), not a per-request
/// budget.
const CLIENT_PATH_PREFIXES: &[&str] = &[
    "crates/rpc/src/",
    "crates/core/src/",
    "crates/resilience/src/",
];
const CLIENT_PATH_FILES: &[&str] = &[
    "crates/cloudstore/src/client.rs",
    "crates/cloudstore/src/http.rs",
    "crates/cloudstore/src/batch.rs",
    "crates/miniredis/src/client.rs",
    "crates/miniredis/src/resp.rs",
    "crates/minisql/src/client.rs",
];

/// Rule scoping policy for one scan run.
#[derive(Default)]
pub struct Policy;

impl Policy {
    /// Files the walker should not scan at all.
    pub fn skip(&self, path: &str) -> bool {
        path.contains("target/") || path.contains(".git/") || path.contains("crates/xlint/")
    }

    /// Test/bench/example code: panics and shortcuts are acceptable there.
    fn is_test_code(&self, path: &str) -> bool {
        path.starts_with("tests/")
            || path.contains("/tests/")
            || path.contains("/examples/")
            || path.contains("/benches/")
    }

    /// Vendored shim crates: exempt from the behavioral rules (they mimic
    /// external APIs verbatim), but still subject to `unsafe-allowlist`.
    fn is_shim(&self, path: &str) -> bool {
        path.contains("crates/shims/")
    }

    /// Does `wire-arith` apply to this file?
    pub fn wire_arith_applies(&self, path: &str) -> bool {
        PARSER_FILES.iter().any(|f| path.ends_with(f))
    }

    /// Does `panic-path` apply to this file?
    pub fn panic_path_applies(&self, path: &str) -> bool {
        REQUEST_PATH_FILES.iter().any(|f| path.ends_with(f))
    }

    /// Do the workspace-wide rules (`guard-across-io`, `retry-idempotency`)
    /// apply to this file?
    pub fn general_rules_apply(&self, path: &str) -> bool {
        !self.is_shim(path) && !self.is_test_code(path)
    }

    /// Does `metric-hygiene` apply to this file? Shims don't register
    /// first-party metrics, and tests may mint throwaway series freely.
    pub fn metric_hygiene_applies(&self, path: &str) -> bool {
        !self.is_shim(path) && !self.is_test_code(path)
    }

    /// Do frame-parser reads in this file seed `wire-taint`? The
    /// `wire-arith` parser files plus the rpc framers (length-prefixed
    /// reply scanning lives there since the transport split).
    pub fn taint_seed_applies(&self, path: &str) -> bool {
        self.wire_arith_applies(path) || path.contains("crates/rpc/src/")
    }

    /// Does `lock-order` track this file? Everything non-test, with one
    /// shim exception: the reactor is in-tree concurrency, not a vendored
    /// API mimic, so its lock discipline is checked like first-party code.
    pub fn lock_order_applies(&self, path: &str) -> bool {
        !self.is_test_code(path) && (!self.is_shim(path) || path.contains("crates/shims/reactor/"))
    }

    /// Is this file on the client request path (`deadline-propagation`
    /// reachability scope)?
    pub fn deadline_applies(&self, path: &str) -> bool {
        !self.is_test_code(path)
            && (CLIENT_PATH_PREFIXES.iter().any(|p| path.contains(p))
                || CLIENT_PATH_FILES.iter().any(|f| path.ends_with(f)))
    }

    /// May this file contain `unsafe` at all?
    pub fn unsafe_allowed(&self, path: &str) -> bool {
        UNSAFE_ALLOWED
            .iter()
            .any(|prefix| path.starts_with(prefix) || path.contains(&format!("/{prefix}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping() {
        let p = Policy;
        assert!(p.wire_arith_applies("crates/miniredis/src/resp.rs"));
        assert!(!p.wire_arith_applies("crates/cache/src/lru.rs"));
        assert!(p.panic_path_applies("crates/minisql/src/client.rs"));
        assert!(!p.panic_path_applies("crates/minisql/src/engine.rs"));
        assert!(p.general_rules_apply("crates/cache/src/lru.rs"));
        assert!(!p.general_rules_apply("crates/shims/parking_lot/src/lib.rs"));
        assert!(!p.general_rules_apply("crates/kvapi/tests/contract.rs"));
        assert!(p.unsafe_allowed("crates/fskv/src/lib.rs"));
        assert!(p.unsafe_allowed("crates/shims/serde_json/src/lib.rs"));
        assert!(!p.unsafe_allowed("crates/cache/src/lru.rs"));
        assert!(p.skip("crates/xlint/src/rules.rs"));
        assert!(p.skip("target/debug/build/foo.rs"));
    }
}
