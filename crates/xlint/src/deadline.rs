//! `deadline-propagation`: every function on a client request path that
//! touches a socket must take or derive a `Deadline`.
//!
//! Entry points are the client-facing request boundaries: `RpcSender`
//! implementations' `send`/`send_async`/`send_pipelined`, every
//! `EnhancedClient` operation, and the resilience `run_*` family. From
//! those the pass walks the resolved call graph, restricted to the
//! client-side files in [`Policy::deadline_applies`] (server handlers
//! answer to the reactor's timers, not a request budget). A reachable
//! function performing socket I/O (`connect`, `write_all`, `read_exact`,
//! `flush`, ...) must be *deadline-aware*: a signature mentioning
//! `Deadline`/`SendOptions`/a deadline-carrying struct (closed over fields
//! by the model), a `deadline` parameter, or a body that consults one
//! (`Deadline::`, `set_read_timeout`, ...). Anything else is a path where
//! the request budget was dropped on the floor — exactly the regression
//! class the PR 7 transport split introduced.

use crate::callgraph::CallGraph;
use crate::config::Policy;
use crate::lexer::Kind;
use crate::model::{FileData, Model};
use crate::report::Finding;
use crate::rules;
use std::collections::BTreeMap;

/// Calls that hit the socket (or block on it) on the client side.
const SOCKET_IO: &[&str] = &[
    "connect",
    "connect_timeout",
    "write_all",
    "read_exact",
    "read_to_end",
    "read_line",
    "flush",
];

/// Identifiers in a signature or body that show the function carries or
/// consults a request budget.
const DEADLINE_MARKS: &[&str] = &[
    "deadline",
    "Deadline",
    "SharedDeadline",
    "DeadlineStream",
    "SendOptions",
    "set_read_timeout",
    "set_write_timeout",
];

fn is_entry(model: &Model, fi: usize) -> bool {
    let f = &model.fns[fi];
    (f.krate == "rpc"
        && f.recv.is_some()
        && matches!(f.name.as_str(), "send" | "send_async" | "send_pipelined"))
        || f.recv.as_deref() == Some("EnhancedClient")
        || (f.krate == "resilience"
            && matches!(
                f.name.as_str(),
                "run_idempotent" | "run_once" | "run_guarded"
            ))
}

fn deadline_aware(files: &[FileData], model: &Model, fi: usize) -> bool {
    let f = &model.fns[fi];
    // Methods *on* a deadline-carrying type (DeadlineStream's own Read/Write
    // impls) are the budget mechanism, not a leak of it.
    if f.recv
        .as_deref()
        .is_some_and(|r| DEADLINE_MARKS.contains(&r) || model.deadline_types.contains(r))
    {
        return true;
    }
    if f.sig_idents
        .iter()
        .any(|s| DEADLINE_MARKS.contains(&s.as_str()) || model.deadline_types.contains(s))
    {
        return true;
    }
    let toks = &files[f.file].toks;
    (f.body.0..f.body.1).any(|i| {
        !f.in_nested(i)
            && toks[i].kind == Kind::Ident
            && (DEADLINE_MARKS.contains(&toks[i].text.as_str())
                || model.deadline_types.contains(&toks[i].text))
    })
}

/// Run the pass.
pub fn deadline_propagation(
    files: &[FileData],
    model: &Model,
    graph: &CallGraph,
    policy: &Policy,
) -> Vec<Finding> {
    let in_scope = |fi: usize| {
        let f = &model.fns[fi];
        !f.is_test && policy.deadline_applies(&files[f.file].path)
    };

    // BFS from the entry points; remember which entry first reached each fn.
    let mut entry_of: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: Vec<usize> = Vec::new();
    for fi in 0..model.fns.len() {
        if in_scope(fi) && is_entry(model, fi) {
            entry_of.insert(fi, fi);
            queue.push(fi);
        }
    }
    while let Some(fi) = queue.pop() {
        let entry = entry_of[&fi];
        for (ci, _) in model.fns[fi].calls.iter().enumerate() {
            for &callee in &graph.callees[fi][ci] {
                if in_scope(callee) && !entry_of.contains_key(&callee) {
                    entry_of.insert(callee, entry);
                    queue.push(callee);
                }
            }
        }
    }

    let mut out = Vec::new();
    for (&fi, &entry) in &entry_of {
        let f = &model.fns[fi];
        if deadline_aware(files, model, fi) {
            continue;
        }
        let Some(io) = f
            .calls
            .iter()
            .find(|c| SOCKET_IO.contains(&c.name.as_str()))
        else {
            continue;
        };
        let e = &model.fns[entry];
        out.push(Finding::new(
            rules::DEADLINE,
            &files[f.file].path,
            io.line,
            format!(
                "`{}` performs socket I/O (`{}` at {}:{}) on the request path from `{}` \
                 ({}:{}) but neither takes nor derives a Deadline; thread the budget through \
                 or wrap the stream in DeadlineStream",
                f.qname(),
                io.name,
                files[f.file].path,
                io.line,
                e.qname(),
                files[e.file].path,
                e.line,
            ),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build as build_graph;
    use crate::config::Policy;
    use crate::model::{build as build_model, FileData};

    fn run(files: &[(&str, &str)]) -> Vec<Finding> {
        let files: Vec<FileData> = files.iter().map(|(p, s)| FileData::new(p, s)).collect();
        let model = build_model(&files);
        let graph = build_graph(&model);
        deadline_propagation(&files, &model, &graph, &Policy)
    }

    #[test]
    fn dropped_budget_across_the_seam_is_flagged() {
        let findings = run(&[(
            "crates/rpc/src/blocking.rs",
            r#"
impl BlockingSender {
    fn send(&self, req: &[u8], deadline: &Deadline) -> Result<Vec<u8>> {
        self.push_frame(req)
    }
    fn push_frame(&self, req: &[u8]) -> Result<Vec<u8>> {
        self.stream.write_all(req)
    }
}
"#,
        )]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("push_frame"));
        assert!(findings[0].message.contains("BlockingSender::send"));
    }

    #[test]
    fn deadline_carrying_param_type_is_aware() {
        let findings = run(&[(
            "crates/rpc/src/blocking.rs",
            r#"
struct BlockConn { stream: DeadlineStream }
impl BlockingSender {
    fn send(&self, req: &[u8], deadline: &Deadline) -> Result<Vec<u8>> {
        self.push_frame(req)
    }
    fn push_frame(&self, conn: &mut BlockConn) -> Result<Vec<u8>> {
        conn.stream.write_all(b"x")
    }
}
"#,
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn unreachable_io_is_not_flagged() {
        let findings = run(&[(
            "crates/rpc/src/blocking.rs",
            "fn orphan_write(s: &mut TcpStream) { s.write_all(b\"x\").unwrap(); }",
        )]);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
