//! A lightweight Rust tokenizer — just enough lexical structure for the
//! per-function scanners: identifiers, literals, punctuation, and comments
//! (kept as tokens, because suppressions and `SAFETY:` justifications live
//! in comments), each tagged with its 1-based source line.
//!
//! This is deliberately *not* a full Rust lexer. It understands everything
//! needed to never mis-tokenize real code in this workspace: line and block
//! comments (nested), string/raw-string/byte-string literals, char literals
//! vs. lifetimes, and numeric literals. Anything else is single-character
//! punctuation; rules that need multi-character operators (`+=`, `..`)
//! inspect token neighborhoods.

/// Token classification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`fn`, `let`, `unsafe`, names...).
    Ident,
    /// Numeric literal.
    Num,
    /// String / raw string / byte string literal.
    Str,
    /// Char or byte-char literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// `// ...` comment (text includes the slashes).
    LineComment,
    /// `/* ... */` comment.
    BlockComment,
    /// Single punctuation character.
    Punct(char),
}

/// One token with its source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Classification.
    pub kind: Kind,
    /// Raw text (empty for punctuation; see `Kind::Punct`).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// Is this token the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == Kind::Ident && self.text == s
    }

    /// Is this token the punctuation `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == Kind::Punct(c)
    }

    /// Is this a comment token?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, Kind::LineComment | Kind::BlockComment)
    }
}

/// Tokenize `src`. Never fails: unrecognized bytes become punctuation.
pub fn lex(src: &str) -> Vec<Tok> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line = line.saturating_add(1);
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::LineComment,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: Kind::BlockComment,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'"' => {
                let (end, nl) = scan_string(b, i);
                toks.push(Tok {
                    kind: Kind::Str,
                    text: src[i..end].to_string(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'r' | b'b' if starts_string_prefix(b, i) => {
                let (end, nl, kind) = scan_prefixed_literal(b, i);
                toks.push(Tok {
                    kind,
                    text: src[i..end].to_string(),
                    line,
                });
                line += nl;
                i = end;
            }
            b'\'' => {
                // Char literal or lifetime.
                let (end, kind) = scan_quote(b, i);
                toks.push(Tok {
                    kind,
                    text: src[i..end].to_string(),
                    line,
                });
                i = end;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    // Don't swallow `..` range operators or method calls on
                    // literals (`1.max(x)`): only take a dot followed by a
                    // digit.
                    if b[i] == b'.' && !b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        break;
                    }
                    i += 1;
                }
                toks.push(Tok {
                    kind: Kind::Num,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii() => {
                toks.push(Tok {
                    kind: Kind::Punct(c as char),
                    text: String::new(),
                    line,
                });
                i += 1;
            }
            _ => {
                // Multi-byte UTF-8 outside literals (e.g. in doc text that
                // slipped through): skip the full code point.
                let mut j = i + 1;
                while j < b.len() && (b[j] & 0xc0) == 0x80 {
                    j += 1;
                }
                i = j;
            }
        }
    }
    toks
}

/// Does `r`/`b` at `i` begin a raw/byte string or byte-char literal prefix?
fn starts_string_prefix(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'b' => {
            matches!(b.get(i + 1), Some(&b'"') | Some(&b'\''))
                || (b.get(i + 1) == Some(&b'r')
                    && matches!(b.get(i + 2), Some(&b'"') | Some(&b'#')))
        }
        b'r' => matches!(b.get(i + 1), Some(&b'"') | Some(&b'#')),
        _ => false,
    }
}

/// Scan a plain `"..."` string starting at `i`; returns (end, newlines).
fn scan_string(b: &[u8], i: usize) -> (usize, usize) {
    let mut j = i + 1;
    let mut nl = 0;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return (j + 1, nl),
            b'\n' => {
                nl += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, nl)
}

/// Scan `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, or `b'…'` starting at `i`.
fn scan_prefixed_literal(b: &[u8], i: usize) -> (usize, usize, Kind) {
    let mut j = i;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
        j += 1;
    }
    if b.get(j) == Some(&b'\'') {
        // b'x' byte char.
        let (end, _) = scan_char(b, j);
        return (end, 0, Kind::Char);
    }
    let mut hashes = 0;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    if b.get(j) != Some(&b'"') {
        // `r#foo` raw identifier — treat as ident-ish; emit as one token.
        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
            j += 1;
        }
        return (j, 0, Kind::Ident);
    }
    j += 1;
    let mut nl = 0;
    let raw = hashes > 0 || b[i] == b'r' || (b[i] == b'b' && b.get(i + 1) == Some(&b'r'));
    while j < b.len() {
        if b[j] == b'\n' {
            nl += 1;
            j += 1;
            continue;
        }
        if !raw && b[j] == b'\\' {
            j += 2;
            continue;
        }
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut seen = 0;
            while seen < hashes && b.get(k) == Some(&b'#') {
                seen += 1;
                k += 1;
            }
            if seen == hashes {
                return (k, nl, Kind::Str);
            }
        }
        j += 1;
    }
    (j, nl, Kind::Str)
}

/// Scan a `'…'` char literal starting at the quote; returns (end, _).
fn scan_char(b: &[u8], i: usize) -> (usize, usize) {
    let mut j = i + 1;
    if b.get(j) == Some(&b'\\') {
        j += 2;
        // \u{...}
        if b.get(j - 1) == Some(&b'u') && b.get(j) == Some(&b'{') {
            while j < b.len() && b[j] != b'}' {
                j += 1;
            }
            j += 1;
        }
    } else {
        // One code point.
        j += 1;
        while j < b.len() && (b[j] & 0xc0) == 0x80 {
            j += 1;
        }
    }
    if b.get(j) == Some(&b'\'') {
        j += 1;
    }
    (j, 0)
}

/// Disambiguate `'a` (lifetime) from `'x'` (char literal) at `i`.
fn scan_quote(b: &[u8], i: usize) -> (usize, Kind) {
    // Escape ⇒ definitely a char literal.
    if b.get(i + 1) == Some(&b'\\') {
        let (end, _) = scan_char(b, i);
        return (end, Kind::Char);
    }
    // `'X'` where X is one code point ⇒ char literal.
    let mut j = i + 1;
    if j < b.len() {
        j += 1;
        while j < b.len() && (b[j] & 0xc0) == 0x80 {
            j += 1;
        }
        if b.get(j) == Some(&b'\'') {
            return (j + 1, Kind::Char);
        }
    }
    // Otherwise a lifetime: consume ident chars.
    let mut j = i + 1;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    (j.max(i + 1), Kind::Lifetime)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn basic_tokens() {
        let toks = lex("fn foo(a: usize) -> u32 { a as u32 + 1 }");
        let names: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(names, ["fn", "foo", "a", "usize", "u32", "a", "as", "u32"]);
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r#"
// unwrap() in a comment
let s = "a + b [0] unwrap()";
/* multi
   line * comment */
let c = 'x';
let lt: &'static str = "y";
"#;
        let names = idents(src);
        assert!(names.iter().all(|n| n != "unwrap"), "{names:?}");
        // Comments preserved as tokens.
        let comments: Vec<_> = lex(src).into_iter().filter(Tok::is_comment).collect();
        assert_eq!(comments.len(), 2);
    }

    #[test]
    fn raw_and_byte_strings() {
        let src = r##"let a = r#"raw " string"#; let b = b"bytes"; let c = b'\n';"##;
        let toks = lex(src);
        assert_eq!(
            toks.iter().filter(|t| t.kind == Kind::Str).count(),
            2,
            "{toks:?}"
        );
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Char).count(), 1);
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'y'; }");
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Lifetime).count(), 2);
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Char).count(), 1);
    }

    #[test]
    fn line_numbers_track() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<usize> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn numeric_literals() {
        let toks = lex("512 * 1024 + 0xff_u32 - 1.5e3 .. 2");
        assert_eq!(toks.iter().filter(|t| t.kind == Kind::Num).count(), 5);
    }
}
