//! xlint — offline workspace invariant checker.
//!
//! A dependency-free static-analysis pass over the UDSM workspace. It lexes
//! each Rust source file with a lightweight tokenizer, extracts function
//! spans, and runs seven deny-by-default rules tuned to this codebase's
//! failure modes (see `DESIGN.md`, "Static analysis & invariants"):
//!
//! * `wire-arith` — unchecked `+`/`*`/`as usize` on wire-derived lengths in
//!   the frame parsers.
//! * `panic-path` — `unwrap`/`expect`/indexing/panicking macros in server
//!   connection handlers and client request paths.
//! * `guard-across-io` — a `Mutex`/`RwLock` guard held across a blocking
//!   I/O or network call.
//! * `retry-idempotency` — retry loops over network calls must carry an
//!   `// xlint: idempotent reason="…"` marker or a flushed-state guard.
//! * `unsafe-allowlist` — `unsafe` only in `fskv`/`crates/shims`, and only
//!   with an adjacent `SAFETY:` comment.
//! * `trace-ctx-loss` — no `TraceContext::new_root()` inside a retry
//!   closure: the context is minted once per logical request, before the
//!   retry boundary, or the attempts can never be joined into one trace.
//! * `blocking-in-reactor` — no blocking syscalls, `thread::sleep`, or
//!   lock-guard-across-await inside a reactor callback (any fn whose
//!   signature takes an `Outbox`): one stalled handler stalls every
//!   connection on that event loop.
//!
//! Findings are suppressible in-source:
//!
//! ```text
//! // xlint: allow(panic-path) reason="startup config, not a request path"
//! ```
//!
//! A suppression covers findings on its own line or the next line. Unused
//! suppressions and reason-less suppressions are themselves findings
//! (`suppression-hygiene`), so the allow-list can't rot.

#![forbid(unsafe_code)]

pub mod config;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod scan;

use config::Policy;
use report::Finding;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Run every applicable rule over one file's source text.
///
/// `path` must be workspace-relative with `/` separators — scoping in
/// [`Policy`] matches on it, and it lands verbatim in the findings.
pub fn check_source(path: &str, src: &str, policy: &Policy) -> Vec<Finding> {
    let toks = lexer::lex(src);
    let fns = scan::fn_spans(&toks);
    let controls = scan::controls(&toks);

    let mut findings = Vec::new();
    if policy.wire_arith_applies(path) {
        findings.extend(rules::wire_arith(path, &toks, &fns));
    }
    if policy.panic_path_applies(path) {
        findings.extend(rules::panic_path(path, &toks, &fns));
    }
    if policy.general_rules_apply(path) {
        findings.extend(rules::guard_across_io(path, &toks, &fns));
        findings.extend(rules::retry_idempotency(path, &toks, &fns, &controls));
        findings.extend(rules::trace_ctx_loss(path, &toks, &fns));
        findings.extend(rules::blocking_in_reactor(path, &toks, &fns));
    }
    findings.extend(rules::unsafe_allowlist(
        path,
        &toks,
        policy.unsafe_allowed(path),
    ));

    // Apply suppressions: an `allow(<rule>)` on line L covers findings on
    // L or L+1 (comment-above or trailing-comment placement).
    for f in &mut findings {
        if let Some(c) = controls.iter().find(|c| {
            c.verb == "allow" && c.rule == f.rule && (c.line == f.line || c.line + 1 == f.line)
        }) {
            c.used.set(true);
            f.suppressed = Some(c.reason.clone().unwrap_or_default());
        }
    }

    // Suppression hygiene (not itself suppressible).
    for c in &controls {
        match c.verb.as_str() {
            "allow" => {
                if !rules::RULES.contains(&c.rule.as_str()) {
                    findings.push(Finding::new(
                        rules::HYGIENE,
                        path,
                        c.line,
                        format!("allow() names unknown rule `{}`", c.rule),
                    ));
                } else if !c.used.get() {
                    findings.push(Finding::new(
                        rules::HYGIENE,
                        path,
                        c.line,
                        format!("unused suppression: allow({}) matches no finding", c.rule),
                    ));
                } else if c.reason.as_deref().is_none_or(|r| r.trim().is_empty()) {
                    findings.push(Finding::new(
                        rules::HYGIENE,
                        path,
                        c.line,
                        format!("allow({}) needs a reason=\"…\"", c.rule),
                    ));
                }
            }
            "idempotent"
                if c.used.get() && c.reason.as_deref().is_none_or(|r| r.trim().is_empty()) =>
            {
                findings.push(Finding::new(
                    rules::HYGIENE,
                    path,
                    c.line,
                    "xlint: idempotent needs a reason=\"…\" naming why replay is safe",
                ));
            }
            _ => {}
        }
    }

    // Overlapping fn spans (nested fns) can double-report: dedupe on
    // (rule, line), then order by line for stable output.
    let mut seen = BTreeSet::new();
    findings.retain(|f| seen.insert((f.rule, f.line, f.message.clone())));
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// Recursively collect `.rs` files under `root`, honoring [`Policy::skip`].
fn collect_files(root: &Path, dir: &Path, policy: &Policy, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let rel = rel_path(root, &path);
        if policy.skip(&rel) || rel.starts_with(".") {
            continue;
        }
        if path.is_dir() {
            collect_files(root, &path, policy, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Scan the whole workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> Vec<Finding> {
    let policy = Policy;
    let mut files = Vec::new();
    collect_files(root, root, &policy, &mut files);
    let mut findings = Vec::new();
    for file in files {
        let Ok(src) = std::fs::read_to_string(&file) else {
            continue;
        };
        findings.extend(check_source(&rel_path(root, &file), &src, &policy));
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_covers_same_and_next_line() {
        let src = r#"
fn handle(parts: &[u8]) {
    // xlint: allow(panic-path) reason="length checked two lines up"
    let a = parts[0];
    let b = parts[1]; // xlint: allow(panic-path) reason="ditto"
}
"#;
        let fs = check_source("crates/miniredis/src/server.rs", src, &Policy);
        assert!(
            fs.iter().all(|f| f.suppressed.is_some()),
            "all findings suppressed: {fs:?}"
        );
    }

    #[test]
    fn unused_and_reasonless_allows_are_flagged() {
        let src = r#"
// xlint: allow(panic-path) reason="nothing here panics"
fn quiet() {}

fn handle(parts: &[u8]) {
    // xlint: allow(panic-path)
    let a = parts[0];
}
"#;
        let fs = check_source("crates/miniredis/src/server.rs", src, &Policy);
        let hygiene: Vec<_> = fs.iter().filter(|f| f.rule == rules::HYGIENE).collect();
        assert_eq!(hygiene.len(), 2, "{fs:?}");
        assert!(hygiene.iter().any(|f| f.message.contains("unused")));
        assert!(hygiene.iter().any(|f| f.message.contains("needs a reason")));
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let src = "// xlint: allow(made-up) reason=\"x\"\nfn f() {}\n";
        let fs = check_source("crates/cache/src/lru.rs", src, &Policy);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("unknown rule"));
    }

    #[test]
    fn rules_scope_by_path() {
        // Indexing is fine outside the request-path files…
        let src = "fn f(parts: &[u8]) { let a = parts[0]; }";
        assert!(check_source("crates/cache/src/lru.rs", src, &Policy).is_empty());
        // …but flagged inside them.
        assert_eq!(
            check_source("crates/miniredis/src/server.rs", src, &Policy).len(),
            1
        );
    }
}
