//! xlint — offline workspace invariant checker.
//!
//! A dependency-free static-analysis pass over the UDSM workspace, run as
//! a two-phase driver. Phase 1 lexes every Rust source file with a
//! lightweight tokenizer and builds a workspace model: a symbol table of
//! functions and methods (with `impl` receivers and signature tokens), a
//! conservatively-resolved call graph, and a table of every lock
//! acquisition. Phase 2 runs the rules — seven per-file rules tuned to
//! this codebase's failure modes plus three inter-procedural passes over
//! the model (see `DESIGN.md`, "Static analysis & invariants"):
//!
//! * `wire-arith` — unchecked `+`/`*`/`as usize` on wire-derived lengths in
//!   the frame parsers.
//! * `panic-path` — `unwrap`/`expect`/indexing/panicking macros in server
//!   connection handlers and client request paths.
//! * `guard-across-io` — a `Mutex`/`RwLock` guard held across a blocking
//!   I/O or network call.
//! * `retry-idempotency` — retry loops over network calls must carry an
//!   `// xlint: idempotent reason="…"` marker or a flushed-state guard.
//! * `unsafe-allowlist` — `unsafe` only in `fskv`/`crates/shims`, and only
//!   with an adjacent `SAFETY:` comment.
//! * `trace-ctx-loss` — no `TraceContext::new_root()` inside a retry
//!   closure: the context is minted once per logical request, before the
//!   retry boundary, or the attempts can never be joined into one trace.
//! * `blocking-in-reactor` — no blocking syscalls, `thread::sleep`, or
//!   lock-guard-across-await inside a reactor callback (any fn whose
//!   signature takes an `Outbox`): one stalled handler stalls every
//!   connection on that event loop.
//! * `wire-taint` — inter-procedural: a wire-derived integer propagated
//!   through call edges and return values must not reach an allocation or
//!   `as usize` cast without a checked bound.
//! * `lock-order` — inter-procedural: the global lock-acquisition graph
//!   must be acyclic, and direct nested acquisition needs a declared
//!   `// xlint: lock-order(a -> b) reason="…"` total order.
//! * `deadline-propagation` — inter-procedural: socket I/O reachable from
//!   a client request entry point must take or derive a `Deadline`.
//!
//! Findings are suppressible in-source:
//!
//! ```text
//! // xlint: allow(panic-path) reason="startup config, not a request path"
//! ```
//!
//! A suppression covers findings on its own line or the next line. Unused
//! suppressions, reason-less suppressions, and unused `lock-order`
//! declarations are themselves findings (`suppression-hygiene`), so the
//! allow-list can't rot.

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod config;
pub mod deadline;
pub mod lexer;
pub mod locks;
pub mod model;
pub mod report;
pub mod rules;
pub mod scan;
pub mod taint;

use config::Policy;
use model::FileData;
use report::Finding;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Wall-clock per phase, for `--timing` and the CI budget gate.
#[derive(Clone, Debug, Default)]
pub struct Timing {
    /// (phase name, milliseconds), in execution order.
    pub phases: Vec<(&'static str, u128)>,
}

impl Timing {
    fn record(&mut self, name: &'static str, since: Instant) -> Instant {
        self.phases.push((name, since.elapsed().as_millis()));
        Instant::now()
    }

    /// Total analysis time in milliseconds.
    pub fn total_ms(&self) -> u128 {
        self.phases.iter().map(|(_, ms)| ms).sum()
    }

    /// Render the self-report table.
    pub fn render(&self) -> String {
        let mut out = String::from("xlint timing:\n");
        for (name, ms) in &self.phases {
            out.push_str(&format!("  {name:<22} {ms:>6} ms\n"));
        }
        out.push_str(&format!("  {:<22} {:>6} ms\n", "total", self.total_ms()));
        out
    }
}

/// Everything one analysis run produces: findings plus the phase-1 model
/// artifacts (`--graph dot`, the acyclicity test) and timing.
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub files: Vec<FileData>,
    pub model: model::Model,
    pub call_graph: callgraph::CallGraph,
    pub lock_graph: locks::LockGraph,
    pub timing: Timing,
}

/// Run the full two-phase analysis over in-memory sources.
///
/// Paths must be workspace-relative with `/` separators — scoping in
/// [`Policy`] matches on them, and they land verbatim in the findings.
pub fn analyze(sources: &[(String, String)], policy: &Policy) -> Analysis {
    let mut timing = Timing::default();
    let t = Instant::now();

    // Phase 1: lex + structural scan + workspace model + call graph.
    let files: Vec<FileData> = sources
        .iter()
        .map(|(path, src)| FileData::new(path, src))
        .collect();
    let t = timing.record("lex+scan", t);
    let model = model::build(&files);
    let call_graph = callgraph::build(&model);
    let t = timing.record("model+callgraph", t);

    // Phase 2a: the per-file rules.
    let mut findings = Vec::new();
    for fd in &files {
        let path = fd.path.as_str();
        if policy.wire_arith_applies(path) {
            findings.extend(rules::wire_arith(path, &fd.toks, &fd.fns));
        }
        if policy.panic_path_applies(path) {
            findings.extend(rules::panic_path(path, &fd.toks, &fd.fns));
        }
        if policy.general_rules_apply(path) {
            findings.extend(rules::guard_across_io(path, &fd.toks, &fd.fns));
            findings.extend(rules::retry_idempotency(
                path,
                &fd.toks,
                &fd.fns,
                &fd.controls,
            ));
            findings.extend(rules::trace_ctx_loss(path, &fd.toks, &fd.fns));
            findings.extend(rules::blocking_in_reactor(path, &fd.toks, &fd.fns));
        }
        if policy.metric_hygiene_applies(path) {
            findings.extend(rules::metric_hygiene(path, &fd.toks, &fd.fns));
        }
        findings.extend(rules::unsafe_allowlist(
            path,
            &fd.toks,
            policy.unsafe_allowed(path),
        ));
    }
    let t = timing.record("per-file rules", t);

    // Phase 2b: the inter-procedural passes.
    findings.extend(taint::wire_taint(&files, &model, &call_graph, policy));
    let t = timing.record("wire-taint", t);
    let (lock_findings, lock_graph) = locks::lock_order(&files, &model, &call_graph, policy);
    findings.extend(lock_findings);
    let t = timing.record("lock-order", t);
    findings.extend(deadline::deadline_propagation(
        &files,
        &model,
        &call_graph,
        policy,
    ));
    let t = timing.record("deadline-propagation", t);

    // Suppressions: an `allow(<rule>)` on line L in the finding's own file
    // covers findings on L or L+1.
    for f in &mut findings {
        let Some(fd) = files.iter().find(|fd| fd.path == f.file) else {
            continue;
        };
        if let Some(c) = fd.controls.iter().find(|c| {
            c.verb == "allow" && c.rule == f.rule && (c.line == f.line || c.line + 1 == f.line)
        }) {
            c.used.set(true);
            f.suppressed = Some(c.reason.clone().unwrap_or_default());
        }
    }

    // Suppression hygiene (not itself suppressible).
    for fd in &files {
        for c in &fd.controls {
            let path = fd.path.as_str();
            match c.verb.as_str() {
                "allow" => {
                    if !rules::RULES.contains(&c.rule.as_str()) {
                        findings.push(Finding::new(
                            rules::HYGIENE,
                            path,
                            c.line,
                            format!("allow() names unknown rule `{}`", c.rule),
                        ));
                    } else if !c.used.get() {
                        findings.push(Finding::new(
                            rules::HYGIENE,
                            path,
                            c.line,
                            format!("unused suppression: allow({}) matches no finding", c.rule),
                        ));
                    } else if c.reason.as_deref().is_none_or(|r| r.trim().is_empty()) {
                        findings.push(Finding::new(
                            rules::HYGIENE,
                            path,
                            c.line,
                            format!("allow({}) needs a reason=\"…\"", c.rule),
                        ));
                    }
                }
                "idempotent"
                    if c.used.get() && c.reason.as_deref().is_none_or(|r| r.trim().is_empty()) =>
                {
                    findings.push(Finding::new(
                        rules::HYGIENE,
                        path,
                        c.line,
                        "xlint: idempotent needs a reason=\"…\" naming why replay is safe",
                    ));
                }
                "lock-order" => {
                    if !c.used.get() {
                        findings.push(Finding::new(
                            rules::HYGIENE,
                            path,
                            c.line,
                            format!(
                                "unused declaration: lock-order({}) matches no nested \
                                 acquisition",
                                c.rule
                            ),
                        ));
                    } else if c.reason.as_deref().is_none_or(|r| r.trim().is_empty()) {
                        findings.push(Finding::new(
                            rules::HYGIENE,
                            path,
                            c.line,
                            format!("lock-order({}) needs a reason=\"…\"", c.rule),
                        ));
                    }
                }
                _ => {}
            }
        }
    }
    timing.record("suppressions", t);

    // Overlapping fn spans (nested fns) can double-report: dedupe on
    // (file, rule, line, message), then order for stable output.
    let mut seen = BTreeSet::new();
    findings.retain(|f| seen.insert((f.file.clone(), f.rule, f.line, f.message.clone())));
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));

    Analysis {
        findings,
        files,
        model,
        call_graph,
        lock_graph,
        timing,
    }
}

/// Run every applicable rule over a set of in-memory sources; the
/// multi-file entry the cross-file fixture corpus drives.
pub fn check_sources(sources: &[(String, String)], policy: &Policy) -> Vec<Finding> {
    analyze(sources, policy).findings
}

/// Run every applicable rule over one file's source text.
pub fn check_source(path: &str, src: &str, policy: &Policy) -> Vec<Finding> {
    check_sources(&[(path.to_string(), src.to_string())], policy)
}

/// Recursively collect `.rs` files under `root`, honoring [`Policy::skip`].
fn collect_files(root: &Path, dir: &Path, policy: &Policy, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().collect();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let path = entry.path();
        let rel = rel_path(root, &path);
        if policy.skip(&rel) || rel.starts_with(".") {
            continue;
        }
        if path.is_dir() {
            collect_files(root, &path, policy, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Read and analyze the whole workspace rooted at `root`.
pub fn analyze_workspace(root: &Path) -> Analysis {
    let policy = Policy;
    let mut paths = Vec::new();
    collect_files(root, root, &policy, &mut paths);
    let sources: Vec<(String, String)> = paths
        .into_iter()
        .filter_map(|p| {
            std::fs::read_to_string(&p)
                .ok()
                .map(|src| (rel_path(root, &p), src))
        })
        .collect();
    analyze(&sources, &policy)
}

/// Scan the whole workspace rooted at `root`.
pub fn check_workspace(root: &Path) -> Vec<Finding> {
    analyze_workspace(root).findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_covers_same_and_next_line() {
        let src = r#"
fn handle(parts: &[u8]) {
    // xlint: allow(panic-path) reason="length checked two lines up"
    let a = parts[0];
    let b = parts[1]; // xlint: allow(panic-path) reason="ditto"
}
"#;
        let fs = check_source("crates/miniredis/src/server.rs", src, &Policy);
        assert!(
            fs.iter().all(|f| f.suppressed.is_some()),
            "all findings suppressed: {fs:?}"
        );
    }

    #[test]
    fn unused_and_reasonless_allows_are_flagged() {
        let src = r#"
// xlint: allow(panic-path) reason="nothing here panics"
fn quiet() {}

fn handle(parts: &[u8]) {
    // xlint: allow(panic-path)
    let a = parts[0];
}
"#;
        let fs = check_source("crates/miniredis/src/server.rs", src, &Policy);
        let hygiene: Vec<_> = fs.iter().filter(|f| f.rule == rules::HYGIENE).collect();
        assert_eq!(hygiene.len(), 2, "{fs:?}");
        assert!(hygiene.iter().any(|f| f.message.contains("unused")));
        assert!(hygiene.iter().any(|f| f.message.contains("needs a reason")));
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let src = "// xlint: allow(made-up) reason=\"x\"\nfn f() {}\n";
        let fs = check_source("crates/cache/src/lru.rs", src, &Policy);
        assert_eq!(fs.len(), 1);
        assert!(fs[0].message.contains("unknown rule"));
    }

    #[test]
    fn rules_scope_by_path() {
        // Indexing is fine outside the request-path files…
        let src = "fn f(parts: &[u8]) { let a = parts[0]; }";
        assert!(check_source("crates/cache/src/lru.rs", src, &Policy).is_empty());
        // …but flagged inside them.
        assert_eq!(
            check_source("crates/miniredis/src/server.rs", src, &Policy).len(),
            1
        );
    }

    #[test]
    fn unused_lock_order_declaration_is_flagged() {
        let src = "// xlint: lock-order(a -> b) reason=\"no such nesting\"\nfn f() {}\n";
        let fs = check_source("crates/cache/src/lru.rs", src, &Policy);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("unused declaration"), "{fs:?}");
    }

    #[test]
    fn timing_report_covers_all_phases() {
        let a = analyze(
            &[("crates/cache/src/lru.rs".into(), "fn f() {}".into())],
            &Policy,
        );
        let names: Vec<&str> = a.timing.phases.iter().map(|(n, _)| *n).collect();
        assert!(names.contains(&"model+callgraph"), "{names:?}");
        assert!(names.contains(&"wire-taint"), "{names:?}");
        assert!(names.contains(&"lock-order"), "{names:?}");
        assert!(names.contains(&"deadline-propagation"), "{names:?}");
        assert!(a.timing.render().contains("total"));
    }
}
