//! `lock-order`: the global lock-acquisition graph, its cycles, and the
//! documented-order requirement for nested acquisition.
//!
//! An edge `A → B` means lock `B` was acquired while `A` was held — either
//! directly in one function body (tracked with the same guard-liveness
//! model as `guard-across-io`: named guards retire at block close or
//! `drop`, temporaries at their statement or scrutinee end), or
//! transitively: a call made while holding `A` whose resolved callee
//! closure acquires `B`. Nodes are the coarse [`crate::model::LockSite`]
//! labels, so two same-named locks in a crate conflate — an
//! over-approximation that can add an edge but never hide one.
//!
//! Findings:
//! * a cycle anywhere in the graph (reported once per cycle, naming every
//!   edge with its acquisition site), and
//! * a *direct* nested acquisition with no documented order — each `A → B`
//!   nesting must carry `// xlint: lock-order(A -> B) reason="…"` in the
//!   same file, which `suppression-hygiene` audits like any other control.

use crate::callgraph::{self, CallGraph};
use crate::config::Policy;
use crate::model::{FileData, Model};
use crate::report::Finding;
use crate::rules::{self, is_call, parse_let};
use crate::scan::match_delim;
use std::collections::{BTreeMap, BTreeSet};

/// One edge in the lock-acquisition graph.
#[derive(Clone, Debug)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    /// Acquisition (or call) site that created the edge.
    pub file: String,
    pub line: usize,
    /// Enclosing function's qualified name.
    pub func: String,
    /// `Some(callee)` when the edge is via a call made while holding.
    pub via: Option<String>,
    /// Direct nesting inside one body (these require documentation).
    pub direct: bool,
}

/// The assembled graph, deduplicated on `(from, to)`.
pub struct LockGraph {
    pub edges: Vec<LockEdge>,
}

impl LockGraph {
    /// All cycles, canonicalized (each reported once, rotation-invariant).
    pub fn cycles(&self) -> Vec<Vec<String>> {
        let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
        for e in &self.edges {
            adj.entry(&e.from).or_default().push(&e.to);
        }
        let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
        let mut out = Vec::new();
        for &start in adj.keys() {
            let mut stack: Vec<&str> = vec![start];
            let mut on_path: BTreeSet<&str> = [start].into();
            dfs(&adj, start, &mut stack, &mut on_path, &mut |cycle| {
                let canon = canonical(cycle);
                if seen_cycles.insert(canon.clone()) {
                    out.push(canon);
                }
            });
        }
        out
    }

    /// Render as a GraphViz digraph (dashed edges are call-mediated).
    pub fn dot(&self) -> String {
        let mut out = String::from("digraph locks {\n  node [shape=ellipse];\n");
        for e in &self.edges {
            let style = if e.direct { "solid" } else { "dashed" };
            out.push_str(&format!(
                "  \"{}\" -> \"{}\" [style={style}, label=\"{}:{}\"];\n",
                e.from, e.to, e.file, e.line
            ));
        }
        out.push_str("}\n");
        out
    }
}

fn dfs<'a>(
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    node: &'a str,
    stack: &mut Vec<&'a str>,
    on_path: &mut BTreeSet<&'a str>,
    emit: &mut impl FnMut(&[&str]),
) {
    for &next in adj.get(node).into_iter().flatten() {
        if let Some(pos) = stack.iter().position(|&n| n == next) {
            emit(&stack[pos..]);
            continue;
        }
        if on_path.insert(next) {
            stack.push(next);
            dfs(adj, next, stack, on_path, emit);
            stack.pop();
            // Leave `next` in `on_path`: it acts as a visited set per
            // start node, bounding the walk; cycles through it are found
            // when the DFS starts from a node on them.
        }
    }
}

/// Rotate a cycle so its lexicographically-smallest label leads.
fn canonical(cycle: &[&str]) -> Vec<String> {
    let min = cycle
        .iter()
        .enumerate()
        .min_by_key(|(_, s)| **s)
        .map_or(0, |(i, _)| i);
    cycle[min..]
        .iter()
        .chain(cycle[..min].iter())
        .map(|s| s.to_string())
        .collect()
}

/// A lock held at some point during the walk of one body.
struct Holder {
    site: usize,
    kind: HolderKind,
}

enum HolderKind {
    /// Bound to a name; retires at block close below `depth` or `drop`.
    Named { binding: String, depth: usize },
    /// Temporary; retires at a token index.
    Temp { end: usize },
}

/// Chained methods that keep the value a guard (`.lock().unwrap()`).
const GUARD_CHAIN: &[&str] = &["unwrap", "expect", "unwrap_or_else"];

/// Token index one past the lock-acquisition expression at `site_tok`
/// (through any guard-preserving method chain).
fn acquire_expr_end(toks: &[crate::lexer::Tok], site_tok: usize, limit: usize) -> usize {
    let Some(open) = (site_tok + 1..limit).find(|&j| !toks[j].is_comment()) else {
        return site_tok + 1;
    };
    if !toks[open].is_punct('(') {
        return site_tok + 1;
    }
    let mut end = match_delim(toks, open, '(', ')');
    loop {
        let Some(dot) = (end..limit).find(|&j| !toks[j].is_comment()) else {
            return end;
        };
        if !toks[dot].is_punct('.') {
            return end;
        }
        let Some(m) = (dot + 1..limit).find(|&j| !toks[j].is_comment()) else {
            return end;
        };
        if !GUARD_CHAIN.contains(&toks[m].text.as_str()) {
            return end;
        }
        let Some(mo) = (m + 1..limit).find(|&j| !toks[j].is_comment()) else {
            return end;
        };
        if !toks[mo].is_punct('(') {
            return end;
        }
        end = match_delim(toks, mo, '(', ')');
    }
}

/// Classify each lock site of a function into its holder kind.
fn classify_sites(
    toks: &[crate::lexer::Tok],
    f: &crate::model::FnNode,
) -> Vec<(usize, HolderKind)> {
    let mut out: Vec<Option<HolderKind>> = f.locks.iter().map(|_| None).collect();
    // `let` statements binding or temporarily holding a guard.
    let mut i = f.body.0;
    while i < f.body.1 {
        if f.in_nested(i) || !toks[i].is_ident("let") {
            i += 1;
            continue;
        }
        let Some(stmt) = parse_let(toks, i, f.body.1) else {
            i += 1;
            continue;
        };
        for (si, site) in f.locks.iter().enumerate() {
            if out[si].is_some() || site.tok < stmt.rhs.0 || site.tok >= stmt.rhs.1 {
                continue;
            }
            // Brace-depth-0 within the initializer only; a `{ .. }` or
            // closure body inside the RHS has its own lifetime.
            let bd = toks[stmt.rhs.0..site.tok]
                .iter()
                .fold(0i32, |d, t| match () {
                    _ if t.is_punct('{') => d + 1,
                    _ if t.is_punct('}') => d - 1,
                    _ => d,
                });
            if bd != 0 {
                continue;
            }
            let expr_end = acquire_expr_end(toks, site.tok, stmt.rhs.1);
            let tail = toks[expr_end..stmt.rhs.1]
                .iter()
                .all(crate::lexer::Tok::is_comment);
            out[si] = Some(if tail {
                match stmt.bindings.first() {
                    Some(b) => HolderKind::Named {
                        binding: b.clone(),
                        depth: 0, // fixed up during the walk
                    },
                    None => HolderKind::Temp { end: stmt.end },
                }
            } else {
                HolderKind::Temp { end: stmt.end }
            });
        }
        i = stmt.end.max(i + 1);
    }
    // `match`/`for`/`while` scrutinees holding a guard live to block end.
    for i in f.body.0..f.body.1 {
        let t = &toks[i];
        if !(t.is_ident("match") || t.is_ident("for") || t.is_ident("while")) || f.in_nested(i) {
            continue;
        }
        let mut d = 0usize;
        let mut open = None;
        for (j, tj) in toks.iter().enumerate().take(f.body.1).skip(i + 1) {
            if tj.is_punct('(') || tj.is_punct('[') {
                d += 1;
            } else if tj.is_punct(')') || tj.is_punct(']') {
                d = d.saturating_sub(1);
            } else if d == 0 && tj.is_punct('{') {
                open = Some(j);
                break;
            } else if d == 0 && tj.is_punct(';') {
                break;
            }
        }
        let Some(open) = open else { continue };
        let end = match_delim(toks, open, '{', '}');
        for (si, site) in f.locks.iter().enumerate() {
            if out[si].is_none() && site.tok > i && site.tok < open {
                out[si] = Some(HolderKind::Temp { end });
            }
        }
    }
    // Everything else: statement-long temporary to the next `;`.
    for (si, site) in f.locks.iter().enumerate() {
        if out[si].is_some() {
            continue;
        }
        let mut d = 0i32;
        let mut end = f.body.1;
        for (j, t) in toks.iter().enumerate().take(f.body.1).skip(site.tok) {
            if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                d += 1;
            } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                d -= 1;
                if d < 0 {
                    end = j;
                    break;
                }
            } else if d == 0 && t.is_punct(';') {
                end = j + 1;
                break;
            }
        }
        out[si] = Some(HolderKind::Temp { end });
    }
    out.into_iter().flatten().enumerate().collect()
}

/// Run the pass over the workspace; returns findings plus the graph for
/// `--graph dot` and the acyclicity test.
pub fn lock_order(
    files: &[FileData],
    model: &Model,
    graph: &CallGraph,
    policy: &Policy,
) -> (Vec<Finding>, LockGraph) {
    let in_scope = |fi: usize| {
        let f = &model.fns[fi];
        !f.is_test && policy.lock_order_applies(&files[f.file].path)
    };

    // Pass A: direct edges + calls made while holding.
    let mut edges: BTreeMap<(String, String), LockEdge> = BTreeMap::new();
    let mut held_calls: Vec<(String, usize, usize)> = Vec::new(); // (held label, fn, call idx)
    for fi in 0..model.fns.len() {
        if !in_scope(fi) {
            continue;
        }
        let f = &model.fns[fi];
        let toks = &files[f.file].toks;
        let path = &files[f.file].path;
        let kinds = classify_sites(toks, f);
        let site_at = |tok: usize| f.locks.iter().position(|s| s.tok == tok);
        let mut active: Vec<Holder> = Vec::new();
        let mut depth = 0usize;
        for i in f.body.0 + 1..f.body.1.saturating_sub(1) {
            if f.in_nested(i) {
                continue;
            }
            let t = &toks[i];
            active.retain(|h| match &h.kind {
                HolderKind::Temp { end } => i < *end,
                HolderKind::Named { .. } => true,
            });
            if t.is_punct('{') {
                depth += 1;
                continue;
            }
            if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                active.retain(|h| match &h.kind {
                    HolderKind::Named { depth: d, .. } => *d <= depth,
                    HolderKind::Temp { .. } => true,
                });
                continue;
            }
            if t.is_ident("drop") && is_call(toks, i) {
                if let Some(arg) = toks.get(i + 2) {
                    active.retain(|h| match &h.kind {
                        HolderKind::Named { binding, .. } => binding != &arg.text,
                        HolderKind::Temp { .. } => true,
                    });
                }
                continue;
            }
            if let Some(si) = site_at(i) {
                let label = &f.locks[si].label;
                for h in &active {
                    let from = &f.locks[h.site].label;
                    if from != label {
                        edges
                            .entry((from.clone(), label.clone()))
                            .or_insert_with(|| LockEdge {
                                from: from.clone(),
                                to: label.clone(),
                                file: path.clone(),
                                line: f.locks[si].line,
                                func: f.qname(),
                                via: None,
                                direct: true,
                            });
                    }
                }
                if let Some((_, kind)) = kinds.iter().find(|(k, _)| *k == si) {
                    let kind = match kind {
                        HolderKind::Named { binding, .. } => HolderKind::Named {
                            binding: binding.clone(),
                            depth,
                        },
                        HolderKind::Temp { end } => HolderKind::Temp { end: *end },
                    };
                    active.push(Holder { site: si, kind });
                }
                continue;
            }
            if !active.is_empty() {
                if let Some(ci) = f.calls.iter().position(|c| c.tok == i) {
                    for h in &active {
                        held_calls.push((f.locks[h.site].label.clone(), fi, ci));
                    }
                }
            }
        }
    }

    // Pass B: transitive lock sets per function, then call-mediated edges.
    let mut trans: Vec<BTreeSet<String>> = model
        .fns
        .iter()
        .enumerate()
        .map(|(fi, f)| {
            if in_scope(fi) {
                f.locks.iter().map(|l| l.label.clone()).collect()
            } else {
                BTreeSet::new()
            }
        })
        .collect();
    loop {
        let mut changed = false;
        for fi in 0..model.fns.len() {
            if model.fns[fi].is_test {
                continue;
            }
            let merged: BTreeSet<String> = callgraph::callees_of(graph, fi)
                .flat_map(|c| trans[c].iter().cloned().collect::<Vec<_>>())
                .collect();
            for l in merged {
                if trans[fi].insert(l) {
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    for (held, fi, ci) in held_calls {
        let f = &model.fns[fi];
        let call = &f.calls[ci];
        let path = &files[f.file].path;
        for &callee in &graph.callees[fi][ci] {
            for to in &trans[callee] {
                if *to == held {
                    continue;
                }
                edges
                    .entry((held.clone(), to.clone()))
                    .or_insert_with(|| LockEdge {
                        from: held.clone(),
                        to: to.clone(),
                        file: path.clone(),
                        line: call.line,
                        func: f.qname(),
                        via: Some(model.fns[callee].qname()),
                        direct: false,
                    });
            }
        }
    }
    let lock_graph = LockGraph {
        edges: edges.into_values().collect(),
    };

    // Findings: cycles, then undocumented direct nestings.
    let mut out = Vec::new();
    for cycle in lock_graph.cycles() {
        let mut desc = Vec::new();
        for (i, from) in cycle.iter().enumerate() {
            let to = &cycle[(i + 1) % cycle.len()];
            if let Some(e) = lock_graph
                .edges
                .iter()
                .find(|e| &e.from == from && &e.to == to)
            {
                let via = e
                    .via
                    .as_ref()
                    .map(|v| format!(" via `{v}`"))
                    .unwrap_or_default();
                desc.push(format!(
                    "{from} -> {to} at {}:{} in `{}`{via}",
                    e.file, e.line, e.func
                ));
            }
        }
        let first = lock_graph
            .edges
            .iter()
            .find(|e| e.from == cycle[0])
            .expect("cycle edge");
        out.push(Finding::new(
            rules::LOCK_ORDER,
            &first.file,
            first.line,
            format!(
                "lock-order cycle: {} -> {}; {}",
                cycle.join(" -> "),
                cycle[0],
                desc.join("; ")
            ),
        ));
    }
    for e in lock_graph.edges.iter().filter(|e| e.direct) {
        let fd = files
            .iter()
            .find(|fd| fd.path == e.file)
            .expect("edge file");
        let declared = fd.controls.iter().find(|c| {
            c.verb == "lock-order" && order_matches(&c.rule, short(&e.from), short(&e.to))
        });
        if let Some(c) = declared {
            c.used.set(true);
        } else {
            out.push(Finding::new(
                rules::LOCK_ORDER,
                &e.file,
                e.line,
                format!(
                    "`{}` acquires `{}` while holding `{}` with no documented order; declare \
                     `// xlint: lock-order({} -> {}) reason=\"…\"` or restructure",
                    e.func,
                    short(&e.to),
                    short(&e.from),
                    short(&e.from),
                    short(&e.to),
                ),
            ));
        }
    }
    (out, lock_graph)
}

/// Label without its `crate:` prefix (what declarations are written in).
fn short(label: &str) -> &str {
    label.split_once(':').map_or(label, |(_, f)| f)
}

/// Does a `lock-order(a -> b)` declaration body match the edge `a → b`?
fn order_matches(decl: &str, from: &str, to: &str) -> bool {
    let Some((a, b)) = decl.split_once("->") else {
        return false;
    };
    a.trim() == from && b.trim() == to
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::build as build_graph;
    use crate::model::{build as build_model, FileData};

    fn run(src: &str) -> (Vec<Finding>, LockGraph) {
        let files = vec![FileData::new("crates/cache/src/lru.rs", src)];
        let model = build_model(&files);
        let graph = build_graph(&model);
        lock_order(&files, &model, &graph, &Policy)
    }

    #[test]
    fn nested_acquisition_needs_declared_order() {
        let (findings, graph) = run(r#"
impl Store {
    fn totals(&self) {
        let a = self.index.lock();
        let b = self.totals.lock();
    }
}
"#);
        assert_eq!(graph.edges.len(), 1, "{:?}", graph.edges);
        assert!(graph.edges[0].direct);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no documented order"));
    }

    #[test]
    fn declared_order_is_accepted_and_marked_used() {
        let (findings, _) = run(r#"
// xlint: lock-order(index -> totals) reason="index is always outermost"
impl Store {
    fn totals(&self) {
        let a = self.index.lock();
        let b = self.totals.lock();
    }
}
"#);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn sequential_acquisition_is_clean() {
        let (findings, graph) = run(r#"
impl Store {
    fn totals(&self) {
        { let a = self.index.lock(); }
        let b = self.totals.lock();
        drop(b);
        let c = self.index.lock();
    }
}
"#);
        assert!(graph.edges.is_empty(), "{:?}", graph.edges);
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn two_fn_inverse_order_is_a_cycle() {
        let (findings, graph) = run(r#"
// xlint: lock-order(a -> b) reason="forward path"
// xlint: lock-order(b -> a) reason="backward path"
impl Store {
    fn fwd(&self) { let g = self.a.lock(); let h = self.b.lock(); }
    fn bwd(&self) { let g = self.b.lock(); let h = self.a.lock(); }
}
"#);
        assert_eq!(graph.edges.len(), 2);
        let cycles = graph.cycles();
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert!(
            findings.iter().any(|f| f.message.contains("cycle")),
            "{findings:?}"
        );
    }

    #[test]
    fn call_mediated_edge_found_through_helper() {
        let (_, graph) = run(r#"
impl Store {
    fn outer(&self) {
        let g = self.index.lock();
        self.refresh();
    }
    fn refresh(&self) { let t = self.totals.lock(); }
}
"#);
        let e = graph
            .edges
            .iter()
            .find(|e| e.to == "cache:totals")
            .expect("edge");
        assert!(!e.direct);
        assert_eq!(e.via.as_deref(), Some("Store::refresh"));
    }

    use crate::config::Policy;
}
