//! xlint CLI.
//!
//! ```text
//! cargo run -p xlint                  # report findings, exit 0
//! cargo run -p xlint -- --deny-all    # exit 1 if any unsuppressed finding
//! cargo run -p xlint -- --json        # machine-readable report
//! cargo run -p xlint -- --show-suppressed
//! cargo run -p xlint -- --root path/to/workspace
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_all = false;
    let mut show_suppressed = false;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--show-suppressed" => show_suppressed = true,
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("xlint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "xlint — offline workspace invariant checker\n\n\
                     USAGE: xlint [--json] [--deny-all] [--show-suppressed] [--root DIR]\n\n\
                     Rules: wire-arith, panic-path, guard-across-io, retry-idempotency,\n\
                     unsafe-allowlist (+ suppression-hygiene meta checks).\n\
                     Suppress with: // xlint: allow(<rule>) reason=\"…\""
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xlint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = root
        .or_else(|| {
            std::env::var_os("CARGO_MANIFEST_DIR").map(|d| {
                // crates/xlint -> workspace root
                let mut p = PathBuf::from(d);
                p.pop();
                p.pop();
                p
            })
        })
        .unwrap_or_else(|| PathBuf::from("."));

    let findings = xlint::check_workspace(&root);
    let active = findings.iter().filter(|f| f.suppressed.is_none()).count();
    let suppressed = findings.len() - active;

    if json {
        println!("{}", xlint::report::render_json(&findings));
    } else {
        print!("{}", xlint::report::render_text(&findings, show_suppressed));
        println!(
            "xlint: {active} finding{} ({suppressed} suppressed)",
            if active == 1 { "" } else { "s" }
        );
    }

    if deny_all && active > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
