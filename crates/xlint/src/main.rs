//! xlint CLI.
//!
//! ```text
//! cargo run -p xlint                  # report findings, exit 0
//! cargo run -p xlint -- --deny-all    # exit 1 if any unsuppressed finding
//! cargo run -p xlint -- --json        # machine-readable report
//! cargo run -p xlint -- --show-suppressed
//! cargo run -p xlint -- --graph calls # workspace call graph as GraphViz dot
//! cargo run -p xlint -- --graph locks # lock-acquisition graph as dot
//! cargo run -p xlint -- --timing      # per-phase wall-clock self-report
//! cargo run -p xlint -- --max-ms 30000  # fail if analysis exceeds budget
//! cargo run -p xlint -- --root path/to/workspace
//! ```

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_all = false;
    let mut show_suppressed = false;
    let mut timing = false;
    let mut graph: Option<String> = None;
    let mut max_ms: Option<u128> = None;
    let mut root: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--show-suppressed" => show_suppressed = true,
            "--timing" => timing = true,
            "--graph" => match args.next() {
                Some(which) if which == "calls" || which == "locks" || which == "dot" => {
                    graph = Some(which);
                }
                _ => {
                    eprintln!("xlint: --graph requires `calls`, `locks`, or `dot` (both)");
                    return ExitCode::from(2);
                }
            },
            "--max-ms" => match args.next().and_then(|n| n.parse::<u128>().ok()) {
                Some(ms) => max_ms = Some(ms),
                None => {
                    eprintln!("xlint: --max-ms requires a millisecond budget");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("xlint: --root requires a directory");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "xlint — offline workspace invariant checker\n\n\
                     USAGE: xlint [--json] [--deny-all] [--show-suppressed]\n\
                     \x20      [--graph calls|locks|dot] [--timing] [--max-ms N] [--root DIR]\n\n\
                     Per-file rules: wire-arith, panic-path, guard-across-io,\n\
                     retry-idempotency, unsafe-allowlist, trace-ctx-loss,\n\
                     blocking-in-reactor.\n\
                     Workspace passes: wire-taint, lock-order, deadline-propagation\n\
                     (+ suppression-hygiene meta checks).\n\
                     Suppress with: // xlint: allow(<rule>) reason=\"…\"\n\
                     Declare nesting: // xlint: lock-order(a -> b) reason=\"…\""
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("xlint: unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = root
        .or_else(|| {
            std::env::var_os("CARGO_MANIFEST_DIR").map(|d| {
                // crates/xlint -> workspace root
                let mut p = PathBuf::from(d);
                p.pop();
                p.pop();
                p
            })
        })
        .unwrap_or_else(|| PathBuf::from("."));

    let analysis = xlint::analyze_workspace(&root);

    if let Some(which) = graph {
        if which == "calls" || which == "dot" {
            print!(
                "{}",
                xlint::callgraph::dot(&analysis.files, &analysis.model, &analysis.call_graph)
            );
        }
        if which == "locks" || which == "dot" {
            print!("{}", analysis.lock_graph.dot());
        }
        return ExitCode::SUCCESS;
    }

    let findings = &analysis.findings;
    let active = findings.iter().filter(|f| f.suppressed.is_none()).count();
    let suppressed = findings.len() - active;

    if json {
        println!("{}", xlint::report::render_json(findings));
    } else {
        print!("{}", xlint::report::render_text(findings, show_suppressed));
        println!(
            "xlint: {active} finding{} ({suppressed} suppressed)",
            if active == 1 { "" } else { "s" }
        );
    }
    if timing {
        eprint!("{}", analysis.timing.render());
    }

    if let Some(budget) = max_ms {
        let spent = analysis.timing.total_ms();
        if spent > budget {
            eprintln!("xlint: analysis took {spent} ms, over the --max-ms {budget} budget");
            return ExitCode::FAILURE;
        }
    }

    if deny_all && active > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
