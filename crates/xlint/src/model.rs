//! Phase 1 of the workspace-aware driver: the workspace model.
//!
//! The model is everything the inter-procedural passes need, extracted in
//! one pass over every file's token stream: a symbol table of functions and
//! methods (with their `impl` receiver type and signature tokens), the call
//! sites inside each body, the lock-acquisition sites (both the
//! `.lock()`/`.read()`/`.write()` guard shape and the workspace's
//! `lock(&mutex)` poison-recovery helper shape), and the set of
//! deadline-carrying struct types (anything transitively holding a
//! `Deadline`). No type checker: receivers are resolved by name and `impl`
//! context only, which is exactly as much as the passes promise.

use crate::lexer::{Kind, Tok};
use crate::scan::{self, match_delim, Control, FnSpan};
use std::collections::{BTreeMap, BTreeSet};

/// One lexed file plus its structural scans, shared by the per-file rules
/// and the workspace model so each file is tokenized exactly once.
pub struct FileData {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    pub toks: Vec<Tok>,
    pub fns: Vec<FnSpan>,
    pub controls: Vec<Control>,
}

impl FileData {
    /// Lex and scan one source file.
    pub fn new(path: &str, src: &str) -> FileData {
        let toks = crate::lexer::lex(src);
        let fns = scan::fn_spans(&toks);
        let controls = scan::controls(&toks);
        FileData {
            path: path.to_string(),
            toks,
            fns,
            controls,
        }
    }
}

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(...)` — a free (or imported) function.
    Free,
    /// `x.foo(...)`; `on_self` when the receiver chain is rooted at `self`.
    Method { on_self: bool },
    /// `Qual::foo(...)` with the last path qualifier.
    Path { qual: String },
}

/// One call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// Callee identifier.
    pub name: String,
    pub kind: CallKind,
    /// Token index of the callee identifier in the file's stream.
    pub tok: usize,
    pub line: usize,
}

/// One `Mutex`/`RwLock` acquisition site.
#[derive(Clone, Debug)]
pub struct LockSite {
    /// Canonical graph label: `<crate>:<final receiver segment>` — e.g.
    /// `self.state.pending.lock()` in crate `rpc` labels `rpc:pending`.
    /// Deliberately coarse: conflating two same-named locks in one crate
    /// over-approximates (may report a spurious edge), never misses one.
    pub label: String,
    /// Token index of the acquiring ident (`lock`/`read`/`write`).
    pub tok: usize,
    pub line: usize,
}

/// One function in the workspace symbol table.
pub struct FnNode {
    /// Index of the owning [`FileData`].
    pub file: usize,
    /// Crate name derived from the path (`crates/rpc/...` → `rpc`).
    pub krate: String,
    pub name: String,
    /// Enclosing `impl` type, if any (`impl Trait for T` records `T`).
    pub recv: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    pub is_test: bool,
    /// Parameter names, `self` excluded (mirrors [`FnSpan::params`]).
    pub params: Vec<String>,
    /// Every identifier in the signature (param and return types included).
    pub sig_idents: BTreeSet<String>,
    /// `body.0` is the `{`, `body.1` one past the `}` (token indices).
    pub body: (usize, usize),
    /// Token ranges of *nested* `fn` items inside this body; their tokens
    /// belong to the inner function, not this one.
    pub nested: Vec<(usize, usize)>,
    pub calls: Vec<Call>,
    pub locks: Vec<LockSite>,
}

impl FnNode {
    /// Qualified display name (`MuxSender::send` or `checkout`).
    pub fn qname(&self) -> String {
        match &self.recv {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Is the token index inside this body but owned by a nested fn?
    pub fn in_nested(&self, tok: usize) -> bool {
        self.nested.iter().any(|&(s, e)| tok >= s && tok < e)
    }
}

/// The whole-workspace model the inter-procedural passes run over.
pub struct Model {
    pub fns: Vec<FnNode>,
    /// Function name → indices into `fns`.
    pub by_name: BTreeMap<String, Vec<usize>>,
    /// Struct types that transitively hold a `Deadline` (seeded with
    /// `Deadline`/`SharedDeadline`/`DeadlineStream`, closed over field
    /// types), so `deadline-propagation` recognizes e.g. a `BlockConn`
    /// parameter as carrying the request budget.
    pub deadline_types: BTreeSet<String>,
}

/// Crate name from a workspace-relative path. `crates/shims/loom/...`
/// resolves to `loom`; files outside `crates/` (root `src/`, `tests/`)
/// resolve to the root package, `udsm`.
pub fn crate_of(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        match parts.next() {
            Some("shims") => parts.next().unwrap_or("shims").to_string(),
            Some(name) => name.to_string(),
            None => "udsm".to_string(),
        }
    } else {
        "udsm".to_string()
    }
}

/// Token index ranges of `impl` bodies with their receiver type name.
fn impl_regions(toks: &[Tok]) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        // Skip `impl<...>` generic parameters.
        let mut j = i + 1;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0usize;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    depth += 1;
                } else if toks[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // Scan to the body `{`, remembering `for` and `where` at depth 0:
        // the receiver type sits between `for` (or the generics) and
        // `where` (or the `{`).
        let (mut depth, mut for_idx, mut where_idx, mut open) = (0usize, None, None, None);
        let mut k = j;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_punct('<') || t.is_punct('(') || t.is_punct('[') {
                depth += 1;
            } else if t.is_punct('>') || t.is_punct(')') || t.is_punct(']') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.is_ident("for") {
                for_idx = Some(k);
            } else if depth == 0 && t.is_ident("where") {
                where_idx = Some(k);
            } else if depth == 0 && t.is_punct('{') {
                open = Some(k);
                break;
            } else if depth == 0 && t.is_punct(';') {
                break;
            }
            k += 1;
        }
        let Some(open) = open else {
            i = k + 1;
            continue;
        };
        let ty_start = for_idx.map_or(j, |f| f + 1);
        let ty_end = where_idx.unwrap_or(open);
        // Receiver name = last identifier at angle depth 0 in the type
        // region (`Wrap<T>` → `Wrap`, `fmt::Display for Error` → `Error`).
        let mut depth = 0usize;
        let mut name = None;
        for t in &toks[ty_start..ty_end] {
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && t.kind == Kind::Ident && t.text != "dyn" && t.text != "mut" {
                name = Some(t.text.clone());
            }
        }
        let end = match_delim(toks, open, '{', '}');
        if let Some(name) = name {
            out.push((open, end, name));
        }
        i = open + 1;
    }
    out
}

/// `struct Name { field: Type, ... }` → (name, identifiers used in field
/// types). Tuple and unit structs contribute their payload type idents.
fn struct_field_types(toks: &[Tok]) -> Vec<(String, BTreeSet<String>)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !toks[i].is_ident("struct") || toks[i + 1].kind != Kind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.clone();
        let mut j = i + 2;
        // Skip generics / where clause up to `{`, `(` or `;`.
        let mut depth = 0usize;
        while j < toks.len() {
            let t = &toks[j];
            if t.is_punct('<') {
                depth += 1;
            } else if t.is_punct('>') {
                depth = depth.saturating_sub(1);
            } else if depth == 0 && (t.is_punct('{') || t.is_punct('(') || t.is_punct(';')) {
                break;
            }
            j += 1;
        }
        let mut tys = BTreeSet::new();
        if toks.get(j).is_some_and(|t| t.is_punct('{')) {
            let end = match_delim(toks, j, '{', '}');
            // Field types are the token runs between a depth-1 `:` and the
            // next depth-1 `,` (or the closing brace).
            let mut d = 0usize;
            let mut in_ty = false;
            for t in &toks[j..end] {
                if t.is_punct('{') || t.is_punct('(') || t.is_punct('<') || t.is_punct('[') {
                    d += 1;
                } else if t.is_punct('}') || t.is_punct(')') || t.is_punct('>') || t.is_punct(']') {
                    d = d.saturating_sub(1);
                } else if d == 1 && t.is_punct(':') {
                    in_ty = true;
                } else if d == 1 && t.is_punct(',') {
                    in_ty = false;
                } else if in_ty && t.kind == Kind::Ident {
                    tys.insert(t.text.clone());
                }
            }
            i = end;
        } else if toks.get(j).is_some_and(|t| t.is_punct('(')) {
            let end = match_delim(toks, j, '(', ')');
            for t in &toks[j..end] {
                if t.kind == Kind::Ident {
                    tys.insert(t.text.clone());
                }
            }
            i = end;
        } else {
            i = j + 1;
        }
        out.push((name, tys));
    }
    out
}

/// Keywords that may directly precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "as", "in", "move", "else", "let",
    "unsafe", "break", "impl", "dyn", "where", "async",
];

fn prev_nc(toks: &[Tok], i: usize) -> Option<(usize, &Tok)> {
    toks[..i]
        .iter()
        .enumerate()
        .rev()
        .find(|(_, t)| !t.is_comment())
}

fn next_nc(toks: &[Tok], i: usize) -> Option<(usize, &Tok)> {
    toks.iter()
        .enumerate()
        .skip(i + 1)
        .find(|(_, t)| !t.is_comment())
}

/// Mirror of `rules::is_guard_acquire`: `.lock()`/`.read()`/`.write()` with
/// empty parens — the guard-acquisition shape.
fn is_guard_acquire(toks: &[Tok], i: usize) -> bool {
    let t = &toks[i];
    if !(t.is_ident("lock") || t.is_ident("read") || t.is_ident("write")) {
        return false;
    }
    if !prev_nc(toks, i).is_some_and(|(_, p)| p.is_punct('.')) {
        return false;
    }
    let Some((open, ot)) = next_nc(toks, i) else {
        return false;
    };
    ot.is_punct('(') && next_nc(toks, open).is_some_and(|(_, t)| t.is_punct(')'))
}

/// Walk a `.`-separated receiver chain *backwards* from the token index of
/// a method name; returns the chain segments in source order. A call or
/// index in the chain contributes the ident before its `(`/`[`
/// (`self.shard(k).lock()` → `["self", "shard"]`).
fn recv_chain(toks: &[Tok], method_idx: usize) -> Vec<String> {
    let mut segs = Vec::new();
    let Some((mut i, dot)) = prev_nc(toks, method_idx) else {
        return segs;
    };
    if !dot.is_punct('.') {
        return segs;
    }
    // `i` is at a `.`; each segment ends just before it.
    while let Some((j, t)) = prev_nc(toks, i) {
        let seg_idx = if t.kind == Kind::Ident {
            Some(j)
        } else if t.is_punct(')') || t.is_punct(']') {
            // Scan back over the balanced group to the ident naming it.
            let (open, close) = if t.is_punct(')') {
                ('(', ')')
            } else {
                ('[', ']')
            };
            let mut depth = 1usize;
            let mut k = j;
            while k > 0 && depth > 0 {
                k -= 1;
                if toks[k].is_punct(close) {
                    depth += 1;
                } else if toks[k].is_punct(open) {
                    depth -= 1;
                }
            }
            prev_nc(toks, k).and_then(|(m, t)| (t.kind == Kind::Ident).then_some(m))
        } else {
            None
        };
        let Some(seg_idx) = seg_idx else { break };
        segs.push(toks[seg_idx].text.clone());
        match prev_nc(toks, seg_idx) {
            Some((k, t)) if t.is_punct('.') => i = k,
            _ => break,
        }
    }
    segs.reverse();
    segs
}

/// Build the lock label for a receiver chain in context.
fn lock_label(krate: &str, recv: Option<&str>, chain: &[String]) -> String {
    let field = match chain.last() {
        Some(f) if f != "self" => f.clone(),
        // Bare `self.lock()` — label by the impl type.
        _ => recv.unwrap_or("self").to_string(),
    };
    format!("{krate}:{field}")
}

/// Extract calls and lock sites from one function body.
fn scan_body(toks: &[Tok], node: &mut FnNode, recv: Option<&str>, krate: &str, params: &[String]) {
    // The workspace's poison-recovery helper (`fn lock<T>(m: &Mutex<T>) ->
    // MutexGuard` with `into_inner`) locks *its parameter*; the acquisition
    // belongs to its callers, where the `lock(&x)` call-site shape below
    // attributes it.
    let body = &toks[node.body.0..node.body.1];
    let is_poison_helper = body.iter().any(|t| t.is_ident("into_inner"));

    let mut i = node.body.0 + 1;
    while i + 1 < node.body.1 {
        if node.in_nested(i) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.kind != Kind::Ident {
            i += 1;
            continue;
        }
        // Guard-shape lock acquisition.
        if is_guard_acquire(toks, i) {
            let chain = recv_chain(toks, i);
            let root_is_param = chain.first().is_some_and(|r| params.contains(r));
            if !(is_poison_helper && root_is_param) {
                node.locks.push(LockSite {
                    label: lock_label(krate, recv, &chain),
                    tok: i,
                    line: t.line,
                });
            }
            i += 1;
            continue;
        }
        // Helper-shape acquisition: a free call `lock(&chain)`.
        let is_called = next_nc(toks, i).is_some_and(|(_, n)| n.is_punct('('));
        let after_dot = prev_nc(toks, i).is_some_and(|(_, p)| p.is_punct('.'));
        if t.is_ident("lock") && is_called && !after_dot {
            if let Some((open, _)) = next_nc(toks, i) {
                if next_nc(toks, open).is_some_and(|(_, a)| a.is_punct('&')) {
                    let close = match_delim(toks, open, '(', ')');
                    let chain: Vec<String> = toks[open + 1..close.saturating_sub(1)]
                        .iter()
                        .filter(|t| t.kind == Kind::Ident)
                        .map(|t| t.text.clone())
                        .collect();
                    if !chain.is_empty() {
                        node.locks.push(LockSite {
                            label: lock_label(krate, recv, &chain),
                            tok: i,
                            line: t.line,
                        });
                    }
                    // Still record the call edge to the helper below.
                }
            }
        }
        // Call site.
        if is_called && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            let kind = match prev_nc(toks, i) {
                Some((_, p)) if p.is_punct('.') => CallKind::Method {
                    on_self: recv_chain(toks, i).first().is_some_and(|r| r == "self"),
                },
                Some((j, p)) if p.is_punct(':') => {
                    // `Qual::name(` — find the ident before the `::`.
                    match prev_nc(toks, j)
                        .and_then(|(k, c)| c.is_punct(':').then(|| prev_nc(toks, k)).flatten())
                    {
                        Some((_, q)) if q.kind == Kind::Ident => CallKind::Path {
                            qual: q.text.clone(),
                        },
                        _ => CallKind::Free,
                    }
                }
                _ => CallKind::Free,
            };
            node.calls.push(Call {
                name: t.text.clone(),
                kind,
                tok: i,
                line: t.line,
            });
        }
        i += 1;
    }
}

/// Build the workspace model over every file (phase 1).
pub fn build(files: &[FileData]) -> Model {
    let mut fns = Vec::new();
    let mut struct_tys: Vec<(String, BTreeSet<String>)> = Vec::new();
    for (file_idx, fd) in files.iter().enumerate() {
        let krate = crate_of(&fd.path);
        let impls = impl_regions(&fd.toks);
        struct_tys.extend(struct_field_types(&fd.toks));
        let file_is_test = fd.path.starts_with("tests/")
            || fd.path.contains("/tests/")
            || fd.path.contains("/benches/");
        for f in &fd.fns {
            // Innermost impl body containing the fn header.
            let recv = impls
                .iter()
                .filter(|&&(s, e, _)| f.head_start > s && f.head_start < e)
                .min_by_key(|&&(s, e, _)| e - s)
                .map(|(_, _, name)| name.clone());
            let sig_idents: BTreeSet<String> = fd.toks[f.head_start..f.body_start]
                .iter()
                .filter(|t| t.kind == Kind::Ident)
                .map(|t| t.text.clone())
                .collect();
            let nested: Vec<(usize, usize)> = fd
                .fns
                .iter()
                .filter(|g| g.head_start > f.head_start && g.body_end <= f.body_end)
                .map(|g| (g.head_start, g.body_end))
                .collect();
            let mut node = FnNode {
                file: file_idx,
                krate: krate.clone(),
                name: f.name.clone(),
                recv,
                line: f.line,
                is_test: f.is_test || file_is_test,
                params: f.params.clone(),
                sig_idents,
                body: (f.body_start, f.body_end),
                nested,
                calls: Vec::new(),
                locks: Vec::new(),
            };
            let recv = node.recv.clone();
            let params = node.params.clone();
            scan_body(&fd.toks, &mut node, recv.as_deref(), &krate, &params);
            fns.push(node);
        }
    }
    let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (i, f) in fns.iter().enumerate() {
        by_name.entry(f.name.clone()).or_default().push(i);
    }
    // Deadline-carrying types: close the seed set over struct fields.
    let mut deadline_types: BTreeSet<String> = ["Deadline", "SharedDeadline", "DeadlineStream"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    loop {
        let before = deadline_types.len();
        for (name, tys) in &struct_tys {
            if tys.iter().any(|t| deadline_types.contains(t)) {
                deadline_types.insert(name.clone());
            }
        }
        if deadline_types.len() == before {
            break;
        }
    }
    Model {
        fns,
        by_name,
        deadline_types,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(path: &str, src: &str) -> Model {
        build(&[FileData::new(path, src)])
    }

    #[test]
    fn impl_receiver_and_calls() {
        let m = model_of(
            "crates/rpc/src/x.rs",
            r#"
impl MuxSender {
    fn send(&self) { self.lease(); helper(2); Framer::scan(b); }
    fn lease(&self) {}
}
fn helper(n: usize) {}
"#,
        );
        let send = &m.fns[0];
        assert_eq!(send.recv.as_deref(), Some("MuxSender"));
        assert_eq!(send.qname(), "MuxSender::send");
        let kinds: Vec<(&str, &CallKind)> = send
            .calls
            .iter()
            .map(|c| (c.name.as_str(), &c.kind))
            .collect();
        assert_eq!(kinds.len(), 3, "{kinds:?}");
        assert_eq!(kinds[0], ("lease", &CallKind::Method { on_self: true }));
        assert_eq!(kinds[1], ("helper", &CallKind::Free));
        assert_eq!(
            kinds[2],
            (
                "scan",
                &CallKind::Path {
                    qual: "Framer".into()
                }
            )
        );
        assert!(m.fns[2].recv.is_none());
    }

    #[test]
    fn lock_sites_both_shapes() {
        let m = model_of(
            "crates/rpc/src/x.rs",
            r#"
impl MuxState {
    fn register(&self) {
        let g = self.pending.lock();
        let h = lock(&self.reactor);
        let s = self.shards[0].lock();
    }
}
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}
"#,
        );
        let labels: Vec<&str> = m.fns[0].locks.iter().map(|l| l.label.as_str()).collect();
        assert_eq!(labels, ["rpc:pending", "rpc:reactor", "rpc:shards"]);
        // The poison helper's internal site is attributed to callers only.
        assert!(m.fns[1].locks.is_empty(), "{:?}", m.fns[1].locks);
    }

    #[test]
    fn deadline_types_close_over_fields() {
        let m = model_of(
            "crates/rpc/src/x.rs",
            "struct BlockConn { stream: DeadlineStream, n: usize }\n\
             struct Plain { n: usize }\n\
             struct Outer { conn: BlockConn }\n",
        );
        assert!(m.deadline_types.contains("BlockConn"));
        assert!(m.deadline_types.contains("Outer"));
        assert!(!m.deadline_types.contains("Plain"));
    }

    #[test]
    fn crate_names() {
        assert_eq!(crate_of("crates/rpc/src/mux.rs"), "rpc");
        assert_eq!(crate_of("crates/shims/reactor/src/sys.rs"), "reactor");
        assert_eq!(crate_of("src/lib.rs"), "udsm");
        assert_eq!(crate_of("tests/c10k.rs"), "udsm");
    }
}
