//! Findings and their machine-readable rendering.
//!
//! JSON is emitted by hand (this crate is dependency-free by design); the
//! format is a flat array of objects so CI and editors can consume it
//! without knowing the rule set.

/// One rule violation (possibly suppressed by an `xlint: allow`).
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule name (`wire-arith`, `panic-path`, ...).
    pub rule: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based source line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
    /// `Some(reason)` when an `xlint: allow(<rule>)` covers this finding.
    pub suppressed: Option<String>,
}

impl Finding {
    /// Build an active (unsuppressed) finding.
    pub fn new(rule: &'static str, file: &str, line: usize, message: impl Into<String>) -> Finding {
        Finding {
            rule,
            file: file.to_string(),
            line,
            message: message.into(),
            suppressed: None,
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render every finding (suppressed included) as a JSON array.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"message\":\"{}\",\"suppressed\":{}}}",
            escape_json(f.rule),
            escape_json(&f.file),
            f.line,
            escape_json(&f.message),
            match &f.suppressed {
                None => "null".to_string(),
                Some(reason) => format!("\"{}\"", escape_json(reason)),
            }
        ));
        if i + 1 < findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push(']');
    out
}

/// Render findings for the terminal; suppressed ones only with `verbose`.
pub fn render_text(findings: &[Finding], verbose: bool) -> String {
    let mut out = String::new();
    for f in findings {
        match &f.suppressed {
            None => out.push_str(&format!(
                "deny  {:<18} {}:{}  {}\n",
                f.rule, f.file, f.line, f.message
            )),
            Some(reason) if verbose => out.push_str(&format!(
                "allow {:<18} {}:{}  {} (reason: {})\n",
                f.rule, f.file, f.line, f.message, reason
            )),
            Some(_) => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_and_nulls() {
        let fs = vec![
            Finding::new("panic-path", "a.rs", 3, "bad \"quote\"\nline"),
            Finding {
                suppressed: Some("because".into()),
                ..Finding::new("wire-arith", "b.rs", 9, "x")
            },
        ];
        let json = render_json(&fs);
        assert!(json.contains("\\\"quote\\\"\\nline"));
        assert!(json.contains("\"suppressed\":null"));
        assert!(json.contains("\"suppressed\":\"because\""));
    }

    #[test]
    fn text_hides_suppressed_unless_verbose() {
        let fs = vec![Finding {
            suppressed: Some("r".into()),
            ..Finding::new("wire-arith", "b.rs", 9, "x")
        }];
        assert!(render_text(&fs, false).is_empty());
        assert!(render_text(&fs, true).contains("allow"));
    }
}
