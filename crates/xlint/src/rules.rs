//! The six deny-by-default rules.
//!
//! Every rule works on the token stream plus the function spans from
//! [`crate::scan`]; none require type information. They are deliberately
//! *syntactic over-approximations*: a flagged site that is provably safe
//! gets an `// xlint: allow(<rule>) reason="..."` suppression rather than a
//! smarter analysis — the reason string is the point.

use crate::lexer::{Kind, Tok};
use crate::report::Finding;
use crate::scan::{match_delim, Control, FnSpan};
use std::collections::BTreeSet;

/// Rule: unchecked `+`/`*`/`as usize` on wire-derived lengths.
pub const WIRE_ARITH: &str = "wire-arith";
/// Rule: unwrap/expect/indexing/panic in request paths.
pub const PANIC_PATH: &str = "panic-path";
/// Rule: lock guard live across a blocking I/O or network call.
pub const GUARD_IO: &str = "guard-across-io";
/// Rule: retry loop without an idempotency marker or flushed-state guard.
pub const RETRY: &str = "retry-idempotency";
/// Rule: `unsafe` outside the allow-list, or without a SAFETY: comment.
pub const UNSAFE: &str = "unsafe-allowlist";
/// Rule: trace context minted inside a retry closure (identity lost across
/// attempts).
pub const TRACE_CTX: &str = "trace-ctx-loss";
/// Rule: blocking syscall, `thread::sleep`, or guard-across-await inside a
/// reactor callback (a fn whose signature takes an `Outbox`).
pub const REACTOR_BLOCK: &str = "blocking-in-reactor";
/// Meta rule: suppression hygiene (unused allows, missing reasons).
pub const HYGIENE: &str = "suppression-hygiene";
/// Inter-procedural rule: wire-derived integer reaches an allocation or
/// `as usize` cast across a call boundary without a checked bound.
pub const WIRE_TAINT: &str = "wire-taint";
/// Inter-procedural rule: global lock-acquisition graph cycles and
/// undocumented nested acquisitions.
pub const LOCK_ORDER: &str = "lock-order";
/// Inter-procedural rule: socket I/O reachable from a client request entry
/// point must take or derive a `Deadline`.
pub const DEADLINE: &str = "deadline-propagation";
/// Rule: metric registration with a dynamically-built name or label value
/// (`format!` inside a `.counter(..)`/`.gauge(..)`/`.histogram(..)` call):
/// unbounded series cardinality.
pub const METRIC_HYGIENE: &str = "metric-hygiene";

/// All suppressible rule names (for validating `allow(...)` arguments).
pub const RULES: &[&str] = &[
    WIRE_ARITH,
    PANIC_PATH,
    GUARD_IO,
    RETRY,
    UNSAFE,
    TRACE_CTX,
    REACTOR_BLOCK,
    WIRE_TAINT,
    LOCK_ORDER,
    DEADLINE,
    METRIC_HYGIENE,
];

pub(crate) fn prev_nc(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks[..i].iter().rev().find(|t| !t.is_comment())
}

pub(crate) fn next_nc(toks: &[Tok], i: usize) -> Option<&Tok> {
    toks.get(i + 1..)?.iter().find(|t| !t.is_comment())
}

/// `toks[i]` is an identifier called as a method: `recv.name(...)`.
pub(crate) fn is_method_call(toks: &[Tok], i: usize) -> bool {
    prev_nc(toks, i).is_some_and(|t| t.is_punct('.'))
        && next_nc(toks, i).is_some_and(|t| t.is_punct('('))
}

/// `toks[i]` is an identifier invoked with `(` (method or free call).
pub(crate) fn is_call(toks: &[Tok], i: usize) -> bool {
    next_nc(toks, i).is_some_and(|t| t.is_punct('('))
}

/// `toks[i]` is `.lock()` / `.read()` / `.write()` with *empty* parens —
/// the shape of a `Mutex`/`RwLock` guard acquisition. (`Read::read` and
/// `Write::write` always take a buffer argument, so the empty parens
/// distinguish the two.)
fn is_guard_acquire(toks: &[Tok], i: usize) -> bool {
    let t = &toks[i];
    if !(t.is_ident("lock") || t.is_ident("read") || t.is_ident("write")) {
        return false;
    }
    if !prev_nc(toks, i).is_some_and(|p| p.is_punct('.')) {
        return false;
    }
    let Some(open) = toks.get(i + 1..).and_then(|rest| {
        rest.iter()
            .position(|t| !t.is_comment())
            .map(|off| i + 1 + off)
    }) else {
        return false;
    };
    toks[open].is_punct('(') && next_nc(toks, open).is_some_and(|t| t.is_punct(')'))
}

/// Idents whose *call* blocks on I/O, the network, or time.
const BLOCKING: &[&str] = &[
    "write_all",
    "read_exact",
    "read_to_end",
    "read_line",
    "flush",
    "read_value",
    "write_value",
    "read_frame",
    "write_frame",
    "read_request",
    "write_request",
    "read_response",
    "write_response",
    "round_trip",
    "round_trip_inner",
    "open",
    "connect",
    "connect_timeout",
    "accept",
    "sleep",
    "sync_all",
    "sync_data",
    "load",
    "save",
    "recv",
    "join",
];

/// Is `toks[i]` a blocking call? A couple of idents need disambiguation:
/// `.load(`/`.save(` method calls are atomics/accessors (the file-I/O
/// `persist::load` style calls are path-qualified), and `join`/`recv` only
/// block when called with no arguments (thread join, channel recv — not
/// `Path::join`).
fn is_blocking_call(toks: &[Tok], i: usize) -> bool {
    let t = &toks[i];
    if t.kind != Kind::Ident || !BLOCKING.contains(&t.text.as_str()) || !is_call(toks, i) {
        return false;
    }
    match t.text.as_str() {
        "load" | "save" => !prev_nc(toks, i).is_some_and(|p| p.is_punct('.')),
        "join" | "recv" => {
            // Require empty parens.
            let open = (i + 1..toks.len()).find(|&j| !toks[j].is_comment());
            open.is_some_and(|o| {
                toks[o].is_punct('(') && next_nc(toks, o).is_some_and(|n| n.is_punct(')'))
            })
        }
        _ => true,
    }
}

pub(crate) const TAINT_SOURCES: &[&str] = &[
    "parse",
    "from_le_bytes",
    "from_be_bytes",
    "from_str_radix",
    "peek_len",
];

/// Identifiers never treated as value bindings when they appear in a `let`
/// pattern (constructors, primitives, common wrapper types).
const NON_BINDING_IDENTS: &[&str] = &[
    "Some", "None", "Ok", "Err", "mut", "ref", "box", "u8", "u16", "u32", "u64", "u128", "usize",
    "i8", "i16", "i32", "i64", "i128", "isize", "f32", "f64", "bool", "str", "String", "Vec",
    "Option", "Result", "Box", "Bytes",
];

fn lenish(name: &str) -> bool {
    matches!(name, "len" | "n" | "count" | "size" | "length")
        || name.ends_with("_len")
        || name.ends_with("_size")
        || name.ends_with("_count")
}

/// One `let` statement's shape inside a function body.
pub(crate) struct LetStmt {
    /// Idents bound by the pattern (constructors/types filtered out).
    pub(crate) bindings: Vec<String>,
    /// Token range of the initializer expression.
    pub(crate) rhs: (usize, usize),
    /// Index one past the end of the whole statement.
    pub(crate) end: usize,
}

/// Parse the `let` starting at `toks[i]` (which must be the `let` ident).
/// Understands plain `let`, `let`-`else`, and the `if let` / `while let`
/// forms (whose "RHS" ends at the block brace).
pub(crate) fn parse_let(toks: &[Tok], i: usize, limit: usize) -> Option<LetStmt> {
    let head_is_cond = prev_nc(toks, i).is_some_and(|t| t.is_ident("if") || t.is_ident("while"));
    let mut bindings = Vec::new();
    let mut j = i + 1;
    let mut depth = 0usize;
    let mut in_type = false;
    // Pattern (and optional type annotation) up to the `=`.
    while j < limit {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct('=') {
            break;
        } else if depth == 0 && (t.is_punct(';') || t.is_punct('{')) {
            return None; // `let` with no initializer
        } else if depth == 0 && t.is_punct(':') {
            in_type = true;
        } else if !in_type
            && t.kind == Kind::Ident
            && !NON_BINDING_IDENTS.contains(&t.text.as_str())
        {
            bindings.push(t.text.clone());
        }
        j += 1;
    }
    if j >= limit {
        return None;
    }
    let rhs_start = j + 1;
    let mut k = rhs_start;
    let mut d = 0usize;
    while k < limit {
        let t = &toks[k];
        if head_is_cond && d == 0 && t.is_punct('{') {
            // `if let P = expr {` — the expression ends at the block.
            return Some(LetStmt {
                bindings,
                rhs: (rhs_start, k),
                end: k,
            });
        }
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            d += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            d = d.saturating_sub(1);
        } else if d == 0 && t.is_punct(';') {
            return Some(LetStmt {
                bindings,
                rhs: (rhs_start, k),
                end: k + 1,
            });
        }
        k += 1;
    }
    None
}

/// `wire-arith`: taint wire-derived lengths, flag unchecked `+`/`*`/`as
/// usize` on them.
pub fn wire_arith(path: &str, toks: &[Tok], fns: &[FnSpan]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in fns.iter().filter(|f| !f.is_test) {
        let mut tainted: BTreeSet<String> =
            f.params.iter().filter(|p| lenish(p)).cloned().collect();
        // Propagate through `let` bindings; two passes handle the rare
        // use-before-redefinition ordering.
        for _ in 0..2 {
            let mut i = f.body_start;
            while i < f.body_end {
                if toks[i].is_ident("let") {
                    if let Some(stmt) = parse_let(toks, i, f.body_end) {
                        let rhs = &toks[stmt.rhs.0..stmt.rhs.1];
                        let dirty = rhs.iter().enumerate().any(|(off, t)| {
                            t.kind == Kind::Ident
                                && (TAINT_SOURCES.contains(&t.text.as_str())
                                    || (tainted.contains(&t.text) && !is_method_call(rhs, off)))
                        });
                        if dirty {
                            tainted.extend(stmt.bindings.iter().cloned());
                        }
                    }
                }
                i += 1;
            }
        }
        if tainted.is_empty() {
            // Direct-source check below still applies.
        }
        for i in f.body_start..f.body_end {
            let t = &toks[i];
            if t.kind != Kind::Ident {
                continue;
            }
            // `u32::from_le_bytes(buf) as usize` without a binding.
            if TAINT_SOURCES.contains(&t.text.as_str()) && is_call(toks, i) {
                let open = (i + 1..f.body_end).find(|&j| toks[j].is_punct('('));
                if let Some(open) = open {
                    let close = match_delim(toks, open, '(', ')');
                    if toks.get(close).is_some_and(|t| t.is_ident("as"))
                        && toks.get(close + 1).is_some_and(|t| t.is_ident("usize"))
                    {
                        out.push(Finding::new(
                            WIRE_ARITH,
                            path,
                            toks[close].line,
                            format!(
                                "`{}(..) as usize` on a wire-derived value; use usize::try_from",
                                t.text
                            ),
                        ));
                    }
                }
                continue;
            }
            if !tainted.contains(&t.text) || is_method_call(toks, i) {
                continue;
            }
            let next = next_nc(toks, i);
            let prev = prev_nc(toks, i);
            if next.is_some_and(|n| n.is_ident("as")) {
                // Find the cast target (skip comments).
                let as_idx = (i + 1..f.body_end).find(|&j| toks[j].is_ident("as"));
                if as_idx
                    .and_then(|a| next_nc(toks, a))
                    .is_some_and(|t| t.is_ident("usize"))
                {
                    out.push(Finding::new(
                        WIRE_ARITH,
                        path,
                        t.line,
                        format!(
                            "`{} as usize` on a wire-derived length; use usize::try_from",
                            t.text
                        ),
                    ));
                    continue;
                }
            }
            let plus_or_star = |tok: &Tok| tok.is_punct('+') || tok.is_punct('*');
            let next_arith = next.is_some_and(plus_or_star);
            // For a preceding `*`, make sure it is multiplication, not a
            // dereference (`*len` at the start of an expression).
            let prev_arith = prev.is_some_and(|p| {
                p.is_punct('+')
                    || (p.is_punct('*') && {
                        let before = toks[..i].iter().rev().filter(|t| !t.is_comment()).nth(1);
                        before.is_some_and(|b| {
                            matches!(b.kind, Kind::Ident | Kind::Num)
                                || b.is_punct(')')
                                || b.is_punct(']')
                        })
                    })
            });
            if next_arith || prev_arith {
                out.push(Finding::new(
                    WIRE_ARITH,
                    path,
                    t.line,
                    format!(
                        "unchecked arithmetic on wire-derived length `{}`; use checked_add/checked_mul (or saturating_*)",
                        t.text
                    ),
                ));
            }
        }
    }
    out
}

/// Rust keywords that can directly precede `[` without it being indexing.
const NON_INDEX_PRECEDERS: &[&str] = &[
    "let", "in", "return", "if", "else", "match", "mut", "ref", "as", "box", "move", "static",
    "const", "dyn", "impl", "where", "break",
];

/// `panic-path`: no unwrap/expect/panics/slice-indexing in request paths.
pub fn panic_path(path: &str, toks: &[Tok], fns: &[FnSpan]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in fns.iter().filter(|f| !f.is_test) {
        for i in f.body_start..f.body_end {
            let t = &toks[i];
            if t.kind != Kind::Ident {
                continue;
            }
            if (t.is_ident("unwrap") || t.is_ident("expect")) && is_method_call(toks, i) {
                out.push(Finding::new(
                    PANIC_PATH,
                    path,
                    t.line,
                    format!(
                        ".{}() in a request path: a panic drops the connection",
                        t.text
                    ),
                ));
                continue;
            }
            if matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) && next_nc(toks, i).is_some_and(|n| n.is_punct('!'))
            {
                // `debug_assert!`-style macros are separate idents, so this
                // only matches the four panicking macros themselves.
                out.push(Finding::new(
                    PANIC_PATH,
                    path,
                    t.line,
                    format!(
                        "{}! in a request path: a panic drops the connection",
                        t.text
                    ),
                ));
                continue;
            }
            if next_nc(toks, i).is_some_and(|n| n.is_punct('['))
                && !NON_INDEX_PRECEDERS.contains(&t.text.as_str())
            {
                out.push(Finding::new(
                    PANIC_PATH,
                    path,
                    t.line,
                    format!(
                        "slice/map indexing `{}[..]` in a request path: use .get()",
                        t.text
                    ),
                ));
            }
        }
    }
    out
}

/// `guard-across-io`: a `Mutex`/`RwLock` guard must not be live across a
/// blocking I/O or network call.
pub fn guard_across_io(path: &str, toks: &[Tok], fns: &[FnSpan]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in fns.iter().filter(|f| !f.is_test) {
        // Named guards retire when their block closes or they are dropped;
        // temporary guards (match/if-let/for scrutinees holding a guard)
        // retire at a token index.
        let mut named: Vec<(String, usize)> = Vec::new(); // (name, depth)
        let mut temps: Vec<(usize, usize)> = Vec::new(); // (end_idx, line)
        let mut depth = 0usize;
        let mut i = f.body_start + 1;
        while i + 1 < f.body_end {
            let t = &toks[i];
            temps.retain(|&(end, _)| i < end);
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                named.retain(|&(_, d)| d <= depth);
            } else if t.is_ident("let") {
                if let Some(stmt) = parse_let(toks, i, f.body_end) {
                    let rhs = &toks[stmt.rhs.0..stmt.rhs.1];
                    // Only brace-depth-0 acquisitions create statement-long
                    // temporaries; one inside a nested block or closure body
                    // (`let t = { … x.lock() … };`) drops at that block's end
                    // or never runs here at all.
                    let mut bd = 0usize;
                    let mut acq = None;
                    for (off, t) in rhs.iter().enumerate() {
                        if t.is_punct('{') {
                            bd += 1;
                        } else if t.is_punct('}') {
                            bd = bd.saturating_sub(1);
                        } else if bd == 0 && is_guard_acquire(rhs, off) {
                            acq = Some(off);
                            break;
                        }
                    }
                    if let Some(acq) = acq {
                        // Guard acquisition at the *end* of the initializer
                        // binds a named guard; anywhere earlier it is a
                        // temporary that lives until the statement's `;`
                        // (Rust temporary-lifetime rules — the PR 2 bug).
                        let tail_is_acquire = rhs
                            .iter()
                            .rposition(|t| !t.is_comment())
                            .is_some_and(|last| last <= acq + 2);
                        if tail_is_acquire {
                            if let Some(name) = stmt.bindings.first() {
                                named.push((name.clone(), depth));
                            }
                        } else {
                            temps.push((stmt.end, toks[i].line));
                        }
                    }
                }
            } else if t.is_ident("match") || t.is_ident("for") || t.is_ident("while") {
                // Scrutinee/iterator temporaries holding a guard live for
                // the whole block.
                let scrut_start = if t.is_ident("for") {
                    (i + 1..f.body_end).find(|&j| toks[j].is_ident("in"))
                } else {
                    Some(i)
                };
                if let Some(s) = scrut_start {
                    let mut d = 0usize;
                    let mut open = None;
                    for (j, tj) in toks.iter().enumerate().take(f.body_end).skip(s + 1) {
                        if tj.is_punct('(') || tj.is_punct('[') {
                            d += 1;
                        } else if tj.is_punct(')') || tj.is_punct(']') {
                            d = d.saturating_sub(1);
                        } else if d == 0 && tj.is_punct('{') {
                            open = Some(j);
                            break;
                        } else if d == 0 && tj.is_punct(';') {
                            break;
                        }
                    }
                    if let Some(open) = open {
                        let scrut = &toks[i + 1..open];
                        if scrut
                            .iter()
                            .enumerate()
                            .any(|(off, _)| is_guard_acquire(scrut, off))
                        {
                            let end = match_delim(toks, open, '{', '}');
                            temps.push((end, t.line));
                        }
                    }
                }
            } else if t.is_ident("drop") && is_call(toks, i) {
                if let Some(arg) = toks.get(i + 2) {
                    named.retain(|(name, _)| name != &arg.text);
                }
            } else if is_blocking_call(toks, i) && (!named.is_empty() || !temps.is_empty()) {
                let holder = named
                    .last()
                    .map(|(n, _)| format!("guard `{n}`"))
                    .or_else(|| {
                        temps
                            .last()
                            .map(|&(_, line)| format!("guard temporary from line {line}"))
                    })
                    .unwrap_or_default();
                out.push(Finding::new(
                    GUARD_IO,
                    path,
                    t.line,
                    format!(
                        "blocking call `{}` while {holder} is live; narrow the lock scope",
                        t.text
                    ),
                ));
            }
            i += 1;
        }
    }
    out
}

/// Idents whose presence in a loop body marks it as a network retry loop.
const NET_CALLS: &[&str] = &[
    "round_trip",
    "round_trip_inner",
    "write_frame",
    "read_frame",
    "write_request",
    "read_response",
    "write_value",
    "read_value",
    "checkout",
    "exec",
    "open",
    "connect",
    "send_request",
];

/// Guard identifiers that show a retry loop tracks replay safety.
fn is_replay_guard_ident(name: &str) -> bool {
    name.contains("idempotent")
        || name.contains("read_only")
        || name.contains("flushed")
        || name == "sent"
        || name.contains("_sent")
        || name.starts_with("sent_")
}

/// `retry-idempotency`: a retry loop over network calls must carry an
/// `// xlint: idempotent reason="..."` marker or a flushed-state check.
pub fn retry_idempotency(
    path: &str,
    toks: &[Tok],
    fns: &[FnSpan],
    controls: &[Control],
) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in fns.iter().filter(|f| !f.is_test) {
        for i in f.body_start..f.body_end {
            let t = &toks[i];
            if !(t.is_ident("loop") || t.is_ident("for") || t.is_ident("while")) {
                continue;
            }
            // Head = loop keyword to the body `{`; body = the block.
            let mut d = 0usize;
            let mut open = None;
            for (j, tj) in toks.iter().enumerate().take(f.body_end).skip(i + 1) {
                if tj.is_punct('(') || tj.is_punct('[') {
                    d += 1;
                } else if tj.is_punct(')') || tj.is_punct(']') {
                    d = d.saturating_sub(1);
                } else if d == 0 && tj.is_punct('{') {
                    open = Some(j);
                    break;
                } else if d == 0 && tj.is_punct(';') {
                    break;
                }
            }
            let Some(open) = open else { continue };
            let end = match_delim(toks, open, '{', '}');
            let span = &toks[i..end];
            let has_continue = span.iter().any(|t| t.is_ident("continue"));
            let has_net = span.iter().enumerate().any(|(off, t)| {
                t.kind == Kind::Ident && NET_CALLS.contains(&t.text.as_str()) && is_call(span, off)
            });
            let has_attempt = span.iter().any(|t| {
                t.kind == Kind::Ident
                    && (t.text.contains("attempt")
                        || t.text.contains("retry")
                        || t.text.contains("tries"))
            });
            if !(has_continue && has_net && has_attempt) {
                continue;
            }
            let guarded = span
                .iter()
                .any(|t| t.kind == Kind::Ident && is_replay_guard_ident(&t.text))
                || toks[f.body_start..f.body_end]
                    .iter()
                    .any(|t| t.kind == Kind::Ident && is_replay_guard_ident(&t.text));
            let end_line = toks.get(end.saturating_sub(1)).map_or(t.line, |t| t.line);
            let marker = controls
                .iter()
                .find(|c| c.verb == "idempotent" && c.line >= f.line && c.line <= end_line);
            if let Some(m) = marker {
                m.used.set(true);
                continue;
            }
            if !guarded {
                out.push(Finding::new(
                    RETRY,
                    path,
                    t.line,
                    "retry loop over network calls without an `// xlint: idempotent` marker \
                     or a flushed/sent-state guard: a replay may double-apply effects",
                ));
            }
        }
    }
    out
}

/// The resilience layer's retry entry points: everything inside their
/// argument list runs once *per attempt*.
const RETRY_ENTRY_POINTS: &[&str] = &["run_idempotent", "run_guarded", "run_once"];

/// `trace-ctx-loss`: minting a [`obs::TraceContext`] root inside a retry
/// closure gives every attempt a fresh trace identity, so the attempts of
/// one logical request can never be joined again. The context must be
/// minted once, *before* the retry boundary (the shape every native client
/// uses: `let ctx = …; resilience.run_idempotent(|…| { /* uses ctx */ })`).
pub fn trace_ctx_loss(path: &str, toks: &[Tok], fns: &[FnSpan]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in fns.iter().filter(|f| !f.is_test) {
        for i in f.body_start..f.body_end {
            let t = &toks[i];
            if t.kind != Kind::Ident
                || !RETRY_ENTRY_POINTS.contains(&t.text.as_str())
                || !is_call(toks, i)
            {
                continue;
            }
            let Some(open) = (i + 1..f.body_end).find(|&j| !toks[j].is_comment()) else {
                continue;
            };
            if !toks[open].is_punct('(') {
                continue;
            }
            let close = match_delim(toks, open, '(', ')').min(f.body_end);
            for j in open..close {
                let tj = &toks[j];
                if tj.kind == Kind::Ident && tj.is_ident("new_root") && is_call(toks, j) {
                    out.push(Finding::new(
                        TRACE_CTX,
                        path,
                        tj.line,
                        format!(
                            "`new_root()` inside `{}`: each retry attempt gets a fresh trace \
                             identity; mint the context once, before the retry boundary",
                            t.text
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// Frame-codec helpers exempt from `blocking-in-reactor`. They are named
/// like I/O, but a reactor callback only ever runs them over in-memory
/// buffers: the reactor owns the socket, and a handler's sole path to the
/// wire is its `Outbox`. Flagging them would force a blanket suppression
/// onto every handler, which is exactly how allow-lists rot.
const REACTOR_CODEC: &[&str] = &[
    "read_value",
    "write_value",
    "read_frame",
    "write_frame",
    "read_request",
    "write_request",
    "read_response",
    "write_response",
];

/// `blocking-in-reactor`: no blocking syscalls, no `thread::sleep`, and no
/// lock guard held across an await point inside a reactor callback.
///
/// The gate is syntactic: a non-test fn whose signature mentions `Outbox`
/// is a callback running *on* the event loop, where one stalled handler
/// stalls every connection on the thread. Time belongs to `out.delay(..)`
/// and bytes to `out.send(..)`; anything slower than a parse must move off
/// the loop.
pub fn blocking_in_reactor(path: &str, toks: &[Tok], fns: &[FnSpan]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in fns.iter().filter(|f| !f.is_test) {
        let head = toks.get(f.head_start..f.body_start).unwrap_or_default();
        if !head.iter().any(|t| t.is_ident("Outbox")) {
            continue;
        }
        // Named guards retire at block close or explicit drop, mirroring
        // the `guard-across-io` liveness model.
        let mut named: Vec<(String, usize)> = Vec::new();
        let mut depth = 0usize;
        let mut i = f.body_start + 1;
        while i + 1 < f.body_end {
            let t = &toks[i];
            if t.is_punct('{') {
                depth += 1;
            } else if t.is_punct('}') {
                depth = depth.saturating_sub(1);
                named.retain(|&(_, d)| d <= depth);
            } else if t.is_ident("let") {
                if let Some(stmt) = parse_let(toks, i, f.body_end) {
                    // Only brace-depth-0 acquisitions bind a guard to the
                    // `let`; one inside a nested block drops at that
                    // block's end (same model as `guard-across-io`).
                    let rhs = &toks[stmt.rhs.0..stmt.rhs.1];
                    let mut bd = 0usize;
                    let mut acquired = false;
                    for (off, t) in rhs.iter().enumerate() {
                        if t.is_punct('{') {
                            bd += 1;
                        } else if t.is_punct('}') {
                            bd = bd.saturating_sub(1);
                        } else if bd == 0 && is_guard_acquire(rhs, off) {
                            acquired = true;
                            break;
                        }
                    }
                    if acquired {
                        if let Some(name) = stmt.bindings.first() {
                            named.push((name.clone(), depth));
                        }
                    }
                }
            } else if t.is_ident("drop") && is_call(toks, i) {
                if let Some(arg) = toks.get(i + 2) {
                    named.retain(|(name, _)| name != &arg.text);
                }
            } else if t.is_ident("await") && prev_nc(toks, i).is_some_and(|p| p.is_punct('.')) {
                if let Some((name, _)) = named.last() {
                    out.push(Finding::new(
                        REACTOR_BLOCK,
                        path,
                        t.line,
                        format!(
                            "lock guard `{name}` held across an await point in reactor \
                             callback `{}`; drop it before yielding",
                            f.name
                        ),
                    ));
                }
            } else if is_blocking_call(toks, i) && !REACTOR_CODEC.contains(&t.text.as_str()) {
                out.push(Finding::new(
                    REACTOR_BLOCK,
                    path,
                    t.line,
                    format!(
                        "blocking `{}()` in reactor callback `{}` stalls every connection \
                         on this event loop; use the `Outbox` (`out.delay`/`out.send`) or \
                         move the work off the loop",
                        t.text, f.name
                    ),
                ));
            }
            i += 1;
        }
    }
    out
}

/// `unsafe-allowlist`: `unsafe` only where allowed, always justified.
pub fn unsafe_allowlist(path: &str, toks: &[Tok], allowed: bool) -> Vec<Finding> {
    let mut out = Vec::new();
    for t in toks.iter() {
        if !t.is_ident("unsafe") {
            continue;
        }
        if !allowed {
            out.push(Finding::new(
                UNSAFE,
                path,
                t.line,
                "`unsafe` outside the allow-list (fskv, crates/shims)",
            ));
            continue;
        }
        // A justification counts if a SAFETY comment appears within a few
        // lines above the `unsafe` (or trailing on the same/next line).
        let justified = toks.iter().any(|c| {
            c.is_comment()
                && c.text.contains("SAFETY")
                && c.line <= t.line.saturating_add(1)
                && c.line.saturating_add(6) >= t.line
        });
        if !justified {
            out.push(Finding::new(
                UNSAFE,
                path,
                t.line,
                "`unsafe` without an adjacent SAFETY: comment",
            ));
        }
    }
    out
}

/// `metric-hygiene`: deny metric registration with dynamically-built names
/// or unbounded label values. Every Prometheus series is a permanent
/// allocation in every scraper that ever sees it; a `format!` feeding a
/// `.counter(..)` / `.gauge(..)` / `.histogram(..)` / `.observe_exemplar(..)`
/// call — whether it builds the *name* or interpolates a raw key into a
/// *label* — mints a fresh series per distinct input and melts dashboards.
/// Syntactic over-approximation by design: a `format!` over a provably
/// closed set (a fixed prefix enum, a bounded op code) is safe, and says so
/// with an `// xlint: allow(metric-hygiene) reason="..."`.
pub fn metric_hygiene(path: &str, toks: &[Tok], fns: &[FnSpan]) -> Vec<Finding> {
    /// Registry entry points whose arguments become series identity.
    const REGISTRARS: &[&str] = &[
        "counter",
        "gauge",
        "histogram",
        "observe_exemplar",
        "merge_histogram",
    ];
    let mut out = Vec::new();
    for f in fns.iter().filter(|f| !f.is_test) {
        for i in f.body_start..f.body_end {
            let t = &toks[i];
            if t.kind != Kind::Ident
                || !REGISTRARS.contains(&t.text.as_str())
                || !is_method_call(toks, i)
            {
                continue;
            }
            let Some(open) = toks.get(i + 1..f.body_end).and_then(|rest| {
                rest.iter()
                    .position(|t| !t.is_comment())
                    .map(|off| i + 1 + off)
            }) else {
                continue;
            };
            if !toks[open].is_punct('(') {
                continue;
            }
            let close = match_delim(toks, open, '(', ')').min(f.body_end);
            for j in open..close {
                let a = &toks[j];
                if a.kind == Kind::Ident
                    && a.is_ident("format")
                    && next_nc(toks, j).is_some_and(|n| n.is_punct('!'))
                {
                    out.push(Finding::new(
                        METRIC_HYGIENE,
                        path,
                        a.line,
                        format!(
                            "format! inside `.{}(...)`: dynamically-built metric \
                             name or label value mints unbounded series \
                             cardinality — use a static name and a closed label set",
                            t.text
                        ),
                    ));
                    break;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::scan::{controls, fn_spans};

    fn run<F>(src: &str, f: F) -> Vec<Finding>
    where
        F: Fn(&str, &[Tok], &[FnSpan]) -> Vec<Finding>,
    {
        let toks = lex(src);
        let fns = fn_spans(&toks);
        f("test.rs", &toks, &fns)
    }

    #[test]
    fn metric_hygiene_flags_dynamic_names_and_labels() {
        let src = r#"
fn publish(reg: &Registry, shard: usize, key: &str) {
    reg.counter(&format!("shard_{shard}_ops_total"), &[]).inc();
    reg.histogram("op_ns", &[("key", &format!("k={key}"))]).record(1);
    reg.gauge("depth", &[("shard", "0")]).set(1);
    let h = self.histogram(op);
}
"#;
        let fs = run(src, metric_hygiene);
        assert_eq!(fs.len(), 2, "{fs:?}");
        assert!(fs.iter().any(|f| f.line == 3), "dynamic name: {fs:?}");
        assert!(fs.iter().any(|f| f.line == 4), "dynamic label: {fs:?}");
        // Static registration and non-registry `.histogram(op)` (no
        // format!) stay clean.
        assert!(!fs.iter().any(|f| f.line >= 5), "{fs:?}");
    }

    #[test]
    fn metric_hygiene_skips_test_fns() {
        let src = r#"
#[test]
fn makes_throwaway_series() {
    reg.counter(&format!("t_{i}"), &[]).inc();
}
"#;
        assert!(run(src, metric_hygiene).is_empty());
    }

    #[test]
    fn wire_arith_taints_through_lets() {
        let src = r#"
fn parse(buf: &[u8]) {
    let n: u32 = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    let total = n as usize + 2;
    let ok = usize::try_from(n);
}
"#;
        let fs = run(src, wire_arith);
        assert!(fs.iter().any(|f| f.line == 4), "{fs:?}");
        assert!(!fs.iter().any(|f| f.line == 5), "{fs:?}");
    }

    #[test]
    fn wire_arith_param_taint_and_mul() {
        let src = "fn body(len: usize) { let need = len * 2; }";
        assert_eq!(run(src, wire_arith).len(), 1);
        let clean = "fn body(len: usize) { let need = len.checked_mul(2); }";
        assert!(run(clean, wire_arith).is_empty());
    }

    #[test]
    fn panic_path_flags_unwrap_index_and_macros() {
        let src = r#"
fn handle(parts: &[u8], i: usize) {
    let a = parts[i];
    let b = parts.first().unwrap();
    let c = parts.iter().next().expect("x");
    unreachable!("nope");
    let ok = parts.get(i);
    let v = vec![1, 2];
}
"#;
        let fs = run(src, panic_path);
        let lines: Vec<usize> = fs.iter().map(|f| f.line).collect();
        assert_eq!(lines, [3, 4, 5, 6], "{fs:?}");
    }

    #[test]
    fn guard_io_flags_match_scrutinee_temporary() {
        let src = r#"
fn fetch(&self) -> Result<Conn> {
    for attempt in 0..2 {
        let mut conn = match self.pool.lock().pop() {
            Some(c) => c,
            _ => Conn::open(self.addr)?,
        };
    }
    Err(Error)
}
"#;
        let fs = run(src, guard_across_io);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("open"));
    }

    #[test]
    fn guard_io_allows_scoped_guard_and_drop() {
        let src = r#"
fn ok(&self) {
    {
        let mut pool = self.pool.lock();
        pool.push(1);
    }
    let conn = Conn::open(self.addr);
    let g = self.state.lock();
    drop(g);
    self.writer.flush();
}
"#;
        assert!(run(src, guard_across_io).is_empty());
    }

    #[test]
    fn guard_io_flags_named_guard_across_flush() {
        let src = r#"
fn bad(&self) {
    let g = self.state.lock();
    self.writer.flush();
}
"#;
        let fs = run(src, guard_across_io);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("`g`"));
    }

    #[test]
    fn retry_needs_marker_or_guard() {
        let bad = r#"
fn exec(&self) -> Result<Value> {
    for attempt in 0..2 {
        let mut conn = self.checkout(attempt > 0)?;
        match conn.round_trip(&cmd) {
            Ok(v) => return Ok(v),
            Err(e) if attempt == 0 => continue,
            Err(e) => return Err(e),
        }
    }
    Err(Error)
}
"#;
        let toks = lex(bad);
        let fns = fn_spans(&toks);
        let cs = controls(&toks);
        assert_eq!(retry_idempotency("t.rs", &toks, &fns, &cs).len(), 1);

        let marked = bad.replace(
            "for attempt",
            "// xlint: idempotent reason=\"only GETs retried\"\n    for attempt",
        );
        let toks = lex(&marked);
        let fns = fn_spans(&toks);
        let cs = controls(&toks);
        assert!(retry_idempotency("t.rs", &toks, &fns, &cs).is_empty());
        assert!(cs[0].used.get(), "marker consumed");

        let guarded = bad.replace("let mut conn", "let frame_sent = false; let mut conn");
        let toks = lex(&guarded);
        let fns = fn_spans(&toks);
        let cs = controls(&toks);
        assert!(retry_idempotency("t.rs", &toks, &fns, &cs).is_empty());
    }

    #[test]
    fn trace_ctx_loss_fires_only_inside_retry_closures() {
        let bad = r#"
fn fetch(&self) -> Result<Value> {
    self.resilience.run_idempotent(|deadline, attempt| {
        let ctx = obs::TraceContext::new_root();
        self.round_trip(ctx)
    })
}
"#;
        let fs = run(bad, trace_ctx_loss);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("run_idempotent"));

        let good = r#"
fn fetch(&self) -> Result<Value> {
    let ctx = obs::TraceContext::new_root();
    self.resilience.run_idempotent(|deadline, attempt| self.round_trip(ctx))
}
"#;
        assert!(run(good, trace_ctx_loss).is_empty());
    }

    #[test]
    fn reactor_block_gates_on_outbox_in_signature() {
        // The legacy thread-per-connection loop may sleep; the reactor
        // callback with the same body must not.
        let legacy = r#"
fn serve(&mut self, stream: &mut TcpStream, d: Duration) {
    std::thread::sleep(d);
}
"#;
        assert!(run(legacy, blocking_in_reactor).is_empty());

        let callback = r#"
fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut reactor::Outbox) {
    std::thread::sleep(self.stall);
    out.send(inbuf.split_off(0));
}
"#;
        let fs = run(callback, blocking_in_reactor);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("sleep"));
        assert!(fs[0].message.contains("on_data"));
    }

    #[test]
    fn reactor_block_exempts_in_memory_codec_helpers() {
        let src = r#"
fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut reactor::Outbox) {
    let mut cursor = inbuf.as_slice();
    let frame = read_value(&mut cursor);
    let mut wire = Vec::new();
    let _ = write_frame(&mut wire, &frame);
    out.delay(self.stall);
    out.send(wire);
}
"#;
        assert!(run(src, blocking_in_reactor).is_empty());
    }

    #[test]
    fn reactor_block_flags_guard_across_await() {
        let bad = r#"
fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut Outbox) {
    let g = self.state.lock();
    self.notify(&g).await;
    out.send(g.render());
}
"#;
        let fs = run(bad, blocking_in_reactor);
        assert_eq!(fs.len(), 1, "{fs:?}");
        assert!(fs[0].message.contains("`g`"));
        assert!(fs[0].message.contains("await"));

        let good = r#"
fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut Outbox) {
    let rendered = {
        let g = self.state.lock();
        g.render()
    };
    self.notify(&rendered).await;
    out.send(rendered);
}
"#;
        assert!(run(good, blocking_in_reactor).is_empty());
    }

    #[test]
    fn unsafe_rules() {
        let toks = lex("fn f() { unsafe { x() } }");
        assert_eq!(unsafe_allowlist("a.rs", &toks, false).len(), 1);
        assert_eq!(unsafe_allowlist("a.rs", &toks, true).len(), 1);
        let toks = lex("fn f() { // SAFETY: checked above\n unsafe { x() } }");
        assert!(unsafe_allowlist("a.rs", &toks, true).is_empty());
    }
}
