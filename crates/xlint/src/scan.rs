//! Structural passes over the token stream: function spans, `#[cfg(test)]`
//! regions, and the `// xlint: ...` control-comment grammar (suppressions
//! and idempotency markers).

use crate::lexer::{Kind, Tok};

/// A function's token span inside a file's token stream.
#[derive(Debug)]
pub struct FnSpan {
    /// Function name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Index of the `fn` keyword itself; `head_start..body_start` is the
    /// signature (name, generics, parameter list, return type).
    pub head_start: usize,
    /// Index of the body's opening `{` in the token stream.
    pub body_start: usize,
    /// Index one past the body's closing `}`.
    pub body_end: usize,
    /// Parameter names (identifier patterns only).
    pub params: Vec<String>,
    /// Inside a `#[cfg(test)]` module or carrying `#[test]`.
    pub is_test: bool,
}

/// Find the index one past the token matching the opener at `open_idx`.
/// `toks[open_idx]` must be the opening delimiter. Comments are skipped for
/// depth accounting but included in the range.
pub fn match_delim(toks: &[Tok], open_idx: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut i = open_idx;
    while i < toks.len() {
        if toks[i].is_punct(open) {
            depth += 1;
        } else if toks[i].is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Token index ranges that belong to `#[cfg(test)] mod … { … }` blocks.
fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // Match `# [ cfg ( test ) ]` allowing arbitrary cfg expressions that
        // contain the ident `test` (covers `cfg(all(test, …))`).
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_end = match_delim(toks, i + 1, '[', ']');
            let attr = &toks[i + 1..attr_end];
            let is_cfg_test =
                attr.iter().any(|t| t.is_ident("cfg")) && attr.iter().any(|t| t.is_ident("test"));
            if is_cfg_test {
                // Find what the attribute decorates; if it's a mod with a
                // body, the whole body is a test region. If it's a fn, the
                // fn-span pass handles it via `#[test]`-style detection.
                let mut j = attr_end;
                while j < toks.len() && toks[j].is_comment() {
                    j += 1;
                }
                if toks
                    .get(j)
                    .is_some_and(|t| t.is_ident("mod") || t.is_ident("pub"))
                {
                    // Skip to the `{` of the mod body.
                    while j < toks.len() && !toks[j].is_punct('{') && !toks[j].is_punct(';') {
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|t| t.is_punct('{')) {
                        let end = match_delim(toks, j, '{', '}');
                        out.push((j, end));
                        i = end;
                        continue;
                    }
                }
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    out
}

/// Was the item starting near `idx` preceded by a `#[test]`-ish attribute?
fn has_test_attr(toks: &[Tok], fn_idx: usize) -> bool {
    // Walk backwards over comments/attributes/visibility directly before
    // the `fn` keyword.
    let mut i = fn_idx;
    let mut budget = 40; // attributes are short; don't scan the whole file
    while i > 0 && budget > 0 {
        budget -= 1;
        i -= 1;
        let t = &toks[i];
        if t.is_comment() || t.is_ident("pub") || t.is_ident("crate") {
            continue;
        }
        if t.is_punct(']') {
            // Scan back to the matching `[` and its `#`.
            let mut depth = 1;
            let mut j = i;
            while j > 0 && depth > 0 {
                j -= 1;
                if toks[j].is_punct(']') {
                    depth += 1;
                } else if toks[j].is_punct('[') {
                    depth -= 1;
                }
            }
            let attr = &toks[j..=i];
            if attr
                .iter()
                .any(|t| t.is_ident("test") || t.is_ident("bench"))
            {
                return true;
            }
            i = j;
            if i > 0 && toks[i - 1].is_punct('#') {
                i -= 1;
            }
            continue;
        }
        return false;
    }
    false
}

/// Extract all function spans from the token stream.
pub fn fn_spans(toks: &[Tok]) -> Vec<FnSpan> {
    let regions = test_regions(toks);
    let in_test_region = |idx: usize| regions.iter().any(|&(s, e)| idx >= s && idx < e);
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // Name must be an identifier (excludes `fn(..)` pointer types).
        let Some(name_tok) = toks.get(i + 1) else {
            break;
        };
        if name_tok.kind != Kind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let line = toks[i].line;
        // Find the parameter list `(` — may be preceded by generics `<...>`.
        let mut j = i + 2;
        if toks.get(j).is_some_and(|t| t.is_punct('<')) {
            let mut depth = 0usize;
            while j < toks.len() {
                if toks[j].is_punct('<') {
                    depth += 1;
                } else if toks[j].is_punct('>') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if !toks.get(j).is_some_and(|t| t.is_punct('(')) {
            i += 1;
            continue;
        }
        let params_end = match_delim(toks, j, '(', ')');
        let params = param_names(&toks[j..params_end]);
        // Seek the body `{` or a trait-decl `;` at angle/paren depth 0.
        let mut k = params_end;
        let mut body_start = None;
        while k < toks.len() {
            if toks[k].is_punct('{') {
                body_start = Some(k);
                break;
            }
            if toks[k].is_punct(';') {
                break;
            }
            k += 1;
        }
        let Some(body_start) = body_start else {
            i = k + 1;
            continue;
        };
        let body_end = match_delim(toks, body_start, '{', '}');
        let is_test = in_test_region(i) || has_test_attr(toks, i);
        out.push(FnSpan {
            name,
            line,
            head_start: i,
            body_start,
            body_end,
            params,
            is_test,
        });
        // Continue scanning *inside* the body too (nested fns) — the caller
        // deduplicates findings reported from overlapping spans.
        i += 2;
    }
    out
}

/// Identifier patterns in a parameter list token slice (includes the parens).
fn param_names(toks: &[Tok]) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('<') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('>') || t.is_punct('}') {
            depth = depth.saturating_sub(1);
        } else if depth == 1
            && t.kind == Kind::Ident
            && toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && !toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            && !t.is_ident("self")
        {
            // A parameter name starts a `name: Type` pair right after `(`
            // or `,` (optionally via `mut`); idents mid-type such as the
            // `std` of `impl std::io::Read` don't qualify.
            let mut p = i;
            let prev_ok = loop {
                if p == 0 {
                    break false;
                }
                p -= 1;
                let pt = &toks[p];
                if pt.is_comment() || pt.is_ident("mut") {
                    continue;
                }
                break pt.is_punct('(') || pt.is_punct(',');
            };
            if prev_ok {
                out.push(t.text.clone());
            }
        }
        i += 1;
    }
    out
}

/// One parsed `// xlint: …` control comment.
#[derive(Debug, Clone)]
pub struct Control {
    /// Source line of the comment.
    pub line: usize,
    /// `allow` rule name, or `"idempotent"` for markers.
    pub verb: String,
    /// Rule name for `allow(<rule>)`; empty for `idempotent`.
    pub rule: String,
    /// The `reason="…"` payload, if present.
    pub reason: Option<String>,
    /// Consumed by a finding (suppressions) or a loop (markers).
    pub used: std::cell::Cell<bool>,
}

/// Parse every `xlint:` control comment in the token stream.
///
/// Grammar (inside any comment):
///   `xlint: allow(<rule>) reason="<text>"`
///   `xlint: idempotent reason="<text>"`
///   `xlint: lock-order(<a> -> <b>) reason="<text>"`
pub fn controls(toks: &[Tok]) -> Vec<Control> {
    let mut out = Vec::new();
    for t in toks.iter().filter(|t| t.is_comment()) {
        let Some(pos) = t.text.find("xlint:") else {
            continue;
        };
        let rest = t.text[pos + "xlint:".len()..].trim_start();
        let reason = rest.find("reason=\"").and_then(|r| {
            let tail = &rest[r + "reason=\"".len()..];
            tail.find('"').map(|q| tail[..q].to_string())
        });
        if let Some(args) = rest.strip_prefix("allow(") {
            if let Some(close) = args.find(')') {
                out.push(Control {
                    line: t.line,
                    verb: "allow".to_string(),
                    rule: args[..close].trim().to_string(),
                    reason,
                    used: std::cell::Cell::new(false),
                });
            }
        } else if let Some(args) = rest.strip_prefix("lock-order(") {
            // A declared lock order: the `rule` field carries the
            // `a -> b` body verbatim; the lock-order pass matches it
            // against observed nested acquisitions.
            if let Some(close) = args.find(')') {
                out.push(Control {
                    line: t.line,
                    verb: "lock-order".to_string(),
                    rule: args[..close].trim().to_string(),
                    reason,
                    used: std::cell::Cell::new(false),
                });
            }
        } else if rest.starts_with("idempotent") {
            out.push(Control {
                line: t.line,
                verb: "idempotent".to_string(),
                rule: String::new(),
                reason,
                used: std::cell::Cell::new(false),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn finds_functions_and_params() {
        let toks = lex(
            "impl Foo { pub fn bar(&self, len: usize, n: u32) -> u8 { len as u8 } }\n\
             fn free<T: Clone>(x: T) {}",
        );
        let fns = fn_spans(&toks);
        assert_eq!(fns.len(), 2);
        assert_eq!(fns[0].name, "bar");
        assert_eq!(fns[0].params, ["len", "n"]);
        assert_eq!(fns[1].name, "free");
        assert_eq!(fns[1].params, ["x"]);
    }

    #[test]
    fn cfg_test_mod_marks_fns_as_test() {
        let toks = lex(
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() {}\n    fn helper() {}\n}",
        );
        let fns = fn_spans(&toks);
        let by_name = |n: &str| fns.iter().find(|f| f.name == n).unwrap();
        assert!(!by_name("prod").is_test);
        assert!(by_name("t").is_test);
        assert!(by_name("helper").is_test);
    }

    #[test]
    fn fn_pointer_types_are_not_functions() {
        let toks = lex("type F = fn(usize) -> u8; fn real(cb: fn() -> u8) {}");
        let fns = fn_spans(&toks);
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn parses_controls() {
        let toks = lex("// xlint: allow(panic-path) reason=\"startup only\"\n\
             let x = 1; // xlint: idempotent reason=\"GET is safe\"\n\
             // xlint: allow(wire-arith)\n");
        let cs = controls(&toks);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].rule, "panic-path");
        assert_eq!(cs[0].reason.as_deref(), Some("startup only"));
        assert_eq!(cs[1].verb, "idempotent");
        assert_eq!(cs[1].line, 2);
        assert_eq!(cs[2].rule, "wire-arith");
        assert!(cs[2].reason.is_none());
    }
}
