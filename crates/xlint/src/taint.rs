//! `wire-taint`: inter-procedural taint from wire-derived integers to
//! allocation sites and unchecked casts.
//!
//! Seeds are the frame-parser reads (`parse`, `from_le_bytes`,
//! `from_str_radix`, ... — the same [`rules::TAINT_SOURCES`] list
//! `wire-arith` uses) in the parser/framer files named by
//! [`Policy::taint_seed_applies`]. Taint then flows three ways:
//!
//! * through `let` bindings inside a function (the `wire-arith` model);
//! * into a callee's parameter when a tainted value is passed as an
//!   argument (via the resolved call graph);
//! * out of a callee whose return region is tainted, into the caller's
//!   binding.
//!
//! A finding fires when a tainted value reaches `with_capacity`/`reserve`/
//! `vec![_; n]`/`take(n)…read_to_end` or an `as usize` cast without a
//! preceding checked bound (`try_from`, `checked_*`, `saturating_*`,
//! `.min`/`.clamp`, or an explicit `<`/`>` comparison). Intra-function
//! cases inside the `wire-arith` parser files stay that rule's job; this
//! pass reports the cross-function flows (and intra-function flows in
//! files `wire-arith` does not cover, e.g. the rpc framers). Every message
//! names both the seed site and the sink site.

use crate::callgraph::CallGraph;
use crate::config::Policy;
use crate::lexer::{Kind, Tok};
use crate::model::{FileData, Model};
use crate::report::Finding;
use crate::rules::{self, is_call, is_method_call, next_nc, parse_let, prev_nc};
use crate::scan::match_delim;
use std::collections::BTreeMap;

/// Where a tainted value was first read off the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Origin {
    /// Seeding function index.
    pub seed_fn: usize,
    /// Workspace-relative file of the seed read.
    pub file: String,
    pub line: usize,
    /// The seeding source call (`parse`, `from_le_bytes`, ...).
    pub source: String,
}

/// Calls that bound a value; a tainted name passing through one (or
/// compared with `<`/`>`) is considered checked from that token on.
const SANITIZERS: &[&str] = &[
    "try_from",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "min",
    "clamp",
];

/// Allocation-style sink calls taking a size argument.
const ALLOC_SINKS: &[&str] = &["with_capacity", "reserve", "reserve_exact"];

fn fn_scope<'a>(files: &'a [FileData], model: &Model, fi: usize) -> (&'a FileData, &'a [Tok]) {
    let fd = &files[model.fns[fi].file];
    (fd, &fd.toks)
}

/// Is the mention at `i` only used for its size (`name.len()`,
/// `name.is_empty()`)? The collection already exists in memory, so its
/// length is a safe bound — allocating `with_capacity(buf.len())` cannot
/// exceed what was already read.
fn is_len_projection(toks: &[Tok], i: usize) -> bool {
    next_nc(toks, i).is_some_and(|t| t.is_punct('.'))
        && (i + 1..toks.len())
            .find(|&j| toks[j].kind == Kind::Ident)
            .is_some_and(|j| toks[j].is_ident("len") || toks[j].is_ident("is_empty"))
}

/// Is the punct at `i` a binary mask/modulo (`x & MASK`, `x % cap`)? Both
/// bound the result, so an initializer containing one is sanitized. A `&`
/// with no value-shaped left operand is a reference, not a mask.
fn is_mask_op(toks: &[Tok], i: usize) -> bool {
    let t = &toks[i];
    if !(t.is_punct('&') || t.is_punct('%')) {
        return false;
    }
    if toks.get(i + 1).is_some_and(|n| n.is_punct('&')) || (i > 0 && toks[i - 1].is_punct('&')) {
        return false; // `&&`
    }
    prev_nc(toks, i).is_some_and(|p| {
        p.kind == Kind::Ident || p.kind == Kind::Num || p.is_punct(')') || p.is_punct(']')
    })
}

/// First plain value mention of `name` in `toks[range]` (not a method
/// name, not a `.len()` projection).
fn mention_index(toks: &[Tok], range: (usize, usize), name: &str) -> Option<usize> {
    (range.0..range.1.min(toks.len())).find(|&i| {
        toks[i].is_ident(name) && !is_method_call(toks, i) && !is_len_projection(toks, i)
    })
}

fn mentions(toks: &[Tok], range: (usize, usize), name: &str) -> bool {
    mention_index(toks, range, name).is_some()
}

/// Per-name token index of the first bounds check inside a body.
fn check_index(toks: &[Tok], body: (usize, usize), name: &str) -> Option<usize> {
    for i in body.0..body.1 {
        if !toks[i].is_ident(name) {
            continue;
        }
        // `name < limit`, `limit > name`, `name <= limit`, ...
        let adj_cmp = |t: &Tok| t.is_punct('<') || t.is_punct('>');
        if next_nc(toks, i).is_some_and(adj_cmp) || prev_nc(toks, i).is_some_and(adj_cmp) {
            return Some(i);
        }
        // `name.min(..)` / `name.checked_mul(..)` receiver position.
        if next_nc(toks, i).is_some_and(|t| t.is_punct('.')) {
            if let Some(m) = (i + 1..body.1).find(|&j| toks[j].kind == Kind::Ident) {
                if SANITIZERS.contains(&toks[m].text.as_str()) {
                    return Some(i);
                }
            }
        }
    }
    // `usize::try_from(name)` / `cap.min(name)` argument position.
    for i in body.0..body.1 {
        if toks[i].kind == Kind::Ident
            && SANITIZERS.contains(&toks[i].text.as_str())
            && is_call(toks, i)
        {
            if let Some(open) = (i + 1..body.1).find(|&j| toks[j].is_punct('(')) {
                let close = match_delim(toks, open, '(', ')');
                if mentions(toks, (open, close), name) {
                    return Some(i);
                }
            }
        }
    }
    None
}

/// Compute the locally-tainted names of one function from its seeds,
/// injected parameter taint, and the return taint of resolved callees.
fn local_taint(
    files: &[FileData],
    model: &Model,
    graph: &CallGraph,
    policy: &Policy,
    fi: usize,
    param_taint: &[Option<Origin>],
    rets: &[Option<Origin>],
) -> BTreeMap<String, Origin> {
    let f = &model.fns[fi];
    let (fd, toks) = fn_scope(files, model, fi);
    let seed_scope = policy.taint_seed_applies(&fd.path);
    let mut tainted: BTreeMap<String, Origin> = BTreeMap::new();
    for (pi, p) in f.params.iter().enumerate() {
        if let Some(o) = param_taint.get(pi).and_then(|o| o.as_ref()) {
            tainted.insert(p.clone(), o.clone());
        }
    }
    // Two passes over the `let`s, as in `wire-arith`, to settle ordering.
    for _ in 0..2 {
        let mut i = f.body.0;
        while i < f.body.1 {
            if f.in_nested(i) || !toks[i].is_ident("let") {
                i += 1;
                continue;
            }
            let Some(stmt) = parse_let(toks, i, f.body.1) else {
                i += 1;
                continue;
            };
            let rhs = (stmt.rhs.0, stmt.rhs.1);
            let rhs_toks = &toks[rhs.0..rhs.1];
            let sanitized = rhs_toks.iter().enumerate().any(|(off, t)| {
                (t.kind == Kind::Ident && SANITIZERS.contains(&t.text.as_str()))
                    || is_mask_op(rhs_toks, off)
            });
            if sanitized {
                i = stmt.end.max(i + 1);
                continue;
            }
            let mut origin: Option<Origin> = None;
            // Direct seed read in the initializer.
            if seed_scope {
                if let Some(off) = rhs_toks.iter().position(|t| {
                    t.kind == Kind::Ident && rules::TAINT_SOURCES.contains(&t.text.as_str())
                }) {
                    origin = Some(Origin {
                        seed_fn: fi,
                        file: fd.path.clone(),
                        line: rhs_toks[off].line,
                        source: rhs_toks[off].text.clone(),
                    });
                }
            }
            // Tainted name used in the initializer — unless a bounds check
            // on that name precedes this statement, or the mention sits in
            // the argument list of a *resolved* call (then taint flows into
            // the callee's params and back out via its return taint, which
            // the next branch handles; the callee may bound the value).
            if origin.is_none() {
                let resolved_args: Vec<(usize, usize)> = f
                    .calls
                    .iter()
                    .enumerate()
                    .filter(|(ci, c)| {
                        c.tok >= rhs.0 && c.tok < rhs.1 && !graph.callees[fi][*ci].is_empty()
                    })
                    .flat_map(|(_, c)| arg_ranges(toks, c.tok, rhs.1))
                    .collect();
                origin = rhs_toks
                    .iter()
                    .enumerate()
                    .find_map(|(off, t)| {
                        let g = rhs.0 + off;
                        (t.kind == Kind::Ident
                            && !is_method_call(rhs_toks, off)
                            && !is_len_projection(rhs_toks, off)
                            && tainted.contains_key(&t.text)
                            && !resolved_args.iter().any(|&(s, e)| g >= s && g < e)
                            && check_index(toks, f.body, &t.text).is_none_or(|chk| chk >= rhs.0))
                        .then(|| tainted.get(&t.text))
                        .flatten()
                    })
                    .cloned();
            }
            // Call in the initializer whose return is tainted.
            if origin.is_none() {
                origin = f
                    .calls
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.tok >= rhs.0 && c.tok < rhs.1)
                    .find_map(|(ci, _)| {
                        graph.callees[fi][ci]
                            .iter()
                            .find_map(|&callee| rets[callee].clone())
                    });
            }
            if let Some(o) = origin {
                for b in &stmt.bindings {
                    tainted.entry(b.clone()).or_insert_with(|| o.clone());
                }
            }
            i = stmt.end.max(i + 1);
        }
    }
    tainted
}

/// The return region of a body: every `return <expr>;` plus the tail
/// expression after the last depth-1 `;`.
fn return_regions(toks: &[Tok], body: (usize, usize)) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut last_semi = body.0;
    for i in body.0..body.1 {
        let t = &toks[i];
        if t.is_punct('{') || t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct('}') || t.is_punct(')') || t.is_punct(']') {
            depth = depth.saturating_sub(1);
        } else if depth == 1 && t.is_punct(';') {
            last_semi = i;
        } else if t.is_ident("return") {
            let end = (i + 1..body.1)
                .find(|&j| toks[j].is_punct(';'))
                .unwrap_or(body.1);
            out.push((i + 1, end));
        }
    }
    if last_semi + 1 < body.1 {
        out.push((last_semi + 1, body.1.saturating_sub(1)));
    }
    out
}

/// Does this function return a tainted value, and from which origin?
fn return_taint(
    files: &[FileData],
    model: &Model,
    graph: &CallGraph,
    policy: &Policy,
    fi: usize,
    tainted: &BTreeMap<String, Origin>,
    rets: &[Option<Origin>],
) -> Option<Origin> {
    let f = &model.fns[fi];
    let (fd, toks) = fn_scope(files, model, fi);
    let regions = return_regions(toks, f.body);
    for &(s, e) in &regions {
        // A tainted local flowing out...
        for (name, o) in tainted {
            if mentions(toks, (s, e), name) && check_index(toks, f.body, name).is_none() {
                return Some(o.clone());
            }
        }
        // ...or a direct seed read in the return expression...
        if policy.taint_seed_applies(&fd.path) {
            for i in s..e.min(toks.len()) {
                if toks[i].kind == Kind::Ident
                    && rules::TAINT_SOURCES.contains(&toks[i].text.as_str())
                    && is_call(toks, i)
                {
                    return Some(Origin {
                        seed_fn: fi,
                        file: fd.path.clone(),
                        line: toks[i].line,
                        source: toks[i].text.clone(),
                    });
                }
            }
        }
        // ...or a tail call into a function with a tainted return.
        for (ci, c) in f.calls.iter().enumerate() {
            if c.tok >= s && c.tok < e {
                if let Some(o) = graph.callees[fi][ci]
                    .iter()
                    .find_map(|&callee| rets[callee].clone())
                {
                    return Some(o);
                }
            }
        }
    }
    None
}

/// Argument slices of the call whose ident is at `call_tok`.
fn arg_ranges(toks: &[Tok], call_tok: usize, limit: usize) -> Vec<(usize, usize)> {
    let Some(open) = (call_tok + 1..limit).find(|&j| !toks[j].is_comment()) else {
        return Vec::new();
    };
    if !toks[open].is_punct('(') {
        return Vec::new();
    }
    let close = match_delim(toks, open, '(', ')').saturating_sub(1);
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = open + 1;
    for (i, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') || t.is_punct('<') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') || t.is_punct('>') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct(',') {
            out.push((start, i));
            start = i + 1;
        }
    }
    if start < close {
        out.push((start, close));
    } else if start == open + 1 && close > open + 1 {
        out.push((open + 1, close));
    }
    out
}

/// Run the pass: fixpoint propagation, then sink reporting.
pub fn wire_taint(
    files: &[FileData],
    model: &Model,
    graph: &CallGraph,
    policy: &Policy,
) -> Vec<Finding> {
    let n = model.fns.len();
    let mut param_taint: Vec<Vec<Option<Origin>>> = model
        .fns
        .iter()
        .map(|f| vec![None; f.params.len()])
        .collect();
    let mut rets: Vec<Option<Origin>> = vec![None; n];

    let applies = |fi: usize| {
        let f = &model.fns[fi];
        let path = &files[f.file].path;
        !f.is_test && (policy.general_rules_apply(path) || policy.wire_arith_applies(path))
    };

    // Monotone fixpoint: parameter and return taint are only ever set,
    // never cleared, so this terminates in O(params + fns) rounds.
    loop {
        let mut changed = false;
        for fi in 0..n {
            if !applies(fi) {
                continue;
            }
            let local = local_taint(files, model, graph, policy, fi, &param_taint[fi], &rets);
            if rets[fi].is_none() {
                if let Some(o) = return_taint(files, model, graph, policy, fi, &local, &rets) {
                    rets[fi] = Some(o);
                    changed = true;
                }
            }
            let f = &model.fns[fi];
            let (fd, toks) = fn_scope(files, model, fi);
            let seed_scope = policy.taint_seed_applies(&fd.path);
            for (ci, c) in f.calls.iter().enumerate() {
                if graph.callees[fi][ci].is_empty() {
                    continue;
                }
                for (argi, range) in arg_ranges(toks, c.tok, f.body.1).into_iter().enumerate() {
                    let mut origin = local.iter().find_map(|(name, o)| {
                        (mentions(toks, range, name)
                            && check_index(toks, f.body, name).is_none_or(|chk| chk >= range.0))
                        .then(|| o.clone())
                    });
                    if origin.is_none() && seed_scope {
                        origin = (range.0..range.1).find_map(|i| {
                            (toks[i].kind == Kind::Ident
                                && rules::TAINT_SOURCES.contains(&toks[i].text.as_str())
                                && is_call(toks, i))
                            .then(|| Origin {
                                seed_fn: fi,
                                file: fd.path.clone(),
                                line: toks[i].line,
                                source: toks[i].text.clone(),
                            })
                        });
                    }
                    // A tainted-return call sitting directly in argument
                    // position: `sink_fn(parse_len(h))`.
                    if origin.is_none() {
                        origin = f
                            .calls
                            .iter()
                            .enumerate()
                            .filter(|(_, c2)| c2.tok >= range.0 && c2.tok < range.1)
                            .find_map(|(ci2, _)| {
                                graph.callees[fi][ci2]
                                    .iter()
                                    .find_map(|&cal| rets[cal].clone())
                            });
                    }
                    let Some(origin) = origin else { continue };
                    for &callee in &graph.callees[fi][ci] {
                        if applies(callee)
                            && argi < param_taint[callee].len()
                            && param_taint[callee][argi].is_none()
                        {
                            param_taint[callee][argi] = Some(origin.clone());
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Reporting: sinks on tainted names. Intra-function flows are left to
    // `wire-arith` in the files it covers.
    let mut out = Vec::new();
    for (fi, ptaint) in param_taint.iter().enumerate() {
        if !applies(fi) {
            continue;
        }
        let local = local_taint(files, model, graph, policy, fi, ptaint, &rets);
        if local.is_empty() {
            continue;
        }
        let f = &model.fns[fi];
        let (fd, toks) = fn_scope(files, model, fi);
        let reportable = |o: &Origin| o.seed_fn != fi || !policy.wire_arith_applies(&fd.path);
        let mut sink = |name: &str, o: &Origin, line: usize, what: &str| {
            if !reportable(o) {
                return;
            }
            out.push(Finding::new(
                rules::WIRE_TAINT,
                &fd.path,
                line,
                format!(
                    "wire-derived `{name}` (read via `{}` at {}:{}) reaches {what} at {}:{line} \
                     without a checked bound; clamp or `usize::try_from` it first",
                    o.source, o.file, o.line, fd.path
                ),
            ));
        };
        for (name, o) in &local {
            let checked_at = check_index(toks, f.body, name);
            let is_clean = |tok: usize| checked_at.is_some_and(|chk| chk < tok);
            // A mention is bounded if the first check on the name sits at or
            // before it — this credits in-argument clamps like
            // `reserve(n.min(CAP))`, where the check *is* the mention.
            let mention_clean = |m: usize| checked_at.is_some_and(|chk| chk <= m);
            let mut i = f.body.0;
            while i + 1 < f.body.1 {
                i += 1;
                if f.in_nested(i) || toks[i].kind != Kind::Ident {
                    continue;
                }
                let t = &toks[i];
                // Allocation sinks: `with_capacity(name)`, `reserve(name)`.
                if ALLOC_SINKS.contains(&t.text.as_str()) && is_call(toks, i) {
                    for range in arg_ranges(toks, i, f.body.1) {
                        if let Some(m) = mention_index(toks, range, name) {
                            if !mention_clean(m) {
                                sink(name, o, t.line, &format!("`{}`", t.text));
                            }
                        }
                    }
                    continue;
                }
                // `vec![0; name]`.
                if t.is_ident("vec") && next_nc(toks, i).is_some_and(|n| n.is_punct('!')) {
                    if let Some(open) =
                        (i + 1..f.body.1).find(|&j| toks[j].is_punct('[') || toks[j].is_punct('('))
                    {
                        let (oc, cc) = if toks[open].is_punct('[') {
                            ('[', ']')
                        } else {
                            ('(', ')')
                        };
                        let close = match_delim(toks, open, oc, cc);
                        let semi = (open..close).find(|&j| toks[j].is_punct(';'));
                        if let Some(semi) = semi {
                            if let Some(m) = mention_index(toks, (semi, close), name) {
                                if !mention_clean(m) {
                                    sink(name, o, t.line, "`vec![_; n]`");
                                }
                            }
                        }
                    }
                    continue;
                }
                // `.take(name)` feeding `read_to_end`.
                if t.is_ident("take") && is_method_call(toks, i) {
                    let stmt_end = (i..f.body.1)
                        .find(|&j| toks[j].is_punct(';'))
                        .unwrap_or(f.body.1);
                    let fed = (i..stmt_end).any(|j| toks[j].is_ident("read_to_end"));
                    for range in arg_ranges(toks, i, f.body.1) {
                        if let Some(m) = mention_index(toks, range, name) {
                            if fed && !mention_clean(m) {
                                sink(name, o, t.line, "`take(n).read_to_end`");
                            }
                        }
                    }
                    continue;
                }
                // `name as usize`.
                if t.is_ident(name)
                    && !is_method_call(toks, i)
                    && next_nc(toks, i).is_some_and(|nx| nx.is_ident("as"))
                {
                    let as_idx = (i + 1..f.body.1).find(|&j| toks[j].is_ident("as"));
                    if as_idx
                        .and_then(|a| next_nc(toks, a))
                        .is_some_and(|ty| ty.is_ident("usize"))
                        && !is_clean(i)
                    {
                        sink(name, o, t.line, "an `as usize` cast");
                    }
                }
            }
        }
    }
    out
}
