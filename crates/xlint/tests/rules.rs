//! Fixture corpus: for every rule, a *bad* fixture that must fire and a
//! *good* fixture (the corrected idiom actually used in the workspace) that
//! must stay clean. The bad fixtures are distilled from real defects this
//! repo has shipped and fixed — PR 2's unchecked cursor arithmetic,
//! retry-after-flush replay, and lock-scope leakage among them — so the
//! corpus doubles as a regression suite for the linter itself.
//!
//! Fixtures are fed through [`xlint::check_source`] under *virtual* paths
//! (e.g. `crates/cloudstore/src/batch.rs`) so the scope policy resolves
//! exactly as it does in a real workspace walk; nothing here touches disk,
//! and the walker skips `crates/xlint/` so these snippets can never trip CI.

use xlint::check_source;
use xlint::config::Policy;

/// Active (unsuppressed) rule names fired on `src` under virtual `path`.
fn fired(path: &str, src: &str) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = check_source(path, src, &Policy)
        .into_iter()
        .filter(|f| f.suppressed.is_none())
        .map(|f| f.rule)
        .collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

fn assert_fires(rule: &str, path: &str, src: &str) {
    let rules = fired(path, src);
    assert!(
        rules.contains(&rule),
        "expected {rule} to fire on {path}, got {rules:?}\n--- fixture ---\n{src}"
    );
}

fn assert_clean(path: &str, src: &str) {
    let rules = fired(path, src);
    assert!(
        rules.is_empty(),
        "expected no findings on {path}, got {rules:?}\n--- fixture ---\n{src}"
    );
}

const PARSER: &str = "crates/cloudstore/src/batch.rs";
const WIRE: &str = "crates/miniredis/src/resp.rs";
const CLIENT: &str = "crates/miniredis/src/client.rs";
const SERVER: &str = "crates/cloudstore/src/server.rs";
const GENERAL: &str = "crates/cache/src/lru.rs";

// ---------------------------------------------------------------- wire-arith

/// PR 2 regression: the batch cursor advanced with bare `+` on a
/// wire-supplied length, so a hostile header could overflow and alias.
#[test]
fn wire_arith_fires_on_unchecked_cursor_advance() {
    assert_fires(
        "wire-arith",
        PARSER,
        r#"
fn bytes(buf: &[u8], pos: usize, header: &str) -> usize {
    let len: usize = header.parse().unwrap_or(0);
    let end = pos + len;
    end
}
"#,
    );
}

#[test]
fn wire_arith_fires_on_as_usize_of_wire_integer() {
    assert_fires(
        "wire-arith",
        WIRE,
        r#"
fn bulk_len(line: &str) -> usize {
    let n = i64::from_str_radix(line, 10).unwrap_or(-1);
    n as usize
}
"#,
    );
}

#[test]
fn wire_arith_fires_on_multiply_of_decoded_count() {
    assert_fires(
        "wire-arith",
        PARSER,
        r#"
fn alloc(hdr: [u8; 4]) -> usize {
    let count = u32::from_le_bytes(hdr);
    let count = count as usize;
    count * 64
}
"#,
    );
}

/// The corrected idiom: checked/saturating ops and `usize::try_from`.
#[test]
fn wire_arith_clean_on_checked_arithmetic() {
    assert_clean(
        PARSER,
        r#"
fn bytes(buf: &[u8], pos: usize, header: &str) -> Option<usize> {
    let len: usize = header.parse().ok()?;
    let end = pos.checked_add(len)?;
    buf.get(pos..end)?;
    Some(end)
}
"#,
    );
}

/// The same bare `+` outside a parser file is not wire-reachable.
#[test]
fn wire_arith_scoped_to_parser_files() {
    assert_clean(
        GENERAL,
        r#"
fn bump(pos: usize, len_str: &str) -> usize {
    let len: usize = len_str.parse().unwrap_or(0);
    pos + len
}
"#,
    );
}

// ---------------------------------------------------------------- panic-path

#[test]
fn panic_path_fires_on_unwrap_in_handler() {
    assert_fires(
        "panic-path",
        SERVER,
        r#"
fn handle(req: Option<&str>) -> String {
    let verb = req.unwrap();
    verb.to_string()
}
"#,
    );
}

#[test]
fn panic_path_fires_on_slice_indexing() {
    assert_fires(
        "panic-path",
        CLIENT,
        r#"
fn first_arg(parts: &[String]) -> String {
    parts[0].clone()
}
"#,
    );
}

#[test]
fn panic_path_fires_on_panicking_macro() {
    assert_fires(
        "panic-path",
        SERVER,
        r#"
fn dispatch(cmd: &str) -> u8 {
    match cmd {
        "GET" => 1,
        _ => unreachable!("bad verb"),
    }
}
"#,
    );
}

/// The corrected idiom: `get`/`let-else`/error returns.
#[test]
fn panic_path_clean_on_fallible_idiom() {
    assert_clean(
        SERVER,
        r#"
fn handle(req: Option<&str>) -> Result<String, String> {
    let Some(verb) = req else {
        return Err("empty request".to_string());
    };
    Ok(verb.to_string())
}
"#,
    );
}

/// Unwraps in `#[test]` code are fine even in scoped files.
#[test]
fn panic_path_ignores_test_functions() {
    assert_clean(
        SERVER,
        r#"
#[test]
fn roundtrip() {
    let v: Option<u8> = Some(1);
    assert_eq!(v.unwrap(), 1);
}
"#,
    );
}

// ----------------------------------------------------------- guard-across-io

/// PR 2 regression: the persist path loaded a snapshot file while holding
/// the db lock, stalling every connection behind disk I/O.
#[test]
fn guard_across_io_fires_on_named_guard_over_file_load() {
    assert_fires(
        "guard-across-io",
        GENERAL,
        r#"
fn start(db: &Mutex<Db>, path: &Path) -> Result<()> {
    let mut g = db.lock();
    let entries = load(path)?;
    g.extend(entries);
    Ok(())
}
"#,
    );
}

#[test]
fn guard_across_io_fires_on_guard_over_socket_write() {
    assert_fires(
        "guard-across-io",
        GENERAL,
        r#"
fn flush_stats(stats: &RwLock<Stats>, conn: &mut TcpStream) -> Result<()> {
    let snapshot = stats.read();
    conn.write_all(snapshot.render().as_bytes())?;
    Ok(())
}
"#,
    );
}

/// The corrected idiom: copy out under the lock, do I/O after the guard
/// drops (explicitly or by scope).
#[test]
fn guard_across_io_clean_when_guard_dropped_first() {
    assert_clean(
        GENERAL,
        r#"
fn flush_stats(stats: &RwLock<Stats>, conn: &mut TcpStream) -> Result<()> {
    let rendered = {
        let snapshot = stats.read();
        snapshot.render()
    };
    conn.write_all(rendered.as_bytes())?;
    Ok(())
}

fn save_under_lock_released(db: &Mutex<Db>, path: &Path) -> Result<()> {
    let g = db.lock();
    let dump = g.serialize();
    drop(g);
    save(path, &dump)
}
"#,
    );
}

// -------------------------------------------------------- retry-idempotency

/// PR 2 regression: minisql's client retried after the request frame was
/// already flushed, so a non-idempotent statement could apply twice.
#[test]
fn retry_fires_on_unguarded_retry_loop() {
    assert_fires(
        "retry-idempotency",
        CLIENT,
        r#"
fn execute(&self, sql: &str) -> Result<Value> {
    for attempt in 0..2 {
        let mut conn = self.checkout()?;
        match conn.round_trip(sql) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt == 0 => continue,
            Err(e) => return Err(e),
        }
    }
    Err(Error::Closed)
}
"#,
    );
}

/// The corrected idiom: a flushed-state check gates the retry.
#[test]
fn retry_clean_with_replay_guard() {
    assert_clean(
        CLIENT,
        r#"
fn execute(&self, sql: &str) -> Result<Value> {
    for attempt in 0..2 {
        let mut conn = self.checkout()?;
        let mut frame_sent = false;
        let outcome = conn.send_then_read(sql, &mut frame_sent);
        match outcome {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt == 0 && !frame_sent => continue,
            Err(e) => return Err(e),
        }
    }
    Err(Error::Closed)
}
"#,
    );
}

/// The documented escape hatch: a reasoned idempotency marker.
#[test]
fn retry_clean_with_idempotent_marker() {
    assert_clean(
        CLIENT,
        r#"
fn fetch(&self, key: &str) -> Result<Value> {
    // xlint: idempotent reason="GET carries no state; replay returns the same value"
    for attempt in 0..2 {
        let mut conn = self.checkout()?;
        match conn.round_trip(key) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt == 0 => continue,
            Err(e) => return Err(e),
        }
    }
    Err(Error::Closed)
}
"#,
    );
}

/// The resilience-layer call shape: all retry control flow lives inside
/// `Resilience::run_guarded`, and the closure poisons the [`ReplayGuard`]
/// the moment the request frame is flushed. No loop in client code means
/// nothing for the rule to flag — this is the shape every native client
/// uses after the resilience refactor.
#[test]
fn retry_clean_with_resilience_run_guarded() {
    assert_clean(
        CLIENT,
        r#"
fn execute(&self, sql: &str) -> Result<Value> {
    let request = encode(sql);
    self.resilience.run_guarded(|deadline, attempt, guard| {
        let mut conn = self.checkout(attempt > 1)?;
        conn.deadline.arm(*deadline);
        let outcome = (|| {
            write_frame(&mut conn.writer, &request)?;
            guard.poison();
            read_frame(&mut conn.reader)
        })();
        conn.deadline.disarm();
        outcome
    })
}
"#,
    );
}

/// Hand-rolling an extra retry loop *around* the resilience layer defeats
/// the replay guard (the inner call already retried or refused to), so the
/// rule still fires on the outer loop.
#[test]
fn retry_fires_on_manual_loop_around_resilience() {
    assert_fires(
        "retry-idempotency",
        CLIENT,
        r#"
fn store(&self, key: &str, value: &[u8]) -> Result<()> {
    let mut tries = 0;
    loop {
        match self.exec(&[b"SET", key.as_bytes(), value]) {
            Ok(_) => return Ok(()),
            Err(e) if e.is_transient() && tries < 2 => {
                tries += 1;
                continue;
            }
            Err(e) => return Err(e),
        }
    }
}
"#,
    );
}

/// A marker without a reason fires the hygiene meta-rule instead.
#[test]
fn reasonless_marker_is_flagged() {
    let rules = fired(
        CLIENT,
        r#"
fn fetch(&self, key: &str) -> Result<Value> {
    // xlint: idempotent
    for attempt in 0..2 {
        let mut conn = self.checkout()?;
        match conn.round_trip(key) {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt == 0 => continue,
            Err(e) => return Err(e),
        }
    }
    Err(Error::Closed)
}
"#,
    );
    assert_eq!(rules, vec!["suppression-hygiene"], "got {rules:?}");
}

// ----------------------------------------------------------- trace-ctx-loss

/// Minting the trace context inside the retry closure gives every attempt
/// a fresh identity — the attempts of one logical request can never be
/// joined into one trace again.
#[test]
fn trace_ctx_loss_fires_on_root_minted_inside_retry_closure() {
    assert_fires(
        "trace-ctx-loss",
        CLIENT,
        r#"
fn fetch(&self, key: &str) -> Result<Value> {
    self.resilience.run_idempotent(|deadline, attempt| {
        let ctx = obs::TraceContext::new_root();
        let framed = attach(key, ctx.encode());
        self.round_trip(&framed)
    })
}
"#,
    );
}

/// The corrected idiom (what every native client does): join the caller's
/// trace or mint the root once, *before* the retry boundary, so all
/// attempts share one span identity.
#[test]
fn trace_ctx_clean_when_minted_before_retry_boundary() {
    assert_clean(
        CLIENT,
        r#"
fn fetch(&self, key: &str) -> Result<Value> {
    let ctx = match obs::ctx::current() {
        Some(parent) => parent.child(),
        None => obs::TraceContext::new_root(),
    };
    let framed = attach(key, ctx.encode());
    self.resilience.run_idempotent(|deadline, attempt| self.round_trip(&framed))
}
"#,
    );
}

// --------------------------------------------------------- unsafe-allowlist

#[test]
fn unsafe_fires_outside_allowlist() {
    assert_fires(
        "unsafe-allowlist",
        GENERAL,
        r#"
fn peek(v: &[u8]) -> u8 {
    // SAFETY: caller promises v is non-empty.
    unsafe { *v.get_unchecked(0) }
}
"#,
    );
}

#[test]
fn unsafe_without_safety_comment_fires_even_in_fskv() {
    assert_fires(
        "unsafe-allowlist",
        "crates/fskv/src/lib.rs",
        r#"
fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
"#,
    );
}

#[test]
fn unsafe_clean_in_allowlisted_crate_with_safety_comment() {
    assert_clean(
        "crates/shims/parking_lot/src/lib.rs",
        r#"
fn dup<T>(guard: &mut T) -> T {
    // SAFETY: exactly one of the two copies is ever dropped; the original
    // is overwritten without running its destructor.
    unsafe { std::ptr::read(guard) }
}
"#,
    );
}

// ------------------------------------------------------- blocking-in-reactor

/// A reactor callback that sleeps stalls every connection sharing its
/// event loop. The reactor idiom is `out.delay(..)`: the reply is queued
/// with a deadline and the loop keeps serving everyone else.
#[test]
fn reactor_block_fires_on_sleep_in_callback() {
    assert_fires(
        "blocking-in-reactor",
        SERVER,
        r#"
fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut reactor::Outbox) {
    if let Some(d) = self.stall {
        std::thread::sleep(d);
    }
    out.send(inbuf.split_off(0));
}
"#,
    );
}

/// Writing to a socket from inside a callback bypasses the reactor's
/// write-interest machinery *and* blocks the loop when the peer is slow.
#[test]
fn reactor_block_fires_on_direct_socket_write() {
    assert_fires(
        "blocking-in-reactor",
        SERVER,
        r#"
fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut reactor::Outbox) {
    let _ = self.peer.write_all(inbuf);
    let _ = self.peer.flush();
    inbuf.clear();
}
"#,
    );
}

/// Holding a lock guard across an await point parks every other task that
/// needs the lock for the duration of the yield.
#[test]
fn reactor_block_fires_on_guard_across_await() {
    assert_fires(
        "blocking-in-reactor",
        GENERAL,
        r#"
fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut Outbox) {
    let g = self.state.lock();
    self.notify(&g).await;
    out.send(inbuf.split_off(0));
}
"#,
    );
}

/// The corrected idiom (what every handler in the workspace does): parse
/// from the in-memory buffer, queue bytes and delays on the `Outbox`, and
/// let the reactor own the socket. The frame-codec helpers are named like
/// I/O but run over in-memory buffers here, so they stay clean.
#[test]
fn reactor_block_clean_on_outbox_idiom() {
    assert_clean(
        GENERAL,
        r#"
fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut reactor::Outbox) {
    let mut cursor = inbuf.as_slice();
    let frame = read_value(&mut cursor);
    let mut wire = Vec::new();
    let _ = write_frame(&mut wire, &frame);
    out.delay(self.stall);
    out.send(wire);
}
"#,
    );
}

/// The same sleep in the legacy thread-per-connection loop is that
/// thread's own problem, not the event loop's — the gate is the `Outbox`
/// in the signature.
#[test]
fn reactor_block_scoped_to_outbox_signatures() {
    assert_clean(
        GENERAL,
        r#"
fn serve(&mut self, stream: &mut TcpStream, d: Duration) {
    std::thread::sleep(d);
}
"#,
    );
}

// -------------------------------------------------------------- suppressions

#[test]
fn allow_with_reason_suppresses_and_stays_clean() {
    assert_clean(
        SERVER,
        r#"
fn handle(req: Option<&str>) -> String {
    // xlint: allow(panic-path) reason="req is pre-validated by the framing layer"
    req.unwrap().to_string()
}
"#,
    );
}

#[test]
fn allow_without_reason_trades_finding_for_hygiene() {
    let rules = fired(
        SERVER,
        r#"
fn handle(req: Option<&str>) -> String {
    // xlint: allow(panic-path)
    req.unwrap().to_string()
}
"#,
    );
    assert_eq!(rules, vec!["suppression-hygiene"], "got {rules:?}");
}

#[test]
fn unused_allow_is_flagged() {
    let rules = fired(
        SERVER,
        r#"
fn handle(req: &str) -> String {
    // xlint: allow(panic-path) reason="stale"
    req.to_string()
}
"#,
    );
    assert_eq!(rules, vec!["suppression-hygiene"], "got {rules:?}");
}

/// Every rule in the catalog has at least one bad fixture above; this pins
/// the catalog so adding a rule without a fixture fails loudly.
#[test]
fn rule_catalog_is_covered() {
    let covered = [
        "wire-arith",
        "panic-path",
        "guard-across-io",
        "retry-idempotency",
        "unsafe-allowlist",
        "trace-ctx-loss",
        "blocking-in-reactor",
        "wire-taint",
        "lock-order",
        "deadline-propagation",
        "metric-hygiene",
    ];
    for rule in xlint::rules::RULES {
        assert!(
            covered.contains(rule),
            "rule {rule} has no fixture in this corpus"
        );
    }
}

// ------------------------------------------------------- multi-file helpers

/// Active rule names fired across a set of virtual files analyzed together
/// (the workspace-model passes see all of them in one call graph).
fn fired_multi(files: &[(&str, &str)]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = findings_multi(files)
        .into_iter()
        .filter(|f| f.suppressed.is_none())
        .map(|f| f.rule)
        .collect();
    rules.sort_unstable();
    rules.dedup();
    rules
}

fn findings_multi(files: &[(&str, &str)]) -> Vec<xlint::report::Finding> {
    let owned: Vec<(String, String)> = files
        .iter()
        .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
        .collect();
    xlint::check_sources(&owned, &Policy)
}

fn assert_fires_multi(rule: &str, files: &[(&str, &str)]) {
    let rules = fired_multi(files);
    assert!(
        rules.contains(&rule),
        "expected {rule} to fire across {:?}, got {rules:?}",
        files.iter().map(|(p, _)| *p).collect::<Vec<_>>()
    );
}

fn assert_clean_multi(files: &[(&str, &str)]) {
    let rules = fired_multi(files);
    assert!(
        rules.is_empty(),
        "expected no findings across {:?}, got {rules:?}",
        files.iter().map(|(p, _)| *p).collect::<Vec<_>>()
    );
}

const RPC: &str = "crates/rpc/src/framer.rs";

// ---------------------------------------------------------------- wire-taint

/// A wire-derived count crosses a file boundary into an allocation: the
/// parser reads it, a helper in another crate allocates with it, and no
/// checked bound intervenes anywhere on the path.
#[test]
fn wire_taint_fires_on_cross_file_alloc_chain() {
    let files = [
        (
            PARSER,
            r#"
fn decode(header: &str) -> Vec<u8> {
    let n: usize = header.parse().unwrap_or(0);
    build_table(n)
}
"#,
        ),
        (
            GENERAL,
            r#"
pub fn build_table(n: usize) -> Vec<u8> {
    Vec::with_capacity(n)
}
"#,
        ),
    ];
    assert_fires_multi("wire-taint", &files);
    // The finding names both ends of the flow: the seed read in the parser
    // and the allocation sink in the other file.
    let f = findings_multi(&files)
        .into_iter()
        .find(|f| f.rule == "wire-taint")
        .expect("wire-taint finding");
    assert!(f.message.contains(PARSER), "no seed site in: {}", f.message);
    assert!(
        f.message.contains(GENERAL),
        "no sink site in: {}",
        f.message
    );
}

#[test]
fn wire_taint_clean_when_callee_bounds_the_count() {
    assert_clean_multi(&[
        (
            PARSER,
            r#"
fn decode(header: &str) -> Vec<u8> {
    let n: usize = header.parse().unwrap_or(0);
    build_table(n)
}
"#,
        ),
        (
            GENERAL,
            r#"
pub fn build_table(n: usize) -> Vec<u8> {
    Vec::with_capacity(n.min(4096))
}
"#,
        ),
    ]);
}

/// A helper's tainted *return value* flows into the caller's `vec![_; n]`
/// — same file, but across the function boundary `wire-arith` stops at.
#[test]
fn wire_taint_fires_on_tainted_return_into_vec_macro() {
    assert_fires_multi(
        "wire-taint",
        &[(
            PARSER,
            r#"
fn frame_len(header: &str) -> usize {
    header.parse().unwrap_or(0)
}
fn read_frame(header: &str) -> Vec<u8> {
    let n = frame_len(header);
    let buf = vec![0u8; n];
    buf
}
"#,
        )],
    );
}

#[test]
fn wire_taint_clean_when_caller_checks_the_return() {
    assert_clean_multi(&[(
        PARSER,
        r#"
fn frame_len(header: &str) -> usize {
    header.parse().unwrap_or(0)
}
fn read_frame(header: &str) -> Vec<u8> {
    let n = frame_len(header);
    if n > 65536 {
        return Vec::new();
    }
    let buf = vec![0u8; n];
    buf
}
"#,
    )]);
}

/// The rpc framers are outside `wire-arith`'s file list, so even an
/// intra-function flow there is this pass's to report.
#[test]
fn wire_taint_fires_intra_function_in_rpc_framer() {
    assert_fires_multi(
        "wire-taint",
        &[(
            RPC,
            r#"
fn scan_reply(line: &str, buf: &mut Vec<u8>) {
    let n: usize = line.parse().unwrap_or(0);
    buf.reserve(n);
}
"#,
        )],
    );
}

#[test]
fn wire_taint_clean_in_rpc_framer_with_clamp() {
    assert_clean_multi(&[(
        RPC,
        r#"
fn scan_reply(line: &str, buf: &mut Vec<u8>) {
    let n: usize = line.parse().unwrap_or(0);
    buf.reserve(n.min(16 * 1024));
}
"#,
    )]);
}

/// A tainted parameter reaching `.take(n).read_to_end` in a second file:
/// the bounded-reader idiom is only bounded if `n` itself is.
#[test]
fn wire_taint_fires_on_cross_file_take_read_to_end() {
    assert_fires_multi(
        "wire-taint",
        &[
            (
                PARSER,
                r#"
fn content_length(v: &str) -> u64 {
    v.parse().unwrap_or(0)
}
fn dispatch(v: &str, r: &mut impl std::io::Read) -> Vec<u8> {
    slurp(r, content_length(v))
}
"#,
            ),
            (
                GENERAL,
                r#"
pub fn slurp(r: &mut impl std::io::Read, n: u64) -> Vec<u8> {
    let mut out = Vec::new();
    let _ = r.take(n).read_to_end(&mut out);
    out
}
"#,
            ),
        ],
    );
}

#[test]
fn wire_taint_clean_when_take_len_is_clamped_at_the_seam() {
    assert_clean_multi(&[
        (
            PARSER,
            r#"
fn content_length(v: &str) -> u64 {
    v.parse().unwrap_or(0)
}
fn dispatch(v: &str, r: &mut impl std::io::Read) -> Vec<u8> {
    let n = content_length(v).min(1 << 20);
    slurp(r, n)
}
"#,
        ),
        (
            GENERAL,
            r#"
pub fn slurp(r: &mut impl std::io::Read, n: u64) -> Vec<u8> {
    let mut out = Vec::new();
    let _ = r.take(n).read_to_end(&mut out);
    out
}
"#,
        ),
    ]);
}

// ---------------------------------------------------------------- lock-order

/// Direct nested acquisition with no declared order.
#[test]
fn lock_order_fires_on_undeclared_nesting() {
    assert_fires_multi(
        "lock-order",
        &[(
            GENERAL,
            r#"
use std::sync::Mutex;
struct Store { index: Mutex<Vec<u8>>, blobs: Mutex<Vec<u8>> }
impl Store {
    fn compact(&self) {
        let idx = self.index.lock().unwrap();
        let blobs = self.blobs.lock().unwrap();
        drop(blobs);
        drop(idx);
    }
}
"#,
        )],
    );
}

#[test]
fn lock_order_clean_with_declared_order() {
    assert_clean_multi(&[(
        GENERAL,
        r#"
use std::sync::Mutex;
struct Store { index: Mutex<Vec<u8>>, blobs: Mutex<Vec<u8>> }
impl Store {
    fn compact(&self) {
        // xlint: lock-order(index -> blobs) reason="compaction snapshots blobs under the index lock"
        let idx = self.index.lock().unwrap();
        let blobs = self.blobs.lock().unwrap();
        drop(blobs);
        drop(idx);
    }
}
"#,
    )]);
}

/// Two functions acquiring the same pair in opposite orders is a cycle even
/// when each edge is individually declared: declaring doesn't excuse it.
#[test]
fn lock_order_fires_on_declared_but_inverted_pair() {
    let files = [(
        GENERAL,
        r#"
use std::sync::Mutex;
struct Store { index: Mutex<Vec<u8>>, blobs: Mutex<Vec<u8>> }
impl Store {
    fn compact(&self) {
        // xlint: lock-order(index -> blobs) reason="snapshot"
        let idx = self.index.lock().unwrap();
        let blobs = self.blobs.lock().unwrap();
        drop(blobs);
        drop(idx);
    }
    fn restore(&self) {
        // xlint: lock-order(blobs -> index) reason="restore"
        let blobs = self.blobs.lock().unwrap();
        let idx = self.index.lock().unwrap();
        drop(idx);
        drop(blobs);
    }
}
"#,
    )];
    assert_fires_multi("lock-order", &files);
    let f = findings_multi(&files)
        .into_iter()
        .find(|f| f.rule == "lock-order" && f.message.contains("cycle"))
        .expect("cycle finding");
    assert!(f.message.contains("index") && f.message.contains("blobs"));
}

/// Three locks, three files, one cycle: a -> b, b -> c, c -> a. Each file
/// looks locally innocent; only the workspace graph sees the loop.
#[test]
fn lock_order_fires_on_three_lock_cycle_across_files() {
    let files = [
        (
            "crates/cache/src/tiers.rs",
            r#"
use std::sync::Mutex;
pub struct Tiers { pub hot: Mutex<u8>, pub warm: Mutex<u8>, pub cold: Mutex<u8> }
impl Tiers {
    pub fn promote(&self) {
        // xlint: lock-order(hot -> warm) reason="promotion copies up"
        let h = self.hot.lock().unwrap();
        let w = self.warm.lock().unwrap();
        drop(w);
        drop(h);
    }
}
"#,
        ),
        (
            "crates/cache/src/demote.rs",
            r#"
impl crate::tiers::Tiers {
    pub fn demote(&self) {
        // xlint: lock-order(warm -> cold) reason="demotion copies down"
        let w = self.warm.lock().unwrap();
        let c = self.cold.lock().unwrap();
        drop(c);
        drop(w);
    }
}
"#,
        ),
        (
            "crates/cache/src/sweep.rs",
            r#"
impl crate::tiers::Tiers {
    pub fn sweep(&self) {
        // xlint: lock-order(cold -> hot) reason="sweep revives"
        let c = self.cold.lock().unwrap();
        let h = self.hot.lock().unwrap();
        drop(h);
        drop(c);
    }
}
"#,
        ),
    ];
    assert_fires_multi("lock-order", &files);
    let f = findings_multi(&files)
        .into_iter()
        .find(|f| f.rule == "lock-order" && f.message.contains("cycle"))
        .expect("cycle finding");
    for label in ["hot", "warm", "cold"] {
        assert!(f.message.contains(label), "{label} missing: {}", f.message);
    }
}

#[test]
fn lock_order_clean_with_consistent_total_order_across_files() {
    assert_clean_multi(&[
        (
            "crates/cache/src/tiers.rs",
            r#"
use std::sync::Mutex;
pub struct Tiers { pub hot: Mutex<u8>, pub warm: Mutex<u8>, pub cold: Mutex<u8> }
impl Tiers {
    pub fn promote(&self) {
        // xlint: lock-order(hot -> warm) reason="promotion copies up"
        let h = self.hot.lock().unwrap();
        let w = self.warm.lock().unwrap();
        drop(w);
        drop(h);
    }
}
"#,
        ),
        (
            "crates/cache/src/demote.rs",
            r#"
impl crate::tiers::Tiers {
    pub fn demote(&self) {
        // xlint: lock-order(warm -> cold) reason="demotion copies down"
        let w = self.warm.lock().unwrap();
        let c = self.cold.lock().unwrap();
        drop(c);
        drop(w);
    }
}
"#,
        ),
    ]);
}

/// A cycle formed through a *call*: one function locks B while a lock-A
/// holder calls into it, and another path nests them the other way round.
#[test]
fn lock_order_fires_on_call_mediated_cycle() {
    assert_fires_multi(
        "lock-order",
        &[(
            GENERAL,
            r#"
use std::sync::Mutex;
struct Store { index: Mutex<Vec<u8>>, blobs: Mutex<Vec<u8>> }
impl Store {
    fn flush_blobs(&self) {
        let b = self.blobs.lock().unwrap();
        drop(b);
    }
    fn compact(&self) {
        // xlint: lock-order(index -> blobs) reason="flush under index"
        let idx = self.index.lock().unwrap();
        self.flush_blobs();
        drop(idx);
    }
    fn rebuild(&self) {
        // xlint: lock-order(blobs -> index) reason="rebuild scans"
        let b = self.blobs.lock().unwrap();
        let idx = self.index.lock().unwrap();
        drop(idx);
        drop(b);
    }
}
"#,
        )],
    );
}

#[test]
fn lock_order_clean_when_guard_dropped_before_call() {
    assert_clean_multi(&[(
        GENERAL,
        r#"
use std::sync::Mutex;
struct Store { index: Mutex<Vec<u8>>, blobs: Mutex<Vec<u8>> }
impl Store {
    fn flush_blobs(&self) {
        let b = self.blobs.lock().unwrap();
        drop(b);
    }
    fn compact(&self) {
        {
            let idx = self.index.lock().unwrap();
            drop(idx);
        }
        self.flush_blobs();
    }
}
"#,
    )]);
}

// ------------------------------------------------------ deadline-propagation

/// The PR 7 regression shape: `send` takes a Deadline but the helper it
/// delegates the actual socket write to doesn't — the budget dies at the
/// first internal seam.
#[test]
fn deadline_fires_when_budget_dropped_across_rpc_seam() {
    let files = [(
        "crates/rpc/src/blocking.rs",
        r#"
impl BlockingSender {
    fn send(&self, req: &[u8], deadline: &Deadline) -> Result<Vec<u8>> {
        self.push_frame(req)
    }
    fn push_frame(&self, req: &[u8]) -> Result<Vec<u8>> {
        self.stream.write_all(req)
    }
}
"#,
    )];
    assert_fires_multi("deadline-propagation", &files);
    let f = findings_multi(&files)
        .into_iter()
        .find(|f| f.rule == "deadline-propagation")
        .expect("deadline finding");
    assert!(f.message.contains("push_frame"), "{}", f.message);
    assert!(f.message.contains("BlockingSender::send"), "{}", f.message);
}

#[test]
fn deadline_clean_when_budget_threaded_through_the_seam() {
    assert_clean_multi(&[(
        "crates/rpc/src/blocking.rs",
        r#"
impl BlockingSender {
    fn send(&self, req: &[u8], deadline: &Deadline) -> Result<Vec<u8>> {
        self.push_frame(req, deadline)
    }
    fn push_frame(&self, req: &[u8], deadline: &Deadline) -> Result<Vec<u8>> {
        self.stream.write_all(req)
    }
}
"#,
    )]);
}

/// The seam can span files: an EnhancedClient op reaching plain socket I/O
/// in a helper module two hops away.
#[test]
fn deadline_fires_across_file_boundary_from_enhanced_client() {
    assert_fires_multi(
        "deadline-propagation",
        &[
            (
                "crates/core/src/client.rs",
                r#"
impl EnhancedClient {
    pub fn get(&self, key: &str) -> Result<Vec<u8>> {
        fetch(&self.transport, key)
    }
}
"#,
            ),
            (
                "crates/core/src/transport.rs",
                r#"
pub fn fetch(t: &Transport, key: &str) -> Result<Vec<u8>> {
    let mut buf = [0u8; 256];
    t.sock.read_exact(&mut buf)
}
"#,
            ),
        ],
    );
}

#[test]
fn deadline_clean_when_helper_consults_stream_timeouts() {
    assert_clean_multi(&[
        (
            "crates/core/src/client.rs",
            r#"
impl EnhancedClient {
    pub fn get(&self, key: &str) -> Result<Vec<u8>> {
        fetch(&self.transport, key, self.deadline)
    }
}
"#,
        ),
        (
            "crates/core/src/transport.rs",
            r#"
pub fn fetch(t: &Transport, key: &str, deadline: Deadline) -> Result<Vec<u8>> {
    t.sock.set_read_timeout(Some(deadline.remaining()))?;
    let mut buf = [0u8; 256];
    t.sock.read_exact(&mut buf)
}
"#,
        ),
    ]);
}

/// The resilience `run_*` entry points are request boundaries too: a dial
/// helper reachable from `run_idempotent` must carry the budget.
#[test]
fn deadline_fires_from_resilience_run_entry() {
    assert_fires_multi(
        "deadline-propagation",
        &[(
            "crates/resilience/src/retry.rs",
            r#"
pub fn run_idempotent(addr: &str) -> Result<Vec<u8>> {
    dial(addr)
}
fn dial(addr: &str) -> Result<Vec<u8>> {
    let mut s = TcpStream::connect(addr)?;
    s.write_all(b"hello")
}
"#,
        )],
    );
}

#[test]
fn deadline_clean_when_dial_derives_a_connect_budget() {
    assert_clean_multi(&[(
        "crates/resilience/src/retry.rs",
        r#"
pub fn run_idempotent(addr: &str, deadline: &Deadline) -> Result<Vec<u8>> {
    dial(addr, deadline)
}
fn dial(addr: &str, deadline: &Deadline) -> Result<Vec<u8>> {
    let mut s = TcpStream::connect_timeout(&addr.parse()?, deadline.remaining())?;
    s.write_all(b"hello")
}
"#,
    )]);
}

/// Functions on server files are out of scope: their time discipline is
/// the reactor's, not a per-request budget.
#[test]
fn deadline_ignores_server_side_io() {
    assert_clean_multi(&[(
        SERVER,
        r#"
fn pump(s: &mut TcpStream) -> Result<()> {
    s.write_all(b"pong")
}
"#,
    )]);
}

// ------------------------------------------------------------ metric-hygiene

/// A raw key interpolated into a label value mints one series per key —
/// the canonical cardinality explosion.
#[test]
fn metric_hygiene_fires_on_interpolated_label_value() {
    assert_fires(
        "metric-hygiene",
        GENERAL,
        r#"
fn record_hit(reg: &Registry, key: &str) {
    reg.counter("cache_hits_total", &[("key", &format!("{key}"))])
        .inc();
}
"#,
    );
}

/// A dynamically-built metric *name* is just as unbounded.
#[test]
fn metric_hygiene_fires_on_dynamic_metric_name() {
    assert_fires(
        "metric-hygiene",
        GENERAL,
        r#"
fn publish_shard(reg: &Registry, shard: usize) {
    reg.gauge(&format!("shard_{shard}_depth"), &[]).set(1);
}
"#,
    );
}

/// The corrected idiom: static name, the variable moved into a *bounded*
/// label drawn from a closed set.
#[test]
fn metric_hygiene_clean_on_static_name_and_closed_labels() {
    assert_clean(
        GENERAL,
        r#"
fn record_hit(reg: &Registry, cache: &str, op: Op) {
    reg.counter("cache_hits_total", &[("cache", cache), ("op", op.as_str())])
        .inc();
    reg.histogram("cache_op_ns", &[("op", op.as_str())]).record(7);
}
"#,
    );
}

/// A documented allow (closed set proven by the caller) suppresses it.
#[test]
fn metric_hygiene_respects_reasoned_allow() {
    assert_clean(
        GENERAL,
        r#"
fn publish(reg: &Registry, prefix: &str) {
    // xlint: allow(metric-hygiene) reason="prefix is a closed set of component names"
    reg.counter(&format!("{prefix}_ops_total"), &[]).inc();
}
"#,
    );
}

/// Test code may mint throwaway series freely.
#[test]
fn metric_hygiene_ignores_test_paths() {
    assert_clean(
        "crates/kvapi/tests/contract.rs",
        r#"
fn spam(reg: &Registry, i: usize) {
    reg.counter(&format!("t_{i}_total"), &[]).inc();
}
"#,
    );
}
