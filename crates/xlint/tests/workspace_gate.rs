//! The analyzer run CI gates on, executed against the real workspace:
//! `--deny-all` must be clean and the global lock graph provably acyclic.
//!
//! These are integration tests of the repository itself, not of fixture
//! snippets — if a change introduces an undeclared lock nesting, a taint
//! path, or a dropped deadline anywhere in the tree, they fail here
//! before `ci.sh` ever runs.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/xlint -> crates -> repo root.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p
}

#[test]
fn workspace_is_deny_all_clean() {
    let a = xlint::analyze_workspace(&workspace_root());
    let active: Vec<_> = a
        .findings
        .iter()
        .filter(|f| f.suppressed.is_none())
        .collect();
    assert!(
        active.is_empty(),
        "workspace has active findings:\n{}",
        active
            .iter()
            .map(|f| format!("  {}:{} [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn workspace_lock_graph_is_acyclic() {
    let a = xlint::analyze_workspace(&workspace_root());
    let cycles = a.lock_graph.cycles();
    assert!(
        cycles.is_empty(),
        "lock-acquisition graph has cycles: {cycles:?}\n{}",
        a.lock_graph.dot()
    );
    // The graph must be non-trivial for acyclicity to mean anything: the
    // workspace is known to contain at least one declared nesting
    // (obs registry: metrics -> exemplars).
    assert!(
        a.lock_graph
            .edges
            .iter()
            .any(|e| e.from.contains("metrics") && e.to.contains("exemplars")),
        "expected the obs metrics -> exemplars edge in the lock graph"
    );
}

#[test]
fn workspace_analysis_fits_the_ci_budget() {
    let a = xlint::analyze_workspace(&workspace_root());
    let total = a.timing.total_ms();
    assert!(
        total <= 30_000,
        "two-phase workspace analysis took {total} ms, over the 30 s CI budget"
    );
}
