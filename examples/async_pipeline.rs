//! The asynchronous interface in anger (§II-A): fan out writes to a slow
//! store, overlap them with local work, and chain completion callbacks —
//! then compare against the synchronous interface doing the same jobs.
//!
//! ```text
//! cargo run --release --example async_pipeline
//! ```

use cloudstore::{CloudServer, CloudServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use udsm_suite::prelude::*;

const JOBS: usize = 16;

fn main() -> Result<()> {
    // A store with ~30 ms of injected latency per request.
    let server = CloudServer::start(CloudServerConfig {
        latency: netsim::Profile::Cloud2.scaled_model(0.5),
        seed: 3,
        ..Default::default()
    })?;

    let manager = UniversalDataStoreManager::new(8); // pool size: 8 workers
    manager.register("cloud", Arc::new(CloudClient::connect(server.addr())));

    let payload = vec![42u8; 10_000];

    // ---- synchronous: one request at a time ----
    let store = manager.store("cloud")?;
    let t0 = Instant::now();
    for i in 0..JOBS {
        store.put(&format!("sync/{i}"), &payload)?;
    }
    let sync_elapsed = t0.elapsed();
    println!("synchronous: {JOBS} puts in {sync_elapsed:?}");

    // ---- asynchronous: fan out, overlap, collect ----
    let async_store = manager.async_store("cloud")?;
    let completed = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let futures: Vec<_> = (0..JOBS)
        .map(|i| {
            let f = async_store.put(&format!("async/{i}"), payload.clone());
            // Completion callbacks: run as each request finishes.
            let completed = completed.clone();
            f.add_listener(move |res| {
                assert!(res.is_ok());
                completed.fetch_add(1, Ordering::SeqCst);
            });
            f
        })
        .collect();

    // The caller keeps doing useful work while the writes are in flight.
    let mut local_work = 0u64;
    while completed.load(Ordering::SeqCst) < JOBS as u64 {
        local_work = local_work.wrapping_add(1).rotate_left(7) ^ 0x9e37;
        std::hint::black_box(local_work);
    }
    for f in &futures {
        f.get().as_ref().as_ref().unwrap();
    }
    let async_elapsed = t0.elapsed();
    println!(
        "asynchronous: {JOBS} puts in {async_elapsed:?} (overlapped with {local_work:x} loops of local work)"
    );
    println!(
        "speedup: {:.1}x with an 8-thread pool",
        sync_elapsed.as_secs_f64() / async_elapsed.as_secs_f64()
    );

    // ---- chaining: read-after-write via callback ----
    let readback = async_store.get("async/0");
    readback.add_listener(|res| {
        let len = res.as_ref().unwrap().as_ref().map(|b| b.len()).unwrap_or(0);
        println!("callback read-back: {len} bytes");
    });
    readback.get();

    assert!(
        async_elapsed < sync_elapsed,
        "async fan-out should beat serial round trips"
    );
    Ok(())
}
