//! Cache capacity planning with the stack-distance profiler.
//!
//! The paper's related work highlights MIMIR: estimating an LRU cache's
//! hit-rate *curve* from a live access stream, so operators can size caches
//! without trial deployments. This example:
//!
//!   1. runs a Zipf-like workload against a (simulated) distant cloud store
//!      through a profiled cache,
//!   2. prints the predicted hit-rate curve and the size needed for a
//!      target hit rate,
//!   3. re-runs with a cache of exactly that size and compares the measured
//!      hit rate with the prediction.
//!
//! ```text
//! cargo run --release --example cache_planning
//! ```

use cloudstore::{CloudClient, CloudServer, CloudServerConfig};
use dscl::EnhancedClient;
use dscl_cache::{Cache, HitRateProfiler, InProcessLru, ProfiledCache};
use std::sync::Arc;
use udsm_suite::prelude::*;

const UNIVERSE: usize = 400;
const ACCESSES: usize = 8_000;
const OBJECT_BYTES: usize = 2_000;

/// Zipf-ish key sampler over `UNIVERSE` keys.
fn sample_key(state: &mut u64) -> String {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let u = ((*state >> 11) as f64) / ((1u64 << 53) as f64);
    let rank = ((1.0 / (u + 1e-12)).powf(0.75) as usize) % UNIVERSE;
    format!("obj{rank:04}")
}

fn main() -> Result<()> {
    let server = CloudServer::start(CloudServerConfig {
        latency: netsim::Profile::Cloud2.scaled_model(0.05),
        seed: 21,
        ..Default::default()
    })?;

    // Populate the store.
    let seed_client = CloudClient::connect(server.addr());
    for i in 0..UNIVERSE {
        seed_client.put(&format!("obj{i:04}"), &vec![i as u8; OBJECT_BYTES])?;
    }
    println!("{UNIVERSE} objects of {OBJECT_BYTES} B populated at the cloud store");

    // ---- phase 1: observe the live stream through a profiled cache ----
    let profiled = ProfiledCache::new(InProcessLru::new(64 << 20), UNIVERSE * 2);
    let profiler: Arc<HitRateProfiler> = profiled.profiler.clone();
    let client =
        EnhancedClient::new(CloudClient::connect(server.addr())).with_cache(Arc::new(profiled));
    let mut rng = 0x1234_5678u64;
    for _ in 0..ACCESSES {
        let key = sample_key(&mut rng);
        client.get(&key)?.expect("populated");
    }
    println!("\npredicted LRU hit-rate curve from {ACCESSES} observed accesses:");
    println!("  entries   hit rate");
    for (size, rate) in profiler.curve(&[10, 25, 50, 100, 200, 400]) {
        println!("  {size:>7}   {:>6.1} %", rate * 100.0);
    }
    let target = 0.80;
    let Some(needed) = profiler.size_for_hit_rate(target) else {
        println!(
            "target {:.0}% not reachable (cold misses dominate)",
            target * 100.0
        );
        return Ok(());
    };
    println!(
        "\n→ a cache of ~{needed} entries (≈{} KB) should reach {:.0}% hits",
        needed * (OBJECT_BYTES + 64 + 7) / 1024,
        target * 100.0
    );

    // ---- phase 2: validate the recommendation ----
    // Cost per entry = key + value + envelope + bookkeeping overhead;
    // single shard so the budget maps cleanly onto entry count.
    let per_entry = (OBJECT_BYTES + 7 + 29 + 64) as u64;
    let sized_cache = Arc::new(InProcessLru::with_shards(needed as u64 * per_entry, 1));
    let client2 =
        EnhancedClient::new(CloudClient::connect(server.addr())).with_cache(sized_cache.clone());
    let mut rng = 0x1234_5678u64; // same trace
    for _ in 0..ACCESSES {
        let key = sample_key(&mut rng);
        client2.get(&key)?.expect("populated");
    }
    let measured = sized_cache.stats().hit_rate();
    println!(
        "measured hit rate with that cache: {:.1} % (predicted ≥ {:.0} %)",
        measured * 100.0,
        target * 100.0
    );
    assert!(
        measured > target - 0.08,
        "prediction was badly off: measured {measured:.3}"
    );
    Ok(())
}
