//! Delta encoding for client-server sync (§IV): update a large document on
//! a distant store by sending only the change, with the client managing
//! delta objects because the server has no delta support.
//!
//! ```text
//! cargo run --release --example delta_sync
//! ```
//!
//! Also reproduces the paper's caveat: reads must fetch base + all deltas,
//! so client-only delta management trades read amplification for write
//! savings.

use cloudstore::{CloudServer, CloudServerConfig};
use dscl_delta::DeltaChainStore;
use udsm_suite::prelude::*;

fn main() -> Result<()> {
    let server = CloudServer::start(CloudServerConfig {
        latency: netsim::Profile::Cloud2.scaled_model(0.2),
        seed: 11,
        ..Default::default()
    })?;
    let cloud = CloudClient::connect(server.addr());

    // Wrap the cloud client in the delta-chain layer: consolidate once 5
    // deltas are stacked (so the sixth edit collapses the chain).
    let store = DeltaChainStore::new(cloud, 5);

    // A 200 KB "document".
    let mut document: Vec<u8> = (0..200_000u32)
        .map(|i| (i.wrapping_mul(2654435761) >> 24) as u8)
        .collect();
    store.put("report", &document)?;
    let (_, base_written) = store.traffic.snapshot();
    println!("initial upload: {} bytes sent", base_written);

    // Five small edits — each sends a delta, not the document.
    for round in 0..5 {
        for byte in document.iter_mut().skip(round * 40_000).take(64) {
            *byte ^= 0xff;
        }
        let (_, before) = store.traffic.snapshot();
        let t0 = std::time::Instant::now();
        store.put("report", &document)?;
        let (_, after) = store.traffic.snapshot();
        println!(
            "edit {}: {} bytes sent in {:?} (document is {} bytes)",
            round + 1,
            after - before,
            t0.elapsed(),
            document.len()
        );
    }
    let (_, total_written) = store.traffic.snapshot();
    let full_cost = 6 * document.len() as u64;
    println!(
        "total sent: {total_written} bytes vs {full_cost} for six full uploads ({:.1}x saving)",
        full_cost as f64 / total_written as f64
    );

    // The caveat: a read now fetches base + 5 deltas.
    let (read_before, _) = store.traffic.snapshot();
    let t0 = std::time::Instant::now();
    let fetched = store.get("report")?.expect("document exists");
    let (read_after, _) = store.traffic.snapshot();
    assert_eq!(&fetched[..], &document[..]);
    println!(
        "read-back: correct, but fetched {} bytes for a {}-byte document in {:?} \
         (the paper's 'additional reads' cost)",
        read_after - read_before,
        document.len(),
        t0.elapsed()
    );

    // One more edit after max_deltas triggers consolidation: chain collapses.
    document[0] ^= 1;
    store.put("report", &document)?;
    let keys = store.inner().keys()?;
    println!(
        "after consolidation the server holds {} objects: {keys:?}",
        keys.len()
    );
    assert!(
        keys.len() <= 2,
        "consolidation should leave meta + base only"
    );
    Ok(())
}
