//! Compare the paper's five data stores with the UDSM workload generator —
//! a miniature of the §V evaluation you can run in under a minute.
//!
//! ```text
//! cargo run --release --example multi_store_comparison
//! ```
//!
//! Brings up miniredis, two simulated cloud stores (scaled-down WAN
//! latency), a minisql server with durable commits, and a file-system
//! store; then sweeps read and write latencies across object sizes and
//! prints the comparison table the workload generator produces.

use cloudstore::{CloudServer, CloudServerConfig};
use minisql::wal::SyncMode;
use minisql::{SqlServer, SqlServerConfig};
use std::sync::Arc;
use udsm::workload::{to_markdown, ValueSource};
use udsm_suite::prelude::*;

fn main() -> Result<()> {
    let dir = std::env::temp_dir().join(format!("udsm-compare-{}", std::process::id()));
    std::fs::create_dir_all(&dir)?;

    // ---- bring up the servers ----
    println!("starting servers…");
    let redis_server = miniredis::Server::start()?;
    let cloud1_server = CloudServer::start(CloudServerConfig {
        latency: netsim::Profile::Cloud1.scaled_model(0.05), // 5% of WAN latency
        seed: 1,
        ..Default::default()
    })?;
    let cloud2_server = CloudServer::start(CloudServerConfig {
        latency: netsim::Profile::Cloud2.scaled_model(0.05),
        seed: 2,
        ..Default::default()
    })?;
    let sql_server = SqlServer::start(SqlServerConfig {
        data_dir: Some(dir.join("sql")),
        sync: SyncMode::Always,
        ..Default::default()
    })?;

    // ---- clients, all behind the common interface ----
    let manager = UniversalDataStoreManager::new(4);
    manager.register("filesystem", Arc::new(FsKv::open(dir.join("fs"))?));
    manager.register("minisql", Arc::new(SqlKv::connect(sql_server.addr())?));
    manager.register(
        "cloud1",
        Arc::new(CloudClient::connect(cloud1_server.addr())),
    );
    manager.register(
        "cloud2",
        Arc::new(CloudClient::connect(cloud2_server.addr())),
    );
    manager.register("redis", Arc::new(RedisKv::connect(redis_server.addr())));

    // ---- sweep ----
    let spec = WorkloadSpec {
        sizes: vec![1_000, 10_000, 100_000],
        ops_per_point: 5,
        runs: 2,
        source: ValueSource::synthetic(),
        hit_rates: vec![],
    };
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    for name in manager.names() {
        println!("measuring {name}…");
        let store = manager.store(&name)?;
        reads.push(spec.read_sweep(store.as_ref(), &name)?);
        writes.push(spec.write_sweep(store.as_ref(), &name)?);
    }

    println!(
        "\nRead latency (ms) by object size:\n{}",
        to_markdown(&reads)
    );
    println!(
        "Write latency (ms) by object size:\n{}",
        to_markdown(&writes)
    );
    println!(
        "Expected shape (paper Figs. 9–10): cloud stores slowest (cloud1 > cloud2),\n\
         minisql writes pay the durable commit, redis and the file system are fastest."
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
