//! Quickstart: the enhanced data store client and the UDSM in five minutes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks through: the common key-value interface, an enhanced client with
//! caching + compression + encryption, revalidation, the UDSM registry,
//! the asynchronous interface, and performance monitoring.

use std::sync::Arc;
use std::time::Duration;
use udsm_suite::prelude::*;

fn main() -> Result<()> {
    // ---- 1. Any store behind the common key-value interface ----
    // Start with the simplest store there is. Everything below would work
    // identically with fskv, minisql, miniredis, or a cloud store.
    let plain_store = kvapi::mem::MemKv::new("demo");
    plain_store.put("greeting", b"hello, data store")?;
    println!("plain get: {:?}", plain_store.get("greeting")?);

    // ---- 2. The enhanced client (DSCL) ----
    // Wrap the store with an in-process cache, gzip compression, and
    // AES-128 encryption. Compression runs before encryption (ciphertext
    // does not compress). The wrapper itself implements KeyValue, so the
    // application code does not change.
    let client = EnhancedClient::new(plain_store)
        .with_cache(Arc::new(InProcessLru::new(64 << 20)))
        .with_codec(Box::new(GzipCodec::default()))
        .with_codec(Box::new(AesCodec::aes128(b"an example key!!")))
        .with_ttl(Duration::from_secs(60));

    let document = "a fairly repetitive document body. ".repeat(100);
    client.put("doc", document.as_bytes())?;

    // The store now holds compressed ciphertext…
    let raw = client.store().get("doc")?.expect("stored");
    println!(
        "stored form: {} bytes (plaintext was {}), starts {:02x?}…",
        raw.len(),
        document.len(),
        &raw[..4]
    );
    // …while the client round-trips plaintext, serving repeats from cache.
    assert_eq!(client.get("doc")?.unwrap(), document.as_bytes());
    let _ = client.get("doc")?;
    let stats = client.stats();
    println!(
        "dscl stats: {} cache hits, {} misses, {}→{} bytes via codecs",
        stats.cache_hits, stats.cache_misses, stats.bytes_encoded, stats.bytes_stored
    );

    // ---- 3. The UDSM: many stores, one interface ----
    let manager = UniversalDataStoreManager::new(4);
    manager.register("memory", Arc::new(kvapi::mem::MemKv::new("memory")));
    let fs_dir = std::env::temp_dir().join("udsm-quickstart");
    manager.register("files", Arc::new(FsKv::open(&fs_dir)?));
    println!("registered stores: {:?}", manager.names());

    // The same code runs against every registered store — swap by name.
    for name in manager.names() {
        let store = manager.store(&name)?;
        store.put("shared", format!("written via {name}").as_bytes())?;
        println!(
            "{name}: {:?}",
            String::from_utf8_lossy(&store.get("shared")?.unwrap())
        );
    }

    // ---- 4. The asynchronous interface ----
    // Every registered store gets one automatically; ListenableFutures
    // support blocking get, timed get, and completion callbacks.
    let async_store = manager.async_store("memory")?;
    let put_future = async_store.put("async-key", &b"async value"[..]);
    put_future.add_listener(|res| {
        println!("callback: async put finished, ok={}", res.is_ok());
    });
    put_future.get(); // join
    let got = async_store.get("async-key").get();
    println!("async get: {:?}", got.as_ref().as_ref().unwrap().as_deref());

    // ---- 5. Performance monitoring ----
    let monitored = MonitoredStore::new(kvapi::mem::MemKv::new("timed"), 32);
    for i in 0..100 {
        monitored.put(&format!("k{i}"), b"v")?;
        let _ = monitored.get(&format!("k{i}"))?;
    }
    let report = monitored.report();
    let get_summary = report.summary(udsm::OpKind::Get);
    println!(
        "monitored: {} gets, mean {:.4} ms (±{:.4}), {} recent samples retained",
        get_summary.count,
        get_summary.mean_ms,
        get_summary.stddev_ms(),
        report.recent.len()
    );
    // Reports persist through any store — here, back into the same one.
    report.persist(monitored.inner(), "perf/report")?;
    println!("report persisted under 'perf/report'");

    std::fs::remove_dir_all(&fs_dir).ok();
    Ok(())
}
