//! A confidential client for an untrusted cloud store (§III security
//! discussion): values are compressed, then encrypted, *before* leaving the
//! process — and the cache holds ciphertext too, because "a cache may be
//! storing confidential data for extended periods of time".
//!
//! ```text
//! cargo run --release --example secure_cached_cloud
//! ```
//!
//! Also demonstrates expiration + revalidation: after the TTL lapses, the
//! client sends a conditional GET and the (unchanged) object is confirmed
//! with a 304 — no body crosses the simulated WAN.

use cloudstore::{CloudServer, CloudServerConfig};
use std::sync::Arc;
use std::time::Duration;
use udsm_suite::prelude::*;

fn main() -> Result<()> {
    // An "untrusted" cloud store, 60 ms away.
    let server = CloudServer::start(CloudServerConfig {
        latency: netsim::Profile::Cloud2.scaled_model(0.5),
        seed: 7,
        ..Default::default()
    })?;
    let cloud = CloudClient::connect(server.addr()).with_name("untrusted-cloud");

    // Enhanced client: gzip → AES-256, encrypted cache entries, 2 s TTL.
    let client = EnhancedClient::new(cloud)
        .with_cache(Arc::new(InProcessLru::new(32 << 20)))
        .with_codec(Box::new(GzipCodec::default()))
        .with_codec(Box::new(dscl_crypto::AesCodec::from_passphrase(
            "correct horse battery staple",
            dscl_crypto::KeySize::Aes256,
            dscl_crypto::codec::Mode::Ctr,
        )))
        .with_config(DsclConfig {
            cache_content: CacheContent::Encoded, // ciphertext in the cache
            default_ttl: Some(Duration::from_millis(500)),
            ..Default::default()
        });

    let secret = "patient record 4711: highly confidential. ".repeat(50);
    let t0 = std::time::Instant::now();
    client.put("record", secret.as_bytes())?;
    println!("put (compress+encrypt+WAN): {:?}", t0.elapsed());

    // What the server actually holds:
    let raw = client.store().get("record")?.expect("stored");
    assert!(
        !raw.windows(7).any(|w| w == b"patient"),
        "plaintext must not leave the client"
    );
    println!(
        "server holds {} opaque bytes (plaintext was {})",
        raw.len(),
        secret.len()
    );

    // Cached read: no WAN, decrypt-on-hit.
    let t0 = std::time::Instant::now();
    assert_eq!(client.get("record")?.unwrap(), secret.as_bytes());
    println!("cached read (decrypt only): {:?}", t0.elapsed());

    // Let the TTL lapse, then read again: the client revalidates with a
    // conditional GET; the server answers 304 and no body is transferred.
    std::thread::sleep(Duration::from_millis(600));
    let t0 = std::time::Instant::now();
    assert_eq!(client.get("record")?.unwrap(), secret.as_bytes());
    println!("expired read → revalidated via 304 in {:?}", t0.elapsed());

    let s = client.stats();
    println!(
        "stats: {} hits, {} revalidations ({} confirmed current)",
        s.cache_hits, s.revalidations, s.revalidated_current
    );
    assert_eq!(s.revalidated_current, 1);
    Ok(())
}
