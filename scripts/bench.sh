#!/usr/bin/env bash
# Run the pinned-workload bench harness and write the next BENCH_<n>.json.
#
# Picks n = highest committed BENCH number + 1, runs the full (non-quick)
# harness in release mode, and — when a predecessor exists — gates the new
# file against it with the default regression thresholds. Pass extra
# arguments through to `udsm-cli bench` (e.g. --quick, --scale 0.1,
# --profile).
#
#   scripts/bench.sh               # full run, auto-numbered, gated
#   scripts/bench.sh --quick       # fast smoke, still auto-numbered
set -euo pipefail
cd "$(dirname "$0")/.."

prev=""
next=1
for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    n="${f#BENCH_}"
    n="${n%.json}"
    case "$n" in
    *[!0-9]*) continue ;;
    esac
    if [ "$n" -ge "$next" ]; then
        next=$((n + 1))
        prev="$f"
    fi
done
out="BENCH_${next}.json"

cargo build --release --offline -q
./target/release/udsm-cli bench --out "$out" "$@"

if [ -n "$prev" ]; then
    echo "comparing $out against $prev"
    ./target/release/udsm-cli bench --compare "$prev" "$out"
else
    echo "no previous BENCH_*.json — $out is the first baseline"
fi
echo "wrote $out"
