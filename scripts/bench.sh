#!/usr/bin/env bash
# Run the pinned-workload bench harness and write the next BENCH_<n>.json.
#
# Picks n = highest committed BENCH number + 1 (gaps in the sequence are
# fine — numbering continues past them, never backfills), runs the full
# (non-quick) harness in release mode, and — when a predecessor exists —
# gates the new file against it with the default regression thresholds.
# `--number N` overrides the auto-pick (N must be unused and above the
# current highest, so the sequence stays monotonic); everything else is
# passed through to `udsm-cli bench` (e.g. --quick, --scale 0.1,
# --profile).
#
#   scripts/bench.sh               # full run, auto-numbered, gated
#   scripts/bench.sh --quick       # fast smoke, still auto-numbered
#   scripts/bench.sh --number 9    # pin the output to BENCH_9.json
set -euo pipefail
cd "$(dirname "$0")/.."

want=""
passthru=()
while [ $# -gt 0 ]; do
    case "$1" in
    --number)
        [ $# -ge 2 ] || {
            echo "--number needs a value" >&2
            exit 2
        }
        want="$2"
        shift 2
        ;;
    *)
        passthru+=("$1")
        shift
        ;;
    esac
done

prev=""
next=1
for f in BENCH_*.json; do
    [ -e "$f" ] || continue
    n="${f#BENCH_}"
    n="${n%.json}"
    case "$n" in
    *[!0-9]*) continue ;;
    esac
    if [ "$n" -ge "$next" ]; then
        next=$((n + 1))
        prev="$f"
    fi
done

if [ -n "$want" ]; then
    case "$want" in
    *[!0-9]*)
        echo "--number must be a positive integer, got '$want'" >&2
        exit 2
        ;;
    esac
    if [ "$want" -lt "$next" ]; then
        echo "--number $want would collide with or precede the existing" \
            "sequence (next auto number is $next)" >&2
        exit 2
    fi
    next="$want"
fi
out="BENCH_${next}.json"

cargo build --release --offline -q
./target/release/udsm-cli bench --out "$out" "${passthru[@]}"

if [ -n "$prev" ]; then
    echo "comparing $out against $prev"
    ./target/release/udsm-cli bench --compare "$prev" "$out"
else
    echo "no previous BENCH_*.json — $out is the first baseline"
fi
echo "wrote $out"
