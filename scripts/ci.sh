#!/usr/bin/env bash
# CI gate: release build, full test suite, and lint-clean clippy.
# The build environment is offline; all external deps are vendored shims.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo clippy --offline -- -D warnings
