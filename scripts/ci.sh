#!/usr/bin/env bash
# CI gate: formatting, release build, full test suite, lint-clean clippy,
# the in-tree static analyzer, exhaustive interleaving models, and a
# batch-sweep smoke run so the workload path is exercised every build.
# The build environment is offline; all external deps are vendored shims.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --check
cargo build --release --offline
cargo test -q --workspace --offline
cargo clippy --workspace --all-targets --offline -- -D warnings

# Static analysis: the seven deny-by-default per-file rules (wire
# arithmetic, panic paths, guard-across-I/O, retry idempotency, unsafe
# allowlist, trace-context loss, blocking-in-reactor) plus the three
# workspace-model passes (wire-taint, lock-order, deadline-propagation)
# must report zero active findings. The analyzer self-reports phase
# timings and the gate fails if the full two-phase analysis exceeds the
# 30 s budget. See DESIGN.md §8.
cargo run -q --release --offline -p xlint -- --deny-all --timing --max-ms 30000

# Model checking: every interleaving of the cache-shard and connection-pool
# locking protocols, plus the loom shim's own scheduler tests.
cargo test -q --offline --test loom_models
cargo test -q --offline -p loom

# Chaos smoke: the kv contract under seeded fault injection — bounded
# latency under resets+stalls, at-most-once non-idempotent effects,
# breaker open/shed/re-close, and serve-stale through a total outage.
# Deterministic (fixed fault seeds); see DESIGN.md §9.
cargo test -q --offline --test chaos_contracts

# Cluster chaos smoke: kill one of three nodes mid-reshard under sustained
# reads and writes (availability holds, ops stay bounded, zero duplicate
# effects per store), and a partitioned replica converges to the winning
# etag through read-repair after heal. See DESIGN.md §13.
cargo test -q --offline --test chaos_contracts cluster_chaos::

# Trace smoke: one sweep plus a forced incident must yield a joined
# distributed trace (client stages, retry events, breaker transitions, a
# server-side span) retrievable via GET /trace, with every histogram
# exemplar resolving in the flight recorder. Also the chaos trace suite:
# deadline-bounded black holes and at-most-once INCR, proven by trace.
# See DESIGN.md §10.
cargo test -q --offline --test trace_smoke
cargo test -q --offline --test chaos_trace

# C10K smoke at reduced scale: a 2k-connection swarm on the reactor
# servers — bounded RSS, constant thread count, every reply delivered.
# The full 10 000-connection acceptance run is the same test at its
# default scale (`cargo test --test c10k`, part of the workspace suite).
C10K_CONNS=2000 cargo test -q --offline --test c10k

# Smoke: the batch-size sweep must run end-to-end and emit the p50/p99
# gnuplot columns the RTT-amortization figure is plotted from.
sweep_out="$(mktemp)"
trap 'rm -f "$sweep_out"' EXIT
cargo run -q --release --offline -p udsm-suite --bin udsm-cli -- \
    sweep --mem --batch-sizes 1,16 --ops 5 --runs 1 --out "$sweep_out"
grep -q 'get_many p50' "$sweep_out"
grep -q 'put_many p99' "$sweep_out"

# Bench smoke: the pinned-workload harness must run end-to-end at tiny
# scale, emit schema-valid JSON (proven by a self-compare round-trip), and
# diff cleanly — report-only, CI hardware jitters — against the committed
# baseline. See DESIGN.md §11.
bench_out="$(mktemp)"
trap 'rm -f "$sweep_out" "$bench_out"' EXIT
cargo run -q --release --offline -p udsm-suite --bin udsm-cli -- \
    bench --quick --scale 0.0 --name ci-smoke --out "$bench_out"
cargo run -q --release --offline -p udsm-suite --bin udsm-cli -- \
    bench --compare "$bench_out" "$bench_out" >/dev/null
baseline="$(ls BENCH_*.json 2>/dev/null | sort -t_ -k2 -n | tail -1 || true)"
if [ -n "$baseline" ]; then
    cargo run -q --release --offline -p udsm-suite --bin udsm-cli -- \
        bench --compare "$baseline" "$bench_out" --report-only >/dev/null
fi

# Fleet observability gate (DESIGN.md §14): the 3-node federation property
# suite (merge == single registry, quantiles within bucket resolution,
# live scrape of all three protocol servers), the kill-a-node chaos proof
# (heartbeat flips cluster_node_up within two probe intervals, SLO burn
# alert links into the flight recorder), and one rendered frame of the
# live dashboard over an in-process demo fleet.
cargo test -q --offline --test federation
cargo test -q --offline --test fleet_chaos
top_out="$(mktemp)"
trap 'rm -f "$sweep_out" "$bench_out" "$top_out"' EXIT
cargo run -q --release --offline -p udsm-suite --bin udsm-cli -- \
    top --demo --once --interval-ms 600 > "$top_out"
grep -q 'udsm fleet top' "$top_out"
grep -q 'cluster  ring v' "$top_out"
grep -q 'redis-cmds' "$top_out"
grep -Eq 'n[0-2] +up' "$top_out"
