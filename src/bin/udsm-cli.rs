//! `udsm-cli` — an interactive shell over the Universal Data Store Manager.
//!
//! ```text
//! cargo run --release --bin udsm-cli -- --demo        # in-process demo servers
//! cargo run --release --bin udsm-cli -- --fs /tmp/kv  # just a file-system store
//! cargo run --release --bin udsm-cli -- --demo --encrypt "passphrase" --compress
//! cargo run --release --bin udsm-cli -- sweep --mem --batch-sizes 1,4,16,64
//! cargo run --release --bin udsm-cli -- top --demo          # live fleet dashboard
//! cargo run --release --bin udsm-cli -- top --demo --once   # one snapshot frame
//! ```
//!
//! Inside the shell: `help` lists commands. Every registered store is
//! reachable through the same commands — the common key-value interface at
//! the keyboard.

use std::io::{BufRead, Write};
use std::sync::Arc;
use udsm::workload::{ValueSource, WorkloadSpec};
use udsm::{MonitoredStore, OpKind, UniversalDataStoreManager};
use udsm_suite::prelude::*;

struct CliOptions {
    demo: bool,
    fs_dir: Option<String>,
    encrypt: Option<String>,
    compress: bool,
    script: Option<String>,
}

fn parse_args() -> CliOptions {
    let mut opts = CliOptions {
        demo: false,
        fs_dir: None,
        encrypt: None,
        compress: false,
        script: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--demo" => opts.demo = true,
            "--fs" => opts.fs_dir = it.next(),
            "--encrypt" => opts.encrypt = it.next(),
            "--compress" => opts.compress = true,
            "--script" => opts.script = it.next(),
            "--help" | "-h" => {
                println!(
                    "usage: udsm-cli [--demo] [--fs DIR] [--encrypt PASSPHRASE] [--compress] [--script FILE]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// Demo servers kept alive for the session.
struct DemoServers {
    _redis: miniredis::Server,
    _cloud: cloudstore::CloudServer,
    _sql: minisql::SqlServer,
    sql_addr: std::net::SocketAddr,
}

/// Non-interactive batch-size sweep (`udsm-cli sweep --mem …`): measures
/// `get_many`/`put_many` latency per batch across the requested batch sizes
/// and emits the standard gnuplot columns (mean + p50 + p99), so the output
/// drops straight into the repro plotting pipeline. CI runs this as a smoke
/// test on every build.
fn run_sweep(args: &[String]) -> Result<()> {
    let usage = "usage: udsm-cli sweep --mem [--batch-sizes 1,4,16,64] [--size BYTES] \
                 [--ops N] [--runs N] [--out FILE]";
    let mut mem = false;
    let mut batch_sizes: Vec<usize> = vec![1, 4, 16, 64];
    let mut size = 1024usize;
    let mut ops = 10usize;
    let mut runs = 2usize;
    let mut out: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| kvapi::StoreError::Rejected(format!("{a} needs {what}\n{usage}")))
        };
        match a.as_str() {
            "--mem" => mem = true,
            "--batch-sizes" => {
                batch_sizes = next("a comma-separated list")?
                    .split(',')
                    .map(|s| s.trim().parse())
                    .collect::<std::result::Result<_, _>>()
                    .map_err(|e| kvapi::StoreError::Rejected(format!("bad batch size: {e}")))?;
            }
            "--size" => {
                size = next("a byte count")?
                    .parse()
                    .map_err(|e| kvapi::StoreError::Rejected(format!("bad size: {e}")))?;
            }
            "--ops" => {
                ops = next("a count")?
                    .parse()
                    .map_err(|e| kvapi::StoreError::Rejected(format!("bad ops: {e}")))?;
            }
            "--runs" => {
                runs = next("a count")?
                    .parse()
                    .map_err(|e| kvapi::StoreError::Rejected(format!("bad runs: {e}")))?;
            }
            "--out" => out = Some(std::path::PathBuf::from(next("a path")?)),
            other => {
                return Err(kvapi::StoreError::Rejected(format!(
                    "unknown sweep argument {other:?}\n{usage}"
                )))
            }
        }
    }
    // Only the in-memory store is wired up so far; networked stores need
    // endpoint flags and belong to a later revision of this command.
    if !mem || batch_sizes.is_empty() {
        return Err(kvapi::StoreError::Rejected(usage.to_string()));
    }

    let store = kvapi::mem::MemKv::new("mem");
    let spec = WorkloadSpec {
        sizes: vec![size],
        ops_per_point: ops,
        runs,
        source: ValueSource::synthetic(),
        hit_rates: vec![],
    };
    let (gets, puts) = spec.batch_sweep(&store, store.name(), &batch_sizes)?;
    let series = [gets, puts];
    eprintln!(
        "batch sweep over {batch_sizes:?} keys/batch, {size} B objects, \
         {ops} ops x {runs} runs per point"
    );
    eprint!("{}", udsm::workload::to_markdown(&series));
    match out {
        Some(path) => {
            udsm::workload::write_gnuplot(&path, &series)?;
            eprintln!("wrote {}", path.display());
        }
        None => {
            let tmp = std::env::temp_dir().join(format!("udsm-sweep-{}", std::process::id()));
            udsm::workload::write_gnuplot(&tmp, &series)?;
            print!("{}", std::fs::read_to_string(&tmp)?);
            std::fs::remove_file(&tmp).ok();
        }
    }
    Ok(())
}

/// `udsm-cli trace` — inspect the in-process flight recorder and print
/// per-trace waterfalls. A fresh process has an empty recorder, so by
/// default a small built-in demo workload (enhanced client over an
/// in-process miniredis) runs first to give the waterfalls something to
/// show: client stages, joined server spans, and one recorded error.
fn run_trace(args: &[String]) -> Result<()> {
    let usage = "usage: udsm-cli trace [--slow N | --errors | --id HEX] [--no-demo]";
    let mut slow = 5usize;
    let mut errors = false;
    let mut id: Option<u128> = None;
    let mut no_demo = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--slow" => {
                slow = it.next().and_then(|s| s.parse().ok()).ok_or_else(|| {
                    kvapi::StoreError::Rejected(format!("--slow needs a count\n{usage}"))
                })?;
            }
            "--errors" => errors = true,
            "--id" => {
                let hex = it.next().ok_or_else(|| {
                    kvapi::StoreError::Rejected(format!("--id needs a hex trace id\n{usage}"))
                })?;
                id = Some(u128::from_str_radix(hex, 16).map_err(|e| {
                    kvapi::StoreError::Rejected(format!("bad trace id {hex:?}: {e}"))
                })?);
            }
            "--no-demo" => no_demo = true,
            other => {
                return Err(kvapi::StoreError::Rejected(format!(
                    "unknown trace argument {other:?}\n{usage}"
                )))
            }
        }
    }
    let rec = obs::FlightRecorder::global();
    if rec.kept() == 0 && !no_demo {
        eprintln!("flight recorder is empty — running the built-in demo workload first");
        seed_demo_traces()?;
    }
    let picked = match (id, errors) {
        (Some(id), _) => rec.by_trace_id(id),
        (None, true) => rec.errors(),
        (None, false) => rec.slowest(slow),
    };
    if picked.is_empty() {
        println!(
            "no matching traces (recorder kept {} of {} seen)",
            rec.kept(),
            rec.seen()
        );
        return Ok(());
    }
    for t in &picked {
        println!("{}", t.waterfall());
    }
    eprintln!(
        "recorder: kept {} of {} traces, {} of {} bytes",
        rec.kept(),
        rec.seen(),
        rec.bytes_used(),
        rec.byte_ceiling()
    );
    Ok(())
}

/// A tiny traced workload for `udsm-cli trace` on an empty recorder:
/// puts/gets through an enhanced client over an in-process miniredis (so
/// traces carry codec stages and joined server spans), plus one failing
/// command so `--errors` has content.
fn seed_demo_traces() -> Result<()> {
    let server = miniredis::Server::start()?;
    let client = EnhancedClient::new(RedisKv::connect(server.addr()))
        .with_cache(Arc::new(InProcessLru::new(1 << 20)))
        .with_codec(Box::new(GzipCodec::default()));
    let payload = "demo payload for the flight recorder ".repeat(32);
    for i in 0..16 {
        let key = format!("demo-{i}");
        client.put(&key, payload.as_bytes())?;
        let _ = client.get(&key)?;
    }
    let raw = miniredis::RedisClient::connect(server.addr());
    let _ = raw.exec(&[b"NOSUCHCMD"]);
    Ok(())
}

/// Non-interactive pinned-workload bench harness (`udsm-cli bench`): runs
/// the four pinned workloads against the in-process and netsim-remote
/// targets and emits a schema-versioned `BENCH_<n>.json`, or — with
/// `--compare OLD NEW` — diffs two such files and exits non-zero on
/// regression. See DESIGN.md §11 ("Performance observatory").
fn run_bench(args: &[String]) -> Result<()> {
    let usage = "usage: udsm-cli bench [--workload NAME] [--profile] [--out FILE] \
                 [--name BENCH_n] [--scale F] [--seed N] [--quick]\n\
                 \x20      udsm-cli bench --compare OLD NEW [--report-only] \
                 [--latency-pct F] [--latency-floor-us F] [--throughput-pct F] \
                 [--tail-min-count N]";
    if args.first().map(String::as_str) == Some("--compare") {
        return run_bench_compare(&args[1..], usage);
    }
    let mut cfg = bench::harness::HarnessConfig::default();
    let mut workload: Option<String> = None;
    let mut out: Option<std::path::PathBuf> = None;
    let mut name: Option<String> = None;
    let mut profile = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| kvapi::StoreError::Rejected(format!("{a} needs {what}\n{usage}")))
        };
        match a.as_str() {
            "--workload" => workload = Some(next("a workload name")?.to_string()),
            "--out" => out = Some(next("a file path")?.into()),
            "--name" => name = Some(next("a bench name")?.to_string()),
            "--profile" => profile = true,
            "--quick" => cfg.quick = true,
            "--scale" => {
                cfg.scale = next("a scale factor")?
                    .parse()
                    .map_err(|e| kvapi::StoreError::Rejected(format!("bad scale: {e}")))?;
            }
            "--seed" => {
                cfg.seed = next("a seed")?
                    .parse()
                    .map_err(|e| kvapi::StoreError::Rejected(format!("bad seed: {e}")))?;
            }
            other => {
                return Err(kvapi::StoreError::Rejected(format!(
                    "unknown bench argument {other:?}\n{usage}"
                )))
            }
        }
    }
    // The bench name defaults to the output file's stem ("BENCH_6.json" →
    // "BENCH_6") so the committed file self-identifies.
    let bench_name = name
        .or_else(|| {
            out.as_ref()
                .and_then(|p| p.file_stem())
                .map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "BENCH_adhoc".to_string());
    if profile {
        xprof::start(std::time::Duration::from_micros(250))
            .map_err(|e| kvapi::StoreError::Rejected(format!("profiler: {e}")))?;
    }
    let report = bench::harness::run_to_report(&bench_name, &cfg, workload.as_deref())?;
    if profile {
        match xprof::stop() {
            Some(p) => {
                eprintln!("--- sampled profile ---");
                eprint!("{}", p.top_table(10));
            }
            None => eprintln!("profiler captured no samples"),
        }
    }
    print!("{}", report.render_table());
    if let Some(path) = out {
        report.save(&path)?;
        eprintln!("wrote {}", path.display());
    }
    Ok(())
}

/// `udsm-cli bench --compare OLD NEW`. A missing OLD file is a clean pass
/// (first baseline in the repo's history); regressions beyond the
/// thresholds are a hard error unless `--report-only`.
fn run_bench_compare(args: &[String], usage: &str) -> Result<()> {
    let mut thresholds = bench::compare::Thresholds::default();
    let mut report_only = false;
    let mut files: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| kvapi::StoreError::Rejected(format!("{a} needs {what}\n{usage}")))
        };
        let parse_f64 = |s: &str| {
            s.parse::<f64>()
                .map_err(|e| kvapi::StoreError::Rejected(format!("bad threshold: {e}")))
        };
        match a.as_str() {
            "--report-only" => report_only = true,
            "--latency-pct" => thresholds.latency_pct = parse_f64(next("a percent")?)?,
            "--latency-floor-us" => thresholds.latency_floor_us = parse_f64(next("microseconds")?)?,
            "--throughput-pct" => thresholds.throughput_pct = parse_f64(next("a percent")?)?,
            "--tail-min-count" => {
                thresholds.tail_min_count = next("a sample count")?
                    .parse()
                    .map_err(|e| kvapi::StoreError::Rejected(format!("bad count: {e}")))?;
            }
            flag if flag.starts_with("--") => {
                return Err(kvapi::StoreError::Rejected(format!(
                    "unknown compare argument {flag:?}\n{usage}"
                )))
            }
            file => files.push(file),
        }
    }
    let [old_path, new_path] = files[..] else {
        return Err(kvapi::StoreError::Rejected(format!(
            "--compare needs exactly OLD and NEW files\n{usage}"
        )));
    };
    if !std::path::Path::new(old_path).exists() {
        println!(
            "no predecessor {old_path}: nothing to compare against — treating as first baseline (OK)"
        );
        return Ok(());
    }
    let old = bench::report::BenchReport::load(old_path)?;
    let new = bench::report::BenchReport::load(new_path)?;
    let verdict = bench::compare::compare(&old, &new, &thresholds);
    print!("{}", verdict.render(&thresholds));
    if verdict.has_regressions() && !report_only {
        return Err(kvapi::StoreError::Rejected(format!(
            "{} benchmark regression(s) in {new_path} vs {old_path}",
            verdict.regressions().len()
        )));
    }
    Ok(())
}

/// `udsm-cli profile`: run the AES-dominated demo workload under the
/// sampling profiler and print collapsed stacks plus the top-N stage table.
fn run_profile(args: &[String]) -> Result<()> {
    let usage = "usage: udsm-cli profile [--ops N] [--interval-us N] [--top N]";
    let mut ops = 40usize;
    let mut interval_us = 200u64;
    let mut top = 10usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| kvapi::StoreError::Rejected(format!("{a} needs {what}\n{usage}")))
        };
        match a.as_str() {
            "--ops" => ops = next("a count")? as usize,
            "--interval-us" => interval_us = next("microseconds")?,
            "--top" => top = next("a count")? as usize,
            other => {
                return Err(kvapi::StoreError::Rejected(format!(
                    "unknown profile argument {other:?}\n{usage}"
                )))
            }
        }
    }
    xprof::start(std::time::Duration::from_micros(interval_us))
        .map_err(|e| kvapi::StoreError::Rejected(format!("profiler: {e}")))?;
    let run = bench::harness::run_aes_demo(ops);
    let profile = xprof::stop();
    run?;
    let profile =
        profile.ok_or_else(|| kvapi::StoreError::Other("profiler session vanished".to_string()))?;
    println!(
        "# {} samples ({} attributed, {} idle), interval {interval_us} µs",
        profile.total_samples,
        profile.attributed_samples(),
        profile.idle_samples
    );
    print!("{}", profile.collapsed());
    println!();
    print!("{}", profile.top_table(top));
    if let Some(stage) = profile.top_stage() {
        println!("top stage: {stage}");
    }
    Ok(())
}

/// `udsm-cli top` — a live terminal dashboard over the metrics
/// federation. Scrapes every configured node each interval, merges the
/// fleet view, and renders per-node throughput/latency/RSS, cluster
/// health, and SLO burn. `--once` polls twice (so rates have a delta) and
/// prints a single frame — the CI-friendly snapshot mode. `--demo` starts
/// an in-process fleet (redis + WAN-simulated cloud + sql + a 3-node
/// cluster with a running heartbeat) with background traffic, so the
/// dashboard has something real to show.
fn run_top(args: &[String]) -> Result<()> {
    let usage = "usage: udsm-cli top [--demo] [--once] [--interval-ms N] [--rounds N] \
                 [--redis ADDR] [--cloud ADDR] [--sql ADDR]";
    let mut demo = false;
    let mut once = false;
    let mut interval_ms = 1000u64;
    let mut rounds: Option<u64> = None;
    let mut attach: Vec<(&'static str, std::net::SocketAddr)> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |what: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| kvapi::StoreError::Rejected(format!("{a} needs {what}\n{usage}")))
        };
        let parse_addr = |s: &str| {
            s.parse::<std::net::SocketAddr>()
                .map_err(|e| kvapi::StoreError::Rejected(format!("bad address {s:?}: {e}")))
        };
        match a.as_str() {
            "--demo" => demo = true,
            "--once" => once = true,
            "--interval-ms" => {
                interval_ms = next("milliseconds")?
                    .parse()
                    .map_err(|e| kvapi::StoreError::Rejected(format!("bad interval: {e}")))?;
            }
            "--rounds" => {
                rounds =
                    Some(next("a count")?.parse().map_err(|e| {
                        kvapi::StoreError::Rejected(format!("bad round count: {e}"))
                    })?);
            }
            "--redis" => attach.push(("redis", parse_addr(next("HOST:PORT")?)?)),
            "--cloud" => attach.push(("cloud", parse_addr(next("HOST:PORT")?)?)),
            "--sql" => attach.push(("sql", parse_addr(next("HOST:PORT")?)?)),
            other => {
                return Err(kvapi::StoreError::Rejected(format!(
                    "unknown top argument {other:?}\n{usage}"
                )))
            }
        }
    }
    if !demo && attach.is_empty() {
        return Err(kvapi::StoreError::Rejected(format!(
            "nothing to watch: pass --demo or at least one --redis/--cloud/--sql\n{usage}"
        )));
    }

    let mut fed = obs::Federation::new();
    // Reconnect per scrape: a scrape a second does not need a pooled
    // connection, and a node bounce heals on the next poll.
    for &(kind, addr) in &attach {
        add_scrape_source(&mut fed, kind, addr);
    }
    let _fleet = if demo {
        Some(DemoFleet::start(&mut fed)?)
    } else {
        None
    };

    // Fleet objectives, judged over the merged view. Labels are subset
    // filters, so each objective spans every label set of its metric.
    let mut engine = obs::SloEngine::new(vec![
        obs::Objective::latency(
            "redis-cmds",
            "miniredis_command_duration_ns",
            &[],
            5_000_000,
            0.99,
            std::time::Duration::from_secs(60),
        ),
        obs::Objective::latency(
            "cloud-requests",
            "cloudstore_request_duration_ns",
            &[],
            250_000_000,
            0.95,
            std::time::Duration::from_secs(60),
        ),
        obs::Objective::latency(
            "sql-statements",
            "minisql_statement_duration_ns",
            &[],
            25_000_000,
            0.99,
            std::time::Duration::from_secs(60),
        ),
        obs::Objective::availability(
            "cluster-avail",
            "cluster_node_requests_total",
            "cluster_node_failures_total",
            &[],
            0.999,
            std::time::Duration::from_secs(60),
        ),
    ]);
    let slo_out = obs::Registry::new();

    let started = std::time::Instant::now();
    let interval = std::time::Duration::from_millis(interval_ms.max(50));
    let total_rounds = if once { 2 } else { rounds.unwrap_or(u64::MAX) };
    let mut prev: Option<(std::time::Instant, obs::FleetView)> = None;
    for round in 0..total_rounds {
        if round > 0 {
            std::thread::sleep(interval);
        }
        let now = std::time::Instant::now();
        let view = fed.poll();
        let statuses =
            engine.evaluate(&view.merged, started.elapsed().as_millis() as u64, &slo_out);
        let frame = render_top_frame(
            &view,
            prev.as_ref().map(|(t, v)| (now.duration_since(*t), v)),
            &statuses,
            engine.alerts(),
            round,
            interval_ms,
        );
        if once {
            if round + 1 == total_rounds {
                print!("{frame}");
            }
        } else {
            // Clear + home, then the frame: a flicker-free enough redraw
            // for a once-a-second dashboard.
            print!("\x1b[2J\x1b[H{frame}");
            std::io::stdout().flush()?;
        }
        prev = Some((now, view));
    }
    Ok(())
}

/// Register one remote scrape endpoint on the federation.
fn add_scrape_source(fed: &mut obs::Federation, kind: &'static str, addr: std::net::SocketAddr) {
    let fetch: Box<dyn Fn() -> std::result::Result<String, String> + Send + Sync> = match kind {
        "redis" => Box::new(move || {
            miniredis::RedisClient::connect(addr)
                .fetch_metrics()
                .map_err(|e| e.to_string())
        }),
        "cloud" => Box::new(move || {
            CloudClient::connect(addr)
                .fetch_metrics()
                .map_err(|e| e.to_string())
        }),
        _ => Box::new(move || {
            minisql::MiniSqlClient::connect(addr)
                .fetch_metrics()
                .map_err(|e| e.to_string())
        }),
    };
    fed.add_source(Box::new(obs::FnSource::new(addr.to_string(), move || {
        fetch()
    })));
}

/// The in-process demo fleet behind `udsm-cli top --demo`: three real
/// servers scraped over the wire, a 3-node cluster with a live heartbeat
/// federated as source "cluster", and a background traffic thread so every
/// panel moves.
struct DemoFleet {
    _redis: miniredis::Server,
    _cloud: cloudstore::CloudServer,
    _sql: minisql::SqlServer,
    _heartbeat: cluster::Heartbeat,
    stop: Arc<std::sync::atomic::AtomicBool>,
    traffic: Option<std::thread::JoinHandle<()>>,
}

impl DemoFleet {
    fn start(fed: &mut obs::Federation) -> Result<DemoFleet> {
        let redis = miniredis::Server::start()?;
        let cloud = cloudstore::CloudServer::start_with_profile(netsim::Profile::Cloud2, 1)?;
        let sql = minisql::SqlServer::start_in_memory()?;
        add_scrape_source(fed, "redis", redis.addr());
        add_scrape_source(fed, "cloud", cloud.addr());
        add_scrape_source(fed, "sql", sql.addr());

        let stores: Vec<(String, Arc<dyn KeyValue>)> = (0..3)
            .map(|i| {
                let id = format!("n{i}");
                (
                    id.clone(),
                    Arc::new(kvapi::mem::MemKv::new(&id)) as Arc<dyn KeyValue>,
                )
            })
            .collect();
        let clu = Arc::new(cluster::ClusterClient::from_stores(
            "demo",
            stores,
            cluster::ClusterPolicy::default(),
        ));
        let heartbeat = clu.start_heartbeat(cluster::HealthPolicy {
            interval: std::time::Duration::from_millis(250),
            probe_timeout: std::time::Duration::from_millis(150),
            degraded_latency: std::time::Duration::from_millis(50),
        });
        let publisher = clu.clone();
        fed.add_source(Box::new(obs::FnSource::new("cluster", move || {
            let reg = obs::Registry::new();
            publisher.publish(&reg);
            Ok(reg.render_prometheus())
        })));

        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let stopped = stop.clone();
        let (redis_addr, cloud_addr, sql_addr) = (redis.addr(), cloud.addr(), sql.addr());
        let traffic = std::thread::Builder::new()
            .name("top-demo-traffic".into())
            .spawn(move || {
                let rkv = RedisKv::connect(redis_addr);
                let ckv = CloudClient::connect(cloud_addr);
                let skv = SqlKv::connect(sql_addr).ok();
                let mut i = 0u64;
                while !stopped.load(std::sync::atomic::Ordering::Relaxed) {
                    let key = format!("top-{}", i % 32);
                    let val = format!("v{i}").into_bytes();
                    let _ = rkv.put(&key, &val);
                    let _ = rkv.get(&key);
                    let _ = clu.put(&key, &val);
                    let _ = clu.get(&key);
                    if let Some(s) = &skv {
                        let _ = s.put(&key, &val);
                        let _ = s.get(&key);
                    }
                    // The cloud store sits behind a WAN profile; one
                    // round-trip per tick keeps the thread responsive.
                    if i.is_multiple_of(4) {
                        let _ = ckv.put(&key, &val);
                        let _ = ckv.get(&key);
                    }
                    i += 1;
                    std::thread::sleep(std::time::Duration::from_millis(10));
                }
            })
            .expect("spawn traffic thread");
        Ok(DemoFleet {
            _redis: redis,
            _cloud: cloud,
            _sql: sql,
            _heartbeat: heartbeat,
            stop,
            traffic: Some(traffic),
        })
    }
}

impl Drop for DemoFleet {
    fn drop(&mut self) {
        self.stop.store(true, std::sync::atomic::Ordering::Relaxed);
        if let Some(t) = self.traffic.take() {
            let _ = t.join();
        }
    }
}

/// Cumulative ops counters, one per server protocol plus the cluster view.
const TOP_OPS_COUNTERS: &[&str] = &[
    "cloudstore_requests_total",
    "miniredis_commands_total",
    "minisql_statements_total",
    "cluster_node_requests_total",
];

/// Per-protocol request-duration histograms.
const TOP_DURATION_HISTS: &[&str] = &[
    "cloudstore_request_duration_ns",
    "miniredis_command_duration_ns",
    "minisql_statement_duration_ns",
];

fn top_ops_total(m: &obs::ParsedMetrics) -> u64 {
    TOP_OPS_COUNTERS
        .iter()
        .filter_map(|name| m.counters_matching(name, &[]))
        .sum()
}

fn top_durations(m: &obs::ParsedMetrics) -> Option<obs::HistogramSnapshot> {
    let mut merged: Option<obs::HistogramSnapshot> = None;
    for name in TOP_DURATION_HISTS {
        if let Some(h) = m.histograms_matching(name, &[]) {
            match &mut merged {
                Some(acc) => acc.merge(&h),
                None => merged = Some(h),
            }
        }
    }
    merged
}

fn top_node_kind(m: &obs::ParsedMetrics) -> &'static str {
    if m.counters_matching("miniredis_commands_total", &[])
        .is_some()
    {
        "redis"
    } else if m
        .counters_matching("cloudstore_requests_total", &[])
        .is_some()
    {
        "cloud"
    } else if m
        .counters_matching("minisql_statements_total", &[])
        .is_some()
    {
        "sql"
    } else if m
        .counters_matching("cluster_node_requests_total", &[])
        .is_some()
    {
        "cluster"
    } else {
        "?"
    }
}

fn top_breaker_name(gauge: i64) -> &'static str {
    match gauge {
        0 => "closed",
        1 => "open",
        2 => "half-open",
        _ => "?",
    }
}

fn top_health_name(gauge: i64) -> &'static str {
    match gauge {
        2 => "up",
        1 => "degraded",
        0 => "down",
        _ => "?",
    }
}

/// Render one dashboard frame from the current poll (and the previous one,
/// for rates and windowed percentiles).
fn render_top_frame(
    view: &obs::FleetView,
    prev: Option<(std::time::Duration, &obs::FleetView)>,
    statuses: &[obs::SloStatus],
    alerts: &[obs::SloAlert],
    round: u64,
    interval_ms: u64,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "udsm fleet top — {} node(s), {} scrape error(s), round {}, every {} ms",
        view.nodes.len(),
        view.errors.len(),
        round + 1,
        interval_ms
    );
    let _ = writeln!(
        out,
        "\nnodes\n  {:<24} {:>7} {:>9} {:>10} {:>10} {:>9}",
        "node", "kind", "qps", "p50 us", "p99 us", "rss MB"
    );
    for (id, m) in &view.nodes {
        let prev_node = prev.and_then(|(_, v)| v.nodes.get(id));
        let qps = match prev {
            Some((dt, _)) if dt.as_secs_f64() > 0.0 => {
                let before = prev_node.map(top_ops_total).unwrap_or(0);
                let delta = top_ops_total(m).saturating_sub(before);
                format!("{:.1}", delta as f64 / dt.as_secs_f64())
            }
            _ => "-".to_string(),
        };
        // Percentiles over just this interval when a previous snapshot
        // exists, else over the node's lifetime.
        let durations = top_durations(m).map(|cur| match prev_node.and_then(top_durations) {
            Some(before) => cur.saturating_delta(&before),
            None => cur,
        });
        let (p50, p99) = match &durations {
            Some(d) if d.count > 0 => (
                format!("{}", d.quantile(0.50) / 1_000),
                format!("{}", d.quantile(0.99) / 1_000),
            ),
            _ => ("-".to_string(), "-".to_string()),
        };
        let rss = match m.gauge("process_resident_memory_bytes", &[]) {
            Some(b) => format!("{:.1}", b as f64 / (1 << 20) as f64),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "  {:<24} {:>7} {:>9} {:>10} {:>10} {:>9}",
            id,
            top_node_kind(m),
            qps,
            p50,
            p99,
            rss
        );
    }
    for (id, err) in &view.errors {
        let _ = writeln!(out, "  {id:<24} SCRAPE FAILED: {err}");
    }

    // Cluster panel: per-member health from the merged view, where the
    // member `node` labels survive federation.
    let merged = &view.merged;
    let members: Vec<String> = merged
        .series
        .keys()
        .filter(|k| k.name == "cluster_node_health_state")
        .filter_map(|k| k.label("node").map(str::to_string))
        .collect();
    if !members.is_empty()
        || merged
            .gauges_matching("cluster_ring_version", &[])
            .is_some()
    {
        let ring = merged
            .gauges_matching("cluster_ring_version", &[])
            .unwrap_or(0);
        let migrated = merged
            .counters_matching("cluster_migrated_keys_total", &[])
            .unwrap_or(0);
        let hedges = merged
            .counters_matching("cluster_hedges_fired_total", &[])
            .unwrap_or(0);
        let hedge_wins = merged
            .counters_matching("cluster_hedge_wins_total", &[])
            .unwrap_or(0);
        let failovers = merged
            .counters_matching("cluster_failovers_total", &[])
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "\ncluster  ring v{ring}  migrated {migrated}  hedges {hedges} (won {hedge_wins})  failovers {failovers}"
        );
        let _ = writeln!(
            out,
            "  {:<8} {:>9} {:>10} {:>10} {:>10} {:>10}",
            "member", "state", "probe us", "breaker", "requests", "failures"
        );
        for member in &members {
            let labels = &[("node", member.as_str())];
            let state = merged
                .gauges_matching("cluster_node_health_state", labels)
                .map(top_health_name)
                .unwrap_or("?");
            let probe = merged
                .gauges_matching("cluster_node_probe_us", labels)
                .map(|v| v.to_string())
                .unwrap_or_else(|| "-".to_string());
            let breaker = merged
                .gauges_matching("cluster_node_breaker_state", labels)
                .map(top_breaker_name)
                .unwrap_or("?");
            let requests = merged
                .counters_matching("cluster_node_requests_total", labels)
                .unwrap_or(0);
            let failures = merged
                .counters_matching("cluster_node_failures_total", labels)
                .unwrap_or(0);
            let _ = writeln!(
                out,
                "  {member:<8} {state:>9} {probe:>10} {breaker:>10} {requests:>10} {failures:>10}"
            );
        }
    }

    let _ = writeln!(
        out,
        "\nslo\n  {:<16} {:>9} {:>8} {:>10} {:>9}",
        "objective", "window n", "burn", "budget", "state"
    );
    for s in statuses {
        let _ = writeln!(
            out,
            "  {:<16} {:>9} {:>8.2} {:>9.0}% {:>9}",
            s.name,
            s.total,
            s.burn_rate,
            s.budget_remaining * 100.0,
            if s.alerting { "ALERT" } else { "ok" }
        );
    }
    if !alerts.is_empty() {
        let _ = writeln!(out, "\nalerts ({} fired)", alerts.len());
        for a in alerts.iter().rev().take(3) {
            let _ = writeln!(
                out,
                "  +{}ms {} burn {:.1} trace {:032x}",
                a.at_ms, a.objective, a.burn_rate, a.trace_id
            );
        }
    }
    out
}

fn main() -> Result<()> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("sweep") {
        return run_sweep(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("top") {
        return run_top(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("trace") {
        return run_trace(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("bench") {
        return run_bench(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("profile") {
        return run_profile(&argv[1..]);
    }
    let opts = parse_args();
    let manager = UniversalDataStoreManager::new(4);
    let registry = Arc::new(obs::Registry::new());
    let mut demo: Option<DemoServers> = None;

    if opts.demo {
        let redis = miniredis::Server::start()?;
        let cloud = cloudstore::CloudServer::start_with_profile(netsim::Profile::Cloud2, 1)?;
        let sql = minisql::SqlServer::start_in_memory()?;
        let sql_addr = sql.addr();
        manager.register(
            "redis",
            wrap(RedisKv::connect(redis.addr()), &opts, &registry),
        );
        manager.register(
            "cloud",
            wrap(
                CloudClient::connect(cloud.addr()).with_registry(registry.clone()),
                &opts,
                &registry,
            ),
        );
        manager.register("sql", wrap(SqlKv::connect(sql_addr)?, &opts, &registry));
        manager.register("mem", wrap(kvapi::mem::MemKv::new("mem"), &opts, &registry));
        demo = Some(DemoServers {
            _redis: redis,
            _cloud: cloud,
            _sql: sql,
            sql_addr,
        });
        println!("demo servers started: redis, cloud (WAN-simulated), sql, mem");
    }
    if let Some(dir) = &opts.fs_dir {
        manager.register("fs", wrap(FsKv::open(dir)?, &opts, &registry));
        println!("file-system store at {dir} registered as 'fs'");
    }
    if manager.names().is_empty() {
        eprintln!("no stores configured; try --demo or --fs DIR");
        std::process::exit(2);
    }

    let mut current = manager.names()[0].clone();
    println!("using store '{current}'. Type 'help' for commands.");

    let stdin = std::io::stdin();
    let mut script_lines: Vec<String> = match &opts.script {
        Some(path) => std::fs::read_to_string(path)?
            .lines()
            .map(str::to_string)
            .rev()
            .collect(),
        None => Vec::new(),
    };

    loop {
        print!("udsm:{current}> ");
        std::io::stdout().flush()?;
        let line = if let Some(l) = script_lines.pop() {
            println!("{l}");
            l
        } else {
            let mut buf = String::new();
            if stdin.lock().read_line(&mut buf)? == 0 {
                break;
            }
            buf
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(3, ' ');
        let cmd = parts.next().unwrap_or("");
        let arg1 = parts.next();
        let rest = parts.next();
        let result = (|| -> Result<bool> {
            match cmd {
                "help" => {
                    println!(
                        "commands:\n  stores                list registered stores\n  use <store>           switch store\n  put <key> <value>     store a value\n  get <key>             fetch a value\n  del <key>             delete a key\n  keys                  list keys\n  clear                 remove every key\n  stats                 store statistics\n  copy <from> <to>      copy all keys between stores\n  sql <statement>       raw SQL (demo sql store)\n  bench                 quick read/write sweep on the current store\n  monitor <n>           run n timed ops and print a report\n  metrics               dump Prometheus-style metrics (client + demo cloud server)\n  trace [n]             waterfalls of the n slowest recorded traces (default 5)\n  quit                  exit"
                    );
                }
                "stores" => println!("{:?} (current: {current})", manager.names()),
                "use" => match arg1 {
                    Some(name) if manager.store(name).is_ok() => {
                        current = name.to_string();
                        println!("now using '{current}'");
                    }
                    Some(name) => println!("no store named {name:?}"),
                    None => println!("usage: use <store>"),
                },
                "put" => match (arg1, rest) {
                    (Some(k), Some(v)) => {
                        manager.store(&current)?.put(k, v.as_bytes())?;
                        println!("ok ({} bytes)", v.len());
                    }
                    _ => println!("usage: put <key> <value>"),
                },
                "get" => match arg1 {
                    Some(k) => match manager.store(&current)?.get(k)? {
                        Some(v) => match std::str::from_utf8(&v) {
                            Ok(s) => println!("{s}"),
                            Err(_) => println!("<{} binary bytes>", v.len()),
                        },
                        None => println!("(nil)"),
                    },
                    None => println!("usage: get <key>"),
                },
                "del" => match arg1 {
                    Some(k) => println!("{}", manager.store(&current)?.delete(k)?),
                    None => println!("usage: del <key>"),
                },
                "keys" => {
                    let mut keys = manager.store(&current)?.keys()?;
                    keys.sort();
                    println!("{} keys: {keys:?}", keys.len());
                }
                "clear" => {
                    manager.store(&current)?.clear()?;
                    println!("cleared");
                }
                "stats" => {
                    let st = manager.store(&current)?.stats()?;
                    println!("{} keys, {} bytes", st.keys, st.bytes);
                }
                "copy" => match (arg1, rest) {
                    (Some(from), Some(to)) => {
                        let n = manager.copy_all(from, to)?;
                        println!("copied {n} keys from {from} to {to}");
                    }
                    _ => println!("usage: copy <from> <to>"),
                },
                "sql" => {
                    let stmt = [arg1.unwrap_or(""), rest.unwrap_or("")].join(" ");
                    match &demo {
                        None => println!("sql requires --demo"),
                        Some(d) => {
                            let client = minisql::MiniSqlClient::connect(d.sql_addr);
                            match client.execute(stmt.trim()) {
                                Err(e) => println!("error: {e}"),
                                Ok(rs) if rs.columns.is_empty() => {
                                    println!("ok, {} rows affected", rs.affected)
                                }
                                Ok(rs) => {
                                    println!("{}", rs.columns.join(" | "));
                                    for row in &rs.rows {
                                        let cells: Vec<String> =
                                            row.iter().map(|v| v.to_literal()).collect();
                                        println!("{}", cells.join(" | "));
                                    }
                                }
                            }
                        }
                    }
                }
                "bench" => {
                    let spec = WorkloadSpec {
                        sizes: vec![1_000, 100_000],
                        ops_per_point: 5,
                        runs: 2,
                        source: ValueSource::synthetic(),
                        hit_rates: vec![],
                    };
                    let store = manager.store(&current)?;
                    let r = spec.read_sweep(store.as_ref(), &current)?;
                    let w = spec.write_sweep(store.as_ref(), &current)?;
                    for (label, series) in [("read", &r), ("write", &w)] {
                        for &(size, ms) in &series.points {
                            println!("{label} {size:>8.0} B  {ms:>10.4} ms");
                        }
                    }
                    // Slowest trace per sweep point, resolvable via `trace`.
                    print!("{}", udsm::workload::slowest_report(&[r, w]));
                }
                "monitor" => {
                    let n: usize = arg1.and_then(|s| s.parse().ok()).unwrap_or(100);
                    let monitored = MonitoredStore::new(manager.store(&current)?, 32);
                    for i in 0..n {
                        monitored.put(&format!("__mon{i}"), b"x")?;
                        let _ = monitored.get(&format!("__mon{i}"))?;
                        monitored.delete(&format!("__mon{i}"))?;
                    }
                    let rep = monitored.report();
                    for op in [OpKind::Get, OpKind::Put, OpKind::Delete] {
                        let s = rep.summary(op);
                        println!(
                            "{op:?}: n={} mean={:.4}ms p50={:.4} p99={:.4} min={:.4} max={:.4} σ={:.4}",
                            s.count,
                            s.mean_ms,
                            rep.p50_ms(op),
                            rep.p99_ms(op),
                            s.min_ms,
                            s.max_ms,
                            s.stddev_ms()
                        );
                    }
                }
                "metrics" => {
                    let text = registry.render_prometheus();
                    if text.is_empty() {
                        println!(
                            "# client registry is empty — run some ops first \
                             (cloud round-trips, or get/put with --encrypt/--compress)"
                        );
                    } else {
                        print!("{text}");
                    }
                    if let Some(d) = &demo {
                        println!("# --- cloud server {} ---", d._cloud.addr());
                        print!("{}", d._cloud.registry().render_prometheus());
                    }
                }
                "trace" => {
                    let rec = obs::FlightRecorder::global();
                    let n: usize = arg1.and_then(|s| s.parse().ok()).unwrap_or(5);
                    for t in rec.slowest(n) {
                        println!("{}", t.waterfall());
                    }
                    println!(
                        "recorder: kept {} of {} traces, {} of {} bytes",
                        rec.kept(),
                        rec.seen(),
                        rec.bytes_used(),
                        rec.byte_ceiling()
                    );
                }
                "quit" | "exit" => return Ok(true),
                other => println!("unknown command {other:?} (try 'help')"),
            }
            Ok(false)
        })();
        match result {
            Ok(true) => break,
            Ok(false) => {}
            Err(e) => println!("error: {e}"),
        }
        if opts.script.is_some() && script_lines.is_empty() {
            break; // script mode: exit at end of file
        }
    }
    Ok(())
}

/// Apply the session-wide enhancement flags to a store. Enhanced stores
/// publish their pipeline metrics into the session registry (see `metrics`).
fn wrap<S: KeyValue + 'static>(
    store: S,
    opts: &CliOptions,
    registry: &Arc<obs::Registry>,
) -> Arc<dyn KeyValue> {
    if opts.encrypt.is_none() && !opts.compress {
        return Arc::new(store);
    }
    let mut client = EnhancedClient::new(store)
        .with_cache(Arc::new(InProcessLru::new(32 << 20)))
        .with_registry(registry.clone());
    if opts.compress {
        client = client.with_codec(Box::new(GzipCodec::default()));
    }
    if let Some(pass) = &opts.encrypt {
        client = client.with_codec(Box::new(dscl_crypto::AesCodec::from_passphrase(
            pass,
            dscl_crypto::KeySize::Aes128,
            dscl_crypto::codec::Mode::Cbc,
        )));
    }
    Arc::new(client)
}
