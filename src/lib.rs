//! # udsm-suite — enhanced data store clients and the Universal Data Store
//! Manager
//!
//! Umbrella crate re-exporting the whole workspace: a Rust reproduction of
//! "Providing Enhanced Functionality for Data Store Clients" (ICDE 2017).
//!
//! * [`dscl`] — the Data Store Client Library: caching + encryption +
//!   compression layered over any store, with expiration management and
//!   revalidation.
//! * [`udsm`] — the Universal Data Store Manager: registry, synchronous and
//!   asynchronous (ListenableFuture) interfaces, performance monitoring,
//!   workload generation.
//! * Substrate crates: [`kvapi`] (the common interface), [`fskv`],
//!   [`minisql`], [`miniredis`], [`cloudstore`] (the stores),
//!   [`dscl_cache`], [`dscl_crypto`], [`dscl_compress`], [`dscl_delta`]
//!   (the capability building blocks), and [`netsim`] (WAN simulation).
//!
//! See `examples/quickstart.rs` for a guided tour.

#![forbid(unsafe_code)]

pub use cloudstore;
pub use dscl;
pub use dscl_cache;
pub use dscl_compress;
pub use dscl_crypto;
pub use dscl_delta;
pub use fskv;
pub use kvapi;
pub use miniredis;
pub use minisql;
pub use netsim;
pub use udsm;

/// The items most applications need, in one import.
pub mod prelude {
    pub use cloudstore::{CloudClient, CloudServer};
    pub use dscl::{CacheContent, CachePolicy, DsclConfig, EnhancedClient};
    pub use dscl_cache::{Cache, InProcessLru, StoreCache};
    pub use dscl_compress::GzipCodec;
    pub use dscl_crypto::AesCodec;
    pub use fskv::FsKv;
    pub use kvapi::{Bytes, KeyValue, Result, StoreError};
    pub use miniredis::{RedisKv, RemoteCache};
    pub use minisql::SqlKv;
    pub use udsm::{AsyncKeyValue, MonitoredStore, UniversalDataStoreManager, WorkloadSpec};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_is_usable() {
        use crate::prelude::*;
        let kv = kvapi::mem::MemKv::new("m");
        kv.put("k", b"v").unwrap();
        let client =
            EnhancedClient::new(kv).with_cache(std::sync::Arc::new(InProcessLru::new(1 << 20)));
        assert_eq!(client.get("k").unwrap().unwrap(), Bytes::from_static(b"v"));
    }
}
