//! End-to-end tests for `udsm-cli bench` / `udsm-cli profile`: the
//! performance-observatory surface CI drives. These run the real binary
//! (via `CARGO_BIN_EXE_udsm-cli`) so exit codes — the thing the CI gate
//! actually consumes — are what is asserted.

use bench::report::BenchReport;
use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_udsm-cli"))
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("udsm-bench-cli-{}-{name}", std::process::id()))
}

/// One quick harness run shared by the compare tests (each full CLI run
/// spins up a netsim server; no need to repeat it per test).
fn quick_bench(out: &PathBuf) -> BenchReport {
    let status = cli()
        .args([
            "bench", "--quick", "--scale", "0.0", "--name", "baseline", "--out",
        ])
        .arg(out)
        .status()
        .expect("spawn udsm-cli bench");
    assert!(status.success(), "bench run failed: {status:?}");
    BenchReport::load(out).expect("emitted file must be schema-valid")
}

#[test]
fn bench_emits_schema_valid_json_and_compare_gates_regressions() {
    let baseline_path = tmp("baseline.json");
    let report = quick_bench(&baseline_path);
    assert_eq!(report.bench, "baseline");
    assert!(
        report.workloads.len() >= 8,
        "expected the full workload × target matrix, got {}",
        report.workloads.len()
    );
    assert!(report.env.cpus >= 1);
    assert!(
        report.resources.start.available,
        "procfs should be readable"
    );

    // Self-compare: identical files never regress.
    let status = cli()
        .args(["bench", "--compare"])
        .arg(&baseline_path)
        .arg(&baseline_path)
        .status()
        .unwrap();
    assert!(status.success(), "self-compare must pass: {status:?}");

    // Doctor a +1ms latency regression into a copy: comfortably past the
    // relative and absolute-floor thresholds on the p50 (the quick run's
    // handfuls of samples mean its p99s report but never gate — see
    // Thresholds::tail_min_count). The gate must fail.
    let mut doctored = report.clone();
    doctored.workloads[0].ops[0].p50_us += 1000.0;
    doctored.workloads[0].ops[0].p99_us += 1000.0;
    let doctored_path = tmp("doctored.json");
    doctored.save(&doctored_path).unwrap();
    let out = cli()
        .args(["bench", "--compare"])
        .arg(&baseline_path)
        .arg(&doctored_path)
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "doctored regression must exit non-zero\nstdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("REGRESSION"),
        "verdict should name the regression"
    );

    // The same diff in report-only mode is informational: exit zero.
    let status = cli()
        .args(["bench", "--compare"])
        .arg(&baseline_path)
        .arg(&doctored_path)
        .arg("--report-only")
        .status()
        .unwrap();
    assert!(status.success(), "--report-only must not gate: {status:?}");

    let _ = std::fs::remove_file(&baseline_path);
    let _ = std::fs::remove_file(&doctored_path);
}

#[test]
fn compare_tolerates_a_missing_predecessor() {
    let new_path = tmp("first.json");
    // The NEW side only needs to exist for this path; reuse a tiny run.
    let report = quick_bench(&new_path);
    assert!(report.validate().is_ok());
    let out = cli()
        .args(["bench", "--compare"])
        .arg(tmp("does-not-exist.json"))
        .arg(&new_path)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "missing predecessor is a clean pass: {:?}",
        out.status
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("first baseline"),
        "should say why it passed"
    );
    let _ = std::fs::remove_file(&new_path);
}

#[test]
fn bench_rejects_unknown_workloads_and_arguments() {
    let status = cli()
        .args(["bench", "--workload", "bogus", "--quick", "--scale", "0.0"])
        .status()
        .unwrap();
    assert!(!status.success(), "unknown workload must fail");
    let status = cli().args(["bench", "--frobnicate"]).status().unwrap();
    assert!(!status.success(), "unknown flag must fail");
}

#[test]
fn profiler_attributes_the_aes_demo_to_crypto_stages() {
    // Acceptance: on the AES-dominated demo workload the sampled profile's
    // top stage is the crypto work, not bookkeeping.
    let out = cli()
        .args(["profile", "--ops", "3", "--interval-us", "200"])
        .output()
        .unwrap();
    assert!(out.status.success(), "profile run failed: {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let top = stdout
        .lines()
        .find_map(|l| l.strip_prefix("top stage: "))
        .unwrap_or_else(|| panic!("no top-stage line in:\n{stdout}"));
    assert!(
        top == "encrypt" || top == "decrypt",
        "AES demo must be crypto-dominated, got {top:?}\n{stdout}"
    );
    // The collapsed-stack section is present and parseable: "<path> <n>".
    let collapsed: Vec<&str> = stdout
        .lines()
        .filter(|l| l.contains(' ') && !l.starts_with('#') && !l.contains(':'))
        .collect();
    assert!(
        collapsed.iter().any(|l| l
            .rsplit(' ')
            .next()
            .is_some_and(|n| n.parse::<u64>().is_ok())),
        "no collapsed stack lines in:\n{stdout}"
    );
}
