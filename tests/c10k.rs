//! C10K acceptance: ten thousand concurrent connections on the reactor
//! servers, with bounded memory and tail latency.
//!
//! This is the scaling claim the reactor rewrite exists to make good on:
//! the thread-per-connection build spends one OS thread (stack, scheduler
//! slot) per socket, so ten thousand idle-ish connections cost gigabytes
//! of address space and minutes of scheduler churn; the reactor spends one
//! epoll registration and two `Vec` buffers. The swarm here drives both
//! sides event-driven — the 10k client sockets ride one client reactor —
//! so the test itself stays at a handful of threads.
//!
//! Scale knob: `C10K_CONNS` (default 10 000) — ci.sh's quick smoke runs a
//! reduced swarm; the full count is the acceptance run. The swarm also
//! self-limits to what `RLIMIT_NOFILE` actually grants (client and server
//! share this process, so each connection costs two fds).

use std::net::TcpStream;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use cloudstore::http::{scan_response, write_request, Request, Scan};
use cloudstore::{CloudClient, CloudServer, CloudServerConfig};
use kvapi::KeyValue;
use resilience::ResiliencePolicy;

/// Requested swarm size (`C10K_CONNS` overrides for reduced-scale smokes).
fn requested_conns() -> usize {
    std::env::var("C10K_CONNS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000)
}

/// Lift the fd ceiling and return the swarm size it can actually carry:
/// two fds per connection (client end + server end) plus slack for the
/// reactors, test harness, and stdio.
fn sized_swarm(want: usize) -> usize {
    let need = (want as u64) * 2 + 512;
    let granted = reactor::sys::raise_nofile(need).unwrap_or(1024);
    let fit = usize::try_from(granted.saturating_sub(512) / 2).unwrap_or(want);
    want.min(fit)
}

/// Shared scoreboard for the swarm.
struct Scoreboard {
    done: AtomicUsize,
    failed: AtomicUsize,
    latencies: Mutex<Vec<Duration>>,
}

/// Client-side connection state machine: fire one GET, parse one reply,
/// record the latency, hang up.
struct SwarmConn {
    fired: Instant,
    board: Arc<Scoreboard>,
    got_reply: bool,
}

impl reactor::ConnHandler for SwarmConn {
    fn on_data(&mut self, inbuf: &mut Vec<u8>, out: &mut reactor::Outbox) {
        if self.got_reply {
            inbuf.clear();
            return;
        }
        match scan_response(inbuf, false) {
            Scan::Frame(_) => {
                self.got_reply = true;
                // A framed reply is only a success if the GET actually
                // found the seeded object.
                if inbuf.starts_with(b"HTTP/1.1 200") {
                    if let Ok(mut l) = self.board.latencies.lock() {
                        l.push(self.fired.elapsed());
                    }
                    self.board.done.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.board.failed.fetch_add(1, Ordering::Relaxed);
                }
                out.close();
            }
            Scan::NeedMore => {}
        }
    }

    fn on_eof(&mut self, _inbuf: &mut Vec<u8>, out: &mut reactor::Outbox) {
        if !self.got_reply {
            self.board.failed.fetch_add(1, Ordering::Relaxed);
        }
        out.close();
    }
}

struct SwarmOutcome {
    conns: usize,
    p99: Duration,
    rss_delta_bytes: i64,
    threads_delta: i64,
}

/// Open `conns` sockets against `server`, hold them all concurrently,
/// then fire one GET each and wait for every reply.
fn run_swarm(server: &CloudServer, conns: usize, settle: Duration) -> SwarmOutcome {
    // Warm object so every GET is a small 200.
    let seed_client = CloudClient::connect_with(
        server.addr(),
        ResiliencePolicy::test_profile(),
        kvapi::Transport::Blocking,
    );
    seed_client.put("c10k", b"payload").expect("seed put");

    let mut wire = Vec::new();
    write_request(&mut wire, &Request::new("GET", "/v1/objects/c10k")).expect("encode request");

    let before = obs::procinfo::sample();
    let mut client_loop = reactor::Reactor::new().expect("client reactor").spawn();
    let handle = client_loop.handle();

    // Phase A: establish the whole swarm before any request flows, so the
    // connections are genuinely concurrent, not a sequential trickle.
    let mut streams = Vec::with_capacity(conns);
    for i in 0..conns {
        match TcpStream::connect(server.addr()) {
            Ok(s) => streams.push(s),
            Err(e) => panic!("connect #{i} failed: {e} (fd ceiling too low?)"),
        }
    }
    let deadline = Instant::now() + settle;
    while server.connections_accepted.load(Ordering::Relaxed) < conns as u64 {
        assert!(
            Instant::now() < deadline,
            "server accepted only {} of {conns} connections",
            server.connections_accepted.load(Ordering::Relaxed)
        );
        std::thread::sleep(Duration::from_millis(10));
    }

    // Phase B: hand every socket to the client reactor and fire the GETs.
    let board = Arc::new(Scoreboard {
        done: AtomicUsize::new(0),
        failed: AtomicUsize::new(0),
        latencies: Mutex::new(Vec::with_capacity(conns)),
    });
    for stream in streams {
        let conn = SwarmConn {
            fired: Instant::now(),
            board: board.clone(),
            got_reply: false,
        };
        let id = handle.add_connection(stream, Box::new(conn));
        handle.send(id, wire.clone());
    }

    let deadline = Instant::now() + settle;
    loop {
        let done = board.done.load(Ordering::Relaxed);
        let failed = board.failed.load(Ordering::Relaxed);
        assert_eq!(failed, 0, "{failed} connections dropped without a reply");
        if done == conns {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {done} of {conns} replies arrived in {settle:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let after = obs::procinfo::sample();
    client_loop.shutdown();

    let mut latencies = board.latencies.lock().expect("scoreboard").clone();
    latencies.sort_unstable();
    let p99 = latencies
        .get(latencies.len().saturating_mul(99) / 100)
        .or_else(|| latencies.last())
        .copied()
        .unwrap_or_default();
    let delta = before.delta_to(&after);
    SwarmOutcome {
        conns,
        p99,
        rss_delta_bytes: delta.rss_bytes,
        threads_delta: delta.threads,
    }
}

/// The acceptance run: the reactor server carries the full swarm with
/// bounded RSS growth and a sane tail. Budgets are deliberately loose —
/// they exist to catch regressions of *kind* (per-connection threads,
/// per-connection megabyte buffers), not scheduler jitter.
#[test]
fn c10k_reactor_swarm_bounded_memory_and_tail() {
    let conns = sized_swarm(requested_conns());
    assert!(
        conns >= 1000,
        "fd ceiling too low for a meaningful swarm ({conns})"
    );
    let server = CloudServer::start(CloudServerConfig::default()).expect("server");
    let outcome = run_swarm(&server, conns, Duration::from_secs(120));

    assert_eq!(outcome.conns, conns);
    // Memory: the whole swarm — 2×conns sockets' worth of buffers across
    // client and server reactors — must stay under ~25 KiB per connection.
    let budget = (conns as i64) * 25 * 1024;
    assert!(
        outcome.rss_delta_bytes < budget,
        "RSS grew {} bytes for {conns} conns (budget {budget})",
        outcome.rss_delta_bytes
    );
    // Concurrency model: the reactor adds a constant number of threads
    // (client loop + its waker), never one per connection.
    assert!(
        outcome.threads_delta.unsigned_abs() < 16,
        "thread count moved by {} — per-connection threads are back",
        outcome.threads_delta
    );
    // Tail: every reply funnels through one loop on shared CPUs, so the
    // p99 sees real queueing — but it must stay in seconds, not minutes.
    assert!(
        outcome.p99 < Duration::from_secs(30),
        "p99 {:?} over budget",
        outcome.p99
    );
}

/// The counter-demonstration the acceptance criteria ask for: the same
/// swarm against the `legacy_threads` build. One OS thread per accepted
/// connection means the thread count explodes with the swarm size and the
/// process usually hits spawn failure or scheduler collapse long before
/// 10k — which is exactly why this test is `#[ignore]`d: run it by hand
/// (`cargo test --test c10k -- --ignored`) to watch the old design die.
#[test]
#[ignore = "demonstrates the thread-per-connection ceiling; expected to exhaust resources"]
fn c10k_thread_per_connection_counter_demo() {
    let conns = sized_swarm(requested_conns());
    let server = CloudServer::start(CloudServerConfig {
        legacy_threads: true,
        ..Default::default()
    })
    .expect("server");
    let outcome = run_swarm(&server, conns, Duration::from_secs(120));
    // If the swarm even completes, hold it to the same budgets the
    // reactor meets; thread-per-connection fails the thread delta by
    // construction (one thread per live connection).
    assert!(
        outcome.threads_delta.unsigned_abs() < 16,
        "legacy build spawned {} threads for {conns} connections",
        outcome.threads_delta
    );
}
