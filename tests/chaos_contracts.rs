//! Chaos contract suite: the key-value contract run under seeded fault
//! injection.
//!
//! Every scenario here is deterministic — the servers draw fault decisions
//! from a fixed-seed RNG (`fault_seed` in each server config), so a failure
//! reproduces bit-for-bit. The suite asserts the resilience layer's three
//! load-bearing promises:
//!
//! 1. **Bounded latency**: under a 5% reset + 5% stall model, every
//!    operation completes or fails within the request deadline — no
//!    slow-loris hang, no unbounded retry storm.
//! 2. **At-most-once effects**: non-idempotent operations (`INCR`,
//!    `INSERT`) are never applied twice, even when the server applies the
//!    effect and then loses the reply.
//! 3. **Shed and recover**: a total outage provably opens the circuit
//!    breaker (fast-fail without touching the network), and the breaker
//!    re-closes once the fault clears; the enhanced client meanwhile keeps
//!    serving cached reads inside its stale window.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dscl::{DsclConfig, EnhancedClient};
use dscl_cache::InProcessLru;
use kvapi::{KeyValue, StoreError};
use miniredis::{RedisClient, RedisKv, Server};
use minisql::{MiniSqlClient, SqlServer};
use netsim::FaultModel;
use resilience::{BreakerState, ResiliencePolicy};

/// Per-op wall-clock ceiling: the test profile's 2 s request budget plus
/// scheduling slack. Nothing — not a stall, not a dribble — may push one
/// logical operation past this.
const OP_CEILING: Duration = Duration::from_secs(3);

/// Under seeded 5% resets + 5% stalls, every op finishes (ok or err)
/// inside the deadline, the workload makes forward progress, and once the
/// fault model is cleared the full kv contract passes against the same
/// server — convergence after chaos.
#[test]
fn seeded_chaos_keeps_ops_inside_deadline_and_converges() {
    let server = Server::start().unwrap();
    let kv = RedisKv::connect_with_policy(server.addr(), ResiliencePolicy::test_profile());

    server
        .fault_injector()
        .set_model(FaultModel::chaos(0.05, 50.0));

    let (mut ok, mut failed) = (0u32, 0u32);
    for i in 0..150 {
        let key = format!("chaos-{}", i % 10);
        let start = Instant::now();
        let outcome: Result<(), StoreError> = match i % 4 {
            0 => kv.put(&key, format!("v{i}").as_bytes()),
            1 => kv.get(&key).map(|_| ()),
            2 => kv.contains(&key).map(|_| ()),
            _ => kv.delete(&key).map(|_| ()),
        };
        let elapsed = start.elapsed();
        assert!(
            elapsed < OP_CEILING,
            "op {i} took {elapsed:?}, past the deadline ceiling"
        );
        match outcome {
            Ok(()) => ok += 1,
            Err(_) => failed += 1,
        }
    }
    assert!(
        ok > failed,
        "no forward progress under 5% chaos: {ok} ok vs {failed} failed"
    );

    // Fault clears; wait out the breaker cooldown, then the server must
    // satisfy the full contract again.
    server.fault_injector().set_model(FaultModel::none());
    std::thread::sleep(Duration::from_millis(150));
    kvapi::contract::run_all(&kv);
    assert_eq!(
        kv.client().resilience().breaker().state(),
        BreakerState::Closed,
        "breaker still open after the fault cleared and the contract passed"
    );
}

/// `INCR` rides the no-retry path (`exec_once`): when the server applies
/// the increment and then resets the connection, the client sees an error
/// but must NOT replay. The counter therefore never exceeds the number of
/// issued commands, and never undercounts acknowledged successes.
#[test]
fn non_idempotent_increments_apply_at_most_once_under_resets() {
    let server = Server::start().unwrap();
    let client = RedisClient::connect_with_policy(server.addr(), ResiliencePolicy::test_profile());

    server.fault_injector().set_model(FaultModel {
        reset_prob: 0.3,
        ..FaultModel::none()
    });

    let attempts = 60i64;
    let mut acknowledged = 0i64;
    for _ in 0..attempts {
        if client.incr("ctr").is_ok() {
            acknowledged += 1;
        }
    }

    server.fault_injector().set_model(FaultModel::none());
    std::thread::sleep(Duration::from_millis(150));
    let raw = client.get("ctr").unwrap().expect("counter must exist");
    let applied: i64 = std::str::from_utf8(&raw).unwrap().parse().unwrap();

    assert!(
        acknowledged < attempts,
        "fault model never fired; the test exercised nothing"
    );
    assert!(
        applied <= attempts,
        "counter at {applied} after {attempts} commands: a non-idempotent \
         op was replayed"
    );
    assert!(
        applied >= acknowledged,
        "counter at {applied} but {acknowledged} increments were \
         acknowledged: an acknowledged effect was lost"
    );
}

/// SQL `INSERT`s under reply-loss: effects the server applied before the
/// reset stay applied exactly once, and the client never replays a
/// statement whose frame already reached the wire.
#[test]
fn sql_writes_survive_reply_loss_without_duplication() {
    let server = SqlServer::start_in_memory().unwrap();
    let client = MiniSqlClient::connect_with(
        server.addr(),
        ResiliencePolicy::test_profile(),
        kvapi::Transport::Blocking,
    );
    client
        .execute("CREATE TABLE chaos (id INTEGER PRIMARY KEY, body TEXT)")
        .unwrap();

    server.fault_injector().set_model(FaultModel {
        reset_prob: 0.3,
        ..FaultModel::none()
    });

    let attempts = 40usize;
    let mut acknowledged = 0usize;
    for i in 0..attempts {
        let stmt = format!("INSERT INTO chaos (id, body) VALUES ({i}, 'row-{i}')");
        if client.execute(&stmt).is_ok() {
            acknowledged += 1;
        }
    }

    server.fault_injector().set_model(FaultModel::none());
    std::thread::sleep(Duration::from_millis(150));
    let rs = client.execute("SELECT id FROM chaos").unwrap();
    let applied = rs.rows.len();

    assert!(acknowledged < attempts, "fault model never fired");
    assert!(
        applied <= attempts,
        "{applied} rows from {attempts} single-row inserts: a write was \
         duplicated"
    );
    assert!(
        applied >= acknowledged,
        "{applied} rows but {acknowledged} inserts acknowledged"
    );
}

/// A total outage must trip the per-endpoint breaker: after the failure
/// threshold, calls are shed instantly (no network I/O, no deadline burn),
/// and once the outage clears and the cooldown elapses the breaker
/// half-opens, probes, and re-closes.
#[test]
fn breaker_opens_sheds_fast_and_recovers() {
    let mut server = cloudstore::CloudServer::start_local().unwrap();
    let client = cloudstore::CloudClient::connect_with(
        server.addr(),
        ResiliencePolicy::test_profile(),
        kvapi::Transport::Blocking,
    );
    client.put("k", b"v").unwrap();

    server.fault_injector().set_model(FaultModel::outage());
    server.drop_connections();

    // One failing request burns the whole retry budget (3 attempts), which
    // meets the test profile's failure threshold of 3.
    assert!(client.get("k").is_err(), "outage must surface an error");
    assert_eq!(client.resilience().breaker().state(), BreakerState::Open);

    // While open, calls are shed without touching the network: fast, and
    // counted as breaker rejections.
    let rejections_before = client.resilience().breaker_rejections();
    let start = Instant::now();
    let shed = client.get("k");
    let shed_elapsed = start.elapsed();
    assert!(
        matches!(shed, Err(StoreError::Unavailable(_))),
        "open breaker must shed with Unavailable, got {shed:?}"
    );
    assert!(
        shed_elapsed < Duration::from_millis(500),
        "shed call took {shed_elapsed:?}; an open breaker must fail fast"
    );
    assert!(client.resilience().breaker_rejections() > rejections_before);

    // Outage clears; after the cooldown the half-open probe succeeds and
    // the breaker re-closes.
    server.fault_injector().set_model(FaultModel::none());
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(client.get("k").unwrap().unwrap(), &b"v"[..]);
    assert_eq!(client.resilience().breaker().state(), BreakerState::Closed);

    server.stop();
}

/// At 100% faults the enhanced client keeps answering reads from expired
/// cache entries inside the configured stale window, and reports each
/// stale serve through the obs registry. When the store heals, normal
/// revalidation resumes.
#[test]
fn enhanced_client_serves_stale_reads_through_total_outage() {
    let server = Server::start().unwrap();
    let kv = RedisKv::connect_with_policy(server.addr(), ResiliencePolicy::test_profile());
    let reg = Arc::new(obs::Registry::new());
    let client = EnhancedClient::new(kv)
        .with_cache(Arc::new(InProcessLru::new(16 << 20)))
        .with_config(DsclConfig {
            default_ttl: Some(Duration::from_millis(40)),
            stale_while_error: Some(Duration::from_secs(10)),
            ..Default::default()
        })
        .with_registry(reg.clone());

    client.put("k", b"cached").unwrap();

    server.fault_injector().set_model(FaultModel::outage());
    server.drop_connections();
    std::thread::sleep(Duration::from_millis(60)); // entry is now expired

    // Expired entry + unreachable store + open stale window: serve stale.
    assert_eq!(client.get("k").unwrap().unwrap(), &b"cached"[..]);
    assert!(client.stats().stale_serves >= 1, "{:?}", client.stats());
    let text = reg.render_prometheus();
    assert!(
        text.contains("dscl_stale_serves_total"),
        "stale serves missing from metrics:\n{text}"
    );

    // A key that was never cached has nothing to fall back on.
    assert!(client.get("never-cached").is_err());

    // Store heals: the next read revalidates against the server again.
    server.fault_injector().set_model(FaultModel::none());
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(client.get("k").unwrap().unwrap(), &b"cached"[..]);
}

// ---------------------------------------------------------------------------
// Cluster layer chaos: node kills mid-reshard, partitions, convergence.
// ---------------------------------------------------------------------------

mod cluster_chaos {
    use super::*;
    use cluster::{ClusterClient, ClusterPolicy};
    use kvapi::{Bytes, Etag, Result as KvResult, Versioned};
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// An in-process store with a kill switch and an applied-effects log,
    /// so tests can partition a node precisely and audit that no write
    /// effect is ever applied twice to the same node.
    struct ChaosStore {
        inner: kvapi::mem::MemKv,
        dead: AtomicBool,
        applied: Mutex<Vec<(String, Vec<u8>)>>,
    }

    impl ChaosStore {
        fn new(name: &str) -> ChaosStore {
            ChaosStore {
                inner: kvapi::mem::MemKv::new(name),
                dead: AtomicBool::new(false),
                applied: Mutex::new(Vec::new()),
            }
        }

        fn kill(&self) {
            self.dead.store(true, Ordering::Relaxed);
        }

        fn heal(&self) {
            self.dead.store(false, Ordering::Relaxed);
        }

        fn gate(&self) -> KvResult<()> {
            if self.dead.load(Ordering::Relaxed) {
                Err(StoreError::Closed)
            } else {
                Ok(())
            }
        }

        fn log_apply(&self, key: &str, value: &[u8]) {
            self.applied
                .lock()
                .unwrap()
                .push((key.to_string(), value.to_vec()));
        }

        /// Panics if the identical (key, value) effect reached this node
        /// more than once — a replayed write or a double-applied
        /// migration copy.
        fn assert_no_duplicate_effects(&self) {
            let log = self.applied.lock().unwrap();
            let mut seen = std::collections::HashSet::new();
            for (k, v) in log.iter() {
                assert!(
                    seen.insert((k.clone(), v.clone())),
                    "effect ({k:?}, {v:?}) applied twice to {}",
                    self.inner.name()
                );
            }
        }
    }

    impl KeyValue for ChaosStore {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn put(&self, key: &str, value: &[u8]) -> KvResult<()> {
            self.gate()?;
            self.log_apply(key, value);
            self.inner.put(key, value)
        }
        fn put_versioned(&self, key: &str, value: &[u8]) -> KvResult<Etag> {
            self.gate()?;
            self.log_apply(key, value);
            self.inner.put_versioned(key, value)
        }
        fn get(&self, key: &str) -> KvResult<Option<Bytes>> {
            self.gate()?;
            self.inner.get(key)
        }
        fn get_versioned(&self, key: &str) -> KvResult<Option<Versioned>> {
            self.gate()?;
            self.inner.get_versioned(key)
        }
        fn delete(&self, key: &str) -> KvResult<bool> {
            self.gate()?;
            self.inner.delete(key)
        }
        fn keys(&self) -> KvResult<Vec<String>> {
            self.gate()?;
            self.inner.keys()
        }
        fn clear(&self) -> KvResult<()> {
            self.gate()?;
            self.inner.clear()
        }
    }

    fn chaos_cluster(n: usize) -> (ClusterClient, Vec<Arc<ChaosStore>>) {
        let stores: Vec<Arc<ChaosStore>> = (0..n)
            .map(|i| Arc::new(ChaosStore::new(&format!("node-{i}"))))
            .collect();
        let policy = ClusterPolicy::test_profile();
        let client = ClusterClient::from_stores(
            "chaos-cluster",
            stores
                .iter()
                .map(|s| (s.name().to_string(), s.clone() as Arc<dyn KeyValue>))
                .collect(),
            policy,
        );
        (client, stores)
    }

    /// Kill one of three nodes in the middle of a resharding sweep, keep
    /// reading and writing throughout, and demand: every op completes
    /// inside the deadline (bounded latency), every key stays readable
    /// (availability through the union view + replica failover), the
    /// sweep finishes after heal, and no node ever sees the same write
    /// effect twice (at-most-once, by exhaustive effect log audit).
    #[test]
    fn cluster_survives_killing_a_node_mid_sweep() {
        let (c, stores) = chaos_cluster(4);
        let four: Vec<String> = (0..4).map(|i| format!("node-{i}")).collect();
        // Shrink to the three originals first so node-3 starts empty.
        let spare = stores[3].clone();
        let connector = move |ep: &str| -> KvResult<Arc<dyn KeyValue>> {
            assert_eq!(ep, "node-3");
            Ok(spare.clone() as Arc<dyn KeyValue>)
        };
        // Rebuild as a 3-node cluster (from_stores gave us 4 above).
        let c3 = ClusterClient::from_stores(
            "chaos-cluster",
            stores[..3]
                .iter()
                .map(|s| (s.name().to_string(), s.clone() as Arc<dyn KeyValue>))
                .collect(),
            ClusterPolicy::test_profile(),
        );
        drop(c);

        let mut expected: HashMap<String, Vec<u8>> = HashMap::new();
        for i in 0..60 {
            let key = format!("key-{i}");
            let val = format!("seed-{i}").into_bytes();
            c3.put(&key, &val).unwrap();
            expected.insert(key, val);
        }

        let scope = obs::ctx::activate(obs::ctx::TraceContext::new_root());
        c3.apply_ring_change(&four, &connector).unwrap();
        assert!(c3.reshard_active());
        // A little progress, then the kill lands mid-sweep.
        c3.migrate_step(10).unwrap();
        stores[1].kill();

        let mut max_op = Duration::ZERO;
        for i in 0..120u32 {
            let key = format!("key-{}", i % 60);
            let start = Instant::now();
            if i % 3 == 0 {
                let val = format!("live-{i}").into_bytes();
                c3.put(&key, &val).unwrap();
                expected.insert(key, val);
            } else {
                let got = c3.get(&key).unwrap();
                assert!(got.is_some(), "key {key} unreadable during outage");
            }
            max_op = max_op.max(start.elapsed());
        }
        assert!(
            max_op < OP_CEILING,
            "an op ran {max_op:?} under a single-node outage"
        );

        // The sweep keeps making progress on reachable keys; keys pinned
        // to the dead node stay queued rather than being dropped.
        let _ = c3.migrate_step(c3.migration_pending().max(1));

        // Heal, let breakers cool down, finish the sweep.
        stores[1].heal();
        std::thread::sleep(Duration::from_millis(150));
        c3.run_migration().unwrap();
        assert!(!c3.reshard_active(), "union view retired after the sweep");

        for (key, val) in &expected {
            assert_eq!(
                c3.get(key).unwrap().as_deref(),
                Some(val.as_slice()),
                "key {key} lost its last write"
            );
        }
        for s in &stores {
            s.assert_no_duplicate_effects();
        }
        let data = scope.finish();
        assert!(
            data.events
                .iter()
                .any(|(_, n, d)| n == "ring_version" && d.contains("v=2")),
            "ring change missing from trace: {:?}",
            data.events
        );
    }

    /// Partition a replica, write through the majority side, then heal:
    /// the next read must repair the stale replica to the winning etag —
    /// both owners end up bit-identical, chosen by (modified_ms, etag).
    #[test]
    fn partitioned_replica_converges_to_winning_etag_after_heal() {
        let (c, stores) = chaos_cluster(3);
        // Find a key and its two owners deterministically.
        let ring = cluster::HashRing::new(
            &(0..3).map(|i| format!("node-{i}")).collect::<Vec<_>>(),
            c.policy().vnodes,
        );
        let key = (0..200)
            .map(|i| format!("conv-{i}"))
            .find(|k| ring.owners(k, 2).len() == 2)
            .unwrap();
        let owners = ring.owners(&key, 2);
        let replica = &stores[owners[1]];

        c.put(&key, b"v1").unwrap();

        // Partition the replica; a divergent old write lands on it (as if
        // it briefly served the minority side), then the majority write
        // goes through the cluster.
        replica.kill();
        std::thread::sleep(Duration::from_millis(5));
        let winning_etag = c.put_versioned(&key, b"v2-winner").unwrap();
        assert!(c.is_dirty(&key), "partial write must be marked dirty");

        // Heal and read: read-repair must converge both owners.
        replica.heal();
        std::thread::sleep(Duration::from_millis(150));
        let served = c.get_versioned(&key).unwrap().unwrap();
        assert_eq!(served.etag, winning_etag, "read serves the winner");
        assert!(!c.is_dirty(&key), "repair clears the dirty mark");
        assert!(c.read_repairs() >= 1);
        for idx in owners {
            let copy = stores[idx].inner.get_versioned(&key).unwrap().unwrap();
            assert_eq!(
                copy.etag, winning_etag,
                "owner node-{idx} did not converge to the winning etag"
            );
        }
    }
}
